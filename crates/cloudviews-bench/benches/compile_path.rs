//! Compile-path and pipeline-throughput benchmark (DESIGN.md §9).
//!
//! Two comparisons, both recorded in `BENCH_compile_path.json` at the repo
//! root so the bench trajectory is tracked in-tree:
//!
//! 1. **Cold vs. template-hit compile** — signing + subgraph enumeration of
//!    a recurring instance from scratch vs. rebasing the cached skeleton of
//!    the previous instance (`scope_signature::TemplateCache`). Target:
//!    hits ≥ 2× faster.
//! 2. **`run_many` vs. serial loop** — the same job batch through the
//!    work-stealing pool (one worker per core) vs. a plain serial loop.
//!    Target: the pool wins wall-clock on ≥ 4 cores; on fewer cores the
//!    comparison is recorded but the target is marked not applicable.
//!
//! `BENCH_QUICK=1` shrinks the workload for CI (the artifact notes which
//! variant produced it). Not a criterion harness: the two sides share
//! warmed state and the pool run must happen exactly once, so the bench
//! times itself and writes its own artifact.

use std::sync::Arc;
use std::time::Instant;

use cloudviews::{CloudViews, PipelineOptions, RunMode};
use scope_common::ids::DatasetId;
use scope_engine::storage::StorageManager;
use scope_plan::expr::AggFunc;
use scope_plan::{AggExpr, DataType, Expr, Partitioning, PlanBuilder, QueryGraph, Schema};
use scope_signature::TemplateCache;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A recurring workload with roughly `templates` jobs per instance.
fn workload(templates: usize) -> RecurringWorkload {
    let mut spec = ClusterSpec::tiny("compile_path");
    spec.num_templates = templates;
    spec.num_vcs = 8;
    spec.num_users = 16;
    spec.num_streams = 12;
    spec.num_fragments = 16;
    RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![spec],
        seed: 0xC0117E,
        stream_rows: LogNormal::new(5.5, 0.4, 100.0, 800.0),
    })
    .unwrap()
}

/// A chain-shaped plan with roughly `n` nodes reading `dataset` — the
/// signatures-bench plan shape. A new `dataset` GUID is a new recurring
/// instance of the same template: precise signatures change, normalized
/// ones don't, so a warmed [`TemplateCache`] serves it as a hit.
fn chain_plan(n: usize, dataset: u64) -> QueryGraph {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]);
    let mut b = PlanBuilder::new();
    let mut cur = b.table_scan(DatasetId::new(dataset), "bench/t.ss", schema);
    for i in 0..n.saturating_sub(3) {
        cur = match i % 4 {
            0 => b.filter(cur, Expr::col(0).gt(Expr::lit(i as i64))),
            1 => b.exchange(
                cur,
                Partitioning::Hash {
                    cols: vec![0],
                    parts: 8,
                },
            ),
            2 => b.aggregate(
                cur,
                vec![0],
                vec![AggExpr::new(format!("a{i}"), AggFunc::Sum, 1)],
            ),
            _ => b.nop(cur),
        };
    }
    b.output(cur, "bench/out.ss").build().unwrap()
}

struct CompileNumbers {
    nodes: usize,
    instances: usize,
    cold_micros: u128,
    hit_micros: u128,
}

/// Times compiling `instances` recurring instances of an `n`-node chain
/// template cold (fresh cache per compile, full subgraph enumeration) vs.
/// on a cache warmed with instance 0 (every compile rebases the skeleton).
fn bench_compile(n: usize, instances: usize) -> CompileNumbers {
    let plans: Vec<QueryGraph> = (1..=instances as u64 + 1)
        .map(|inst| chain_plan(n, inst))
        .collect();
    let (warmup, rest) = plans.split_first().unwrap();

    let t = Instant::now();
    for plan in rest {
        let cache = TemplateCache::new();
        std::hint::black_box(cache.compile(plan).unwrap());
    }
    let cold_micros = t.elapsed().as_micros();

    let warmed = TemplateCache::new();
    warmed.compile(warmup).unwrap();
    let t = Instant::now();
    for plan in rest {
        let compiled = warmed.compile(plan).unwrap();
        assert!(compiled.template_hit, "new instance must hit the cache");
        std::hint::black_box(compiled);
    }
    let hit_micros = t.elapsed().as_micros();

    CompileNumbers {
        nodes: n,
        instances: rest.len(),
        cold_micros,
        hit_micros,
    }
}

struct PipelineNumbers {
    jobs: usize,
    cores: usize,
    serial_micros: u128,
    pool_micros: u128,
}

/// Wall-clock of a plain serial loop vs. `run_many` with one worker per
/// core, on identically seeded services (so view/lock state can't leak
/// between the two sides).
fn bench_run_many(w: &RecurringWorkload, cores: usize) -> PipelineNumbers {
    let service = || {
        let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
        w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        cv
    };
    let specs = w.jobs_for_instance(0, 0).unwrap();

    let cv = service();
    let start = cv.clock.now();
    let t = Instant::now();
    for spec in &specs {
        cv.run_job_at(spec, RunMode::CloudViews, start).unwrap();
    }
    let serial_micros = t.elapsed().as_micros();

    let cv = service();
    let t = Instant::now();
    let results = cv.run_many(
        specs.clone(),
        RunMode::CloudViews,
        PipelineOptions {
            workers: cores,
            max_in_flight: 2 * cores,
            janitor: false,
        },
    );
    let pool_micros = t.elapsed().as_micros();
    for r in results {
        r.unwrap();
    }

    PipelineNumbers {
        jobs: specs.len(),
        cores,
        serial_micros,
        pool_micros,
    }
}

fn ratio(num: u128, den: u128) -> f64 {
    num as f64 / den.max(1) as f64
}

fn main() {
    let quick = quick();
    let templates = if quick { 60 } else { 500 };
    let instances = if quick { 20 } else { 100 };
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let sizes = [32usize, 128, 512];
    let per_size: Vec<CompileNumbers> =
        sizes.iter().map(|&n| bench_compile(n, instances)).collect();
    for c in &per_size {
        println!(
            "compile_path/compile/{:>3} nodes  cold {:>9.1} µs/job  hit {:>8.1} µs/job  {:.2}x",
            c.nodes,
            ratio(c.cold_micros, c.instances as u128),
            ratio(c.hit_micros, c.instances as u128),
            ratio(c.cold_micros, c.hit_micros)
        );
    }
    let cold_total: u128 = per_size.iter().map(|c| c.cold_micros).sum();
    let hit_total: u128 = per_size.iter().map(|c| c.hit_micros).sum();
    let compile_speedup = ratio(cold_total, hit_total);
    println!(
        "compile_path/compile/total       cold {cold_total:>9} µs  hit {hit_total:>8} µs  {compile_speedup:.2}x"
    );

    eprintln!("compile_path: generating {templates}-template recurring workload ...");
    let w = workload(templates);

    let p = bench_run_many(&w, cores);
    let pool_speedup = ratio(p.serial_micros, p.pool_micros);
    println!(
        "compile_path/serial_loop         {} jobs  {:>10} µs wall",
        p.jobs, p.serial_micros
    );
    println!(
        "compile_path/run_many            {} jobs  {:>10} µs wall  ({} workers)  {:.2}x vs serial",
        p.jobs, p.pool_micros, p.cores, pool_speedup
    );

    // ≥ 4 cores is the acceptance gate for the pool comparison; below that
    // the pool can only add overhead, so the target is not applicable.
    let pool_target_applicable = cores >= 4;
    let size_entries = per_size
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "      {{ \"plan_nodes\": {}, \"instances\": {}, ",
                    "\"cold_total_micros\": {}, \"template_hit_total_micros\": {}, ",
                    "\"speedup\": {:.3} }}"
                ),
                c.nodes,
                c.instances,
                c.cold_micros,
                c.hit_micros,
                ratio(c.cold_micros, c.hit_micros)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"compile_path\",\n",
            "  \"quick\": {quick},\n",
            "  \"cores\": {cores},\n",
            "  \"compile\": {{\n",
            "    \"per_size\": [\n{sizes}\n    ],\n",
            "    \"cold_total_micros\": {cold},\n",
            "    \"template_hit_total_micros\": {hit},\n",
            "    \"speedup\": {cspeed:.3},\n",
            "    \"meets_2x_target\": {cmeets}\n",
            "  }},\n",
            "  \"run_many\": {{\n",
            "    \"jobs\": {pjobs},\n",
            "    \"workers\": {workers},\n",
            "    \"serial_wall_micros\": {serial},\n",
            "    \"pool_wall_micros\": {pool},\n",
            "    \"speedup\": {pspeed:.3},\n",
            "    \"target_applicable\": {papp},\n",
            "    \"beats_serial\": {pbeats}\n",
            "  }}\n",
            "}}\n"
        ),
        quick = quick,
        cores = cores,
        sizes = size_entries,
        cold = cold_total,
        hit = hit_total,
        cspeed = compile_speedup,
        cmeets = compile_speedup >= 2.0,
        pjobs = p.jobs,
        workers = p.cores,
        serial = p.serial_micros,
        pool = p.pool_micros,
        pspeed = pool_speedup,
        papp = pool_target_applicable,
        pbeats = pool_speedup > 1.0,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compile_path.json");
    std::fs::write(path, &json).unwrap();
    println!("compile_path: wrote {path}");

    assert!(
        compile_speedup >= 2.0,
        "template hit must be >= 2x faster than cold compile (got {compile_speedup:.2}x)"
    );
    if pool_target_applicable {
        assert!(
            pool_speedup > 1.0,
            "run_many must beat the serial loop on {cores} cores (got {pool_speedup:.2}x)"
        );
    }
}
