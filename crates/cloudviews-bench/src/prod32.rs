//! The 32-job production workload of Section 7.1 (Figures 11/12).
//!
//! The paper picked the top-3 overlapping computations (≥3 occurrences,
//! view-to-query cost ratio ≥20%, ≤1 per job, ranked by total utility) from
//! one day of a large business unit and replayed the 32 jobs containing
//! them: 16, 12, and 4 jobs respectively. This module reconstructs that
//! setting synthetically:
//!
//! * three *shared computations* — cook pipelines (scan → date filter →
//!   shuffle → aggregate → sort) over three large shared streams;
//! * 32 jobs, split 16/12/4 across the computations, each adding private
//!   post-processing (its own stream joined on the cooked output, a
//!   job-specific projection, and a final write) sized so the shared part
//!   is a meaningful-but-varying fraction of the job;
//! * recurring structure: every instance rebinds GUIDs and date parameters.

use rand::Rng;
use scope_common::hash::sip64;
use scope_common::ids::{ClusterId, DatasetId, JobId, TemplateId, UserId, VcId};
use scope_common::Result;
use scope_engine::data::Table;
use scope_engine::job::JobSpec;
use scope_engine::storage::StorageManager;
use scope_plan::expr::AggFunc;
use scope_plan::{
    AggExpr, DataType, Expr, JoinKind, NamedExpr, Partitioning, PlanBuilder, Schema, SortOrder,
    Value,
};
use scope_workload::dists::rng_for;

/// Group sizes: 16 + 12 + 4 = 32 jobs.
pub const GROUP_SIZES: [usize; 3] = [16, 12, 4];

/// The schema of every stream in this workload.
fn stream_schema() -> Schema {
    Schema::from_pairs(&[
        ("user", DataType::Int),
        ("item", DataType::Int),
        ("val", DataType::Float),
        ("ts", DataType::Date),
    ])
}

/// Row counts of the three shared streams (scaled by `row_scale`).
pub const SHARED_ROWS: [u64; 3] = [150_000, 110_000, 200_000];

fn shared_guid(group: usize, instance: u64) -> DatasetId {
    DatasetId::new(sip64(format!("prod32/shared{group}/{instance}").as_bytes()))
}

fn private_guid(job: usize, instance: u64) -> DatasetId {
    DatasetId::new(sip64(format!("prod32/private{job}/{instance}").as_bytes()))
}

fn gen_rows(seed: u64, n: u64, date: i32) -> Vec<Vec<Value>> {
    let mut rng = rng_for(seed, "prod32-rows");
    (0..n)
        .map(|_| {
            vec![
                Value::Int((rng.gen_range(0.0_f64..1.0).powi(2) * 2_000.0) as i64),
                Value::Int(rng.gen_range(0..100_000)),
                Value::Float(rng.gen_range(0.0_f64..100.0)),
                Value::Date(date),
            ]
        })
        .collect()
}

/// Registers the shared and private datasets for one recurring instance.
pub fn register_data(storage: &StorageManager, instance: u64, row_scale: f64) -> Result<()> {
    register_data_with(storage, instance, row_scale, SHARED_ROWS)
}

/// Like [`register_data`] but with explicit shared-stream sizes (the
/// feedback-loop ablation skews them so compile-time estimates mislead).
pub fn register_data_with(
    storage: &StorageManager,
    instance: u64,
    row_scale: f64,
    shared_rows: [u64; 3],
) -> Result<()> {
    let date = 17_000 + instance as i32;
    for (g, &rows) in shared_rows.iter().enumerate() {
        let n = ((rows as f64 * row_scale) as u64).max(100);
        storage.put_dataset(
            shared_guid(g, instance),
            Table::single(stream_schema(), gen_rows(sip64(&[g as u8]), n, date)),
        );
    }
    let mut rng = rng_for(1234, "prod32-private-sizes");
    for job in 0..32 {
        let n = ((rng.gen_range(4_000.0_f64..90_000.0) * row_scale) as u64).max(50);
        storage.put_dataset(
            private_guid(job, instance),
            Table::single(stream_schema(), gen_rows(sip64(&[99, job as u8]), n, date)),
        );
    }
    Ok(())
}

/// Builds the 32 job specs of one recurring instance, in arrival order
/// (grouped by shared computation, matching the paper's replay).
pub fn jobs(instance: u64) -> Result<Vec<JobSpec>> {
    let date = 17_000 + instance as i32;
    let mut specs = Vec::with_capacity(32);
    let mut job_idx = 0usize;
    for (group, &size) in GROUP_SIZES.iter().enumerate() {
        for k in 0..size {
            let mut b = PlanBuilder::new();
            // --- the shared computation (identical for every job in the
            // group, per instance) -----------------------------------------
            let scan = b.table_scan(
                shared_guid(group, instance),
                format!("prod32/shared{group}/<date>/events.ss"),
                stream_schema(),
            );
            let fil = b.filter(
                scan,
                Expr::col(3).ge(Expr::param("@@startDate", Value::Date(date))),
            );
            let ex = b.exchange(
                fil,
                Partitioning::Hash {
                    cols: vec![0],
                    parts: 8,
                },
            );
            let agg = b.aggregate(
                ex,
                vec![0],
                vec![
                    AggExpr::new("events", AggFunc::Count, 1),
                    AggExpr::new("total", AggFunc::Sum, 2),
                ],
            );
            let shared_root = b.sort(agg, SortOrder::asc(&[0]));

            // --- the private part ------------------------------------------
            let pscan = b.table_scan(
                private_guid(job_idx, instance),
                format!("prod32/private{job_idx}/<date>/events.ss"),
                stream_schema(),
            );
            let pfil = b.filter(pscan, Expr::col(2).gt(Expr::lit(5.0 + k as f64)));
            let pex = b.exchange(
                pfil,
                Partitioning::Hash {
                    cols: vec![0],
                    parts: 8,
                },
            );
            let pagg = b.aggregate(pex, vec![0], vec![AggExpr::new("mine", AggFunc::Sum, 2)]);
            let joined = b.join(shared_root, pagg, JoinKind::Inner, vec![0], vec![0]);
            let out = b.project(
                joined,
                vec![
                    NamedExpr::new("user", Expr::col(0)),
                    NamedExpr::new("events", Expr::col(1)),
                    NamedExpr::new("score", Expr::col(2).mul(Expr::lit(1.0 + k as f64 / 10.0))),
                ],
            );
            b.write(out, format!("prod32/out/j{job_idx}/<date>/r.ss"));
            specs.push(JobSpec {
                id: JobId::new(instance * 1_000 + job_idx as u64),
                cluster: ClusterId::new(7),
                vc: VcId::new(group as u64),
                user: UserId::new((job_idx % 9) as u64),
                template: TemplateId::new(7_000 + job_idx as u64),
                instance,
                graph: b.build()?,
            });
            job_idx += 1;
        }
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_signature::sign_graph;
    use std::collections::HashMap;

    #[test]
    fn thirty_two_jobs_in_three_groups() {
        let specs = jobs(0).unwrap();
        assert_eq!(specs.len(), 32);
        // Shared computation: within each group, the sort-rooted subgraph
        // (node index 4) has the same precise signature.
        let mut sig_count: HashMap<scope_common::Sig128, usize> = HashMap::new();
        for spec in &specs {
            let signed = sign_graph(&spec.graph).unwrap();
            let sort_sig = signed.of(scope_common::ids::NodeId::new(4)).precise;
            *sig_count.entry(sort_sig).or_default() += 1;
        }
        let mut counts: Vec<usize> = sig_count.values().copied().collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![4, 12, 16]);
    }

    #[test]
    fn instances_are_recurring() {
        let s0 = jobs(0).unwrap();
        let s1 = jobs(1).unwrap();
        let g0 = sign_graph(&s0[0].graph).unwrap();
        let g1 = sign_graph(&s1[0].graph).unwrap();
        let root0 = s0[0].graph.roots()[0];
        let root1 = s1[0].graph.roots()[0];
        assert_ne!(g0.of(root0).precise, g1.of(root1).precise);
        assert_eq!(g0.of(root0).normalized, g1.of(root1).normalized);
    }

    #[test]
    fn data_registers_and_executes() {
        let storage = StorageManager::new();
        register_data(&storage, 0, 0.05).unwrap();
        let specs = jobs(0).unwrap();
        let out = scope_engine::job::run_job_baseline(
            &specs[0],
            &storage,
            &scope_engine::cost::CostModel::default(),
            &scope_engine::sim::ClusterConfig::default(),
            scope_common::time::SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(out.outputs.len(), 1);
        assert!(out.outputs.values().next().unwrap().num_rows() > 0);
    }
}
