//! Bench-gate evaluation shared by the `bench_diff` binary and its tests.
//!
//! A *gate* is a metric inside a `BENCH_*.json` artifact that CI compares
//! against the committed baseline. Numeric gates tolerate a per-gate
//! relative regression ([`TOLERANCE`] by default, wider for wall-clock
//! metrics — CI-runner noise); boolean gates must not flip from `true`
//! to `false`.
//!
//! Malformed artifacts fail **loudly**: a gated key that is missing,
//! non-numeric, NaN, or non-finite in *either* artifact is a gate failure,
//! never a silent pass — a bench that stops emitting a metric must not
//! green-light the regression it was guarding against. The only tolerated
//! absences are deliberate: multi-core-only gates are skipped when either
//! host reports itself inapplicable, and a boolean gate whose *baseline*
//! is `false` cannot regress (it only binds once a baseline achieved it).

use crate::jsonlite::Value;

/// Direction of improvement for a numeric gate.
#[derive(Clone, Copy, Debug)]
pub enum Better {
    Higher,
    Lower,
}

/// Default allowed relative regression before a numeric gate fails.
pub const TOLERANCE: f64 = 0.25;

/// Wide tolerance for wall-clock gates measured over loopback TCP: the
/// scheduler owns the tail there, and the regressions these gates exist to
/// catch (a Nagle stall, a starved admission queue) are order-of-magnitude,
/// not percentage-sized.
pub const WALL_CLOCK_TOLERANCE: f64 = 0.75;

/// One gated numeric metric.
pub struct Gate {
    /// Dotted path into the artifact, e.g. `leak.bounded`.
    pub path: &'static str,
    pub better: Better,
    /// Only compare when both artifacts flag multi-core applicability.
    pub multi_core_only: bool,
    /// Allowed relative regression for this gate.
    pub tolerance: f64,
}

/// The numeric gates for a bench, keyed by its `"bench"` field.
pub fn numeric_gates(bench: &str) -> &'static [Gate] {
    match bench {
        "metadata_scale" => &[
            Gate {
                path: "single_thread_ratio",
                better: Better::Higher,
                multi_core_only: false,
                tolerance: TOLERANCE,
            },
            Gate {
                path: "speedup_at_4_threads",
                better: Better::Higher,
                multi_core_only: true,
                tolerance: TOLERANCE,
            },
        ],
        "analyzer_scale" => &[
            Gate {
                path: "incremental_ratio",
                better: Better::Lower,
                multi_core_only: false,
                tolerance: TOLERANCE,
            },
            Gate {
                path: "speedup_at_4_threads",
                better: Better::Higher,
                multi_core_only: true,
                tolerance: TOLERANCE,
            },
        ],
        "subsumption" => &[
            Gate {
                path: "tier2_hit_rate",
                better: Better::Higher,
                multi_core_only: false,
                tolerance: TOLERANCE,
            },
            Gate {
                path: "hit_rate_uplift",
                better: Better::Higher,
                multi_core_only: false,
                tolerance: TOLERANCE,
            },
            Gate {
                path: "p99_sim_ratio",
                better: Better::Lower,
                multi_core_only: false,
                tolerance: TOLERANCE,
            },
        ],
        "frontdoor" => &[
            Gate {
                path: "p99_lookup_wall_micros",
                better: Better::Lower,
                multi_core_only: false,
                tolerance: WALL_CLOCK_TOLERANCE,
            },
            Gate {
                path: "saturation_ops_per_sec",
                better: Better::Higher,
                multi_core_only: false,
                tolerance: WALL_CLOCK_TOLERANCE,
            },
        ],
        "sharing" => &[
            // All three are simulated, deterministic quantities (the trace
            // is sip-hash-seeded), so the ordinary tolerance applies.
            Gate {
                path: "reuse_hit_rate",
                better: Better::Higher,
                multi_core_only: false,
                tolerance: TOLERANCE,
            },
            Gate {
                path: "cpu_saved_sim_micros",
                better: Better::Higher,
                multi_core_only: false,
                tolerance: TOLERANCE,
            },
            Gate {
                path: "p99_wait_sim_micros",
                better: Better::Lower,
                multi_core_only: false,
                tolerance: TOLERANCE,
            },
        ],
        "executor" => &[
            // Ratio of executors on the same host: stable across machines,
            // so the ordinary tolerance applies.
            Gate {
                path: "speedup",
                better: Better::Higher,
                multi_core_only: false,
                tolerance: TOLERANCE,
            },
            Gate {
                path: "rows_per_sec_columnar",
                better: Better::Higher,
                multi_core_only: false,
                tolerance: WALL_CLOCK_TOLERANCE,
            },
        ],
        "persistence" => &[
            // Cold-start replay wall, normalized to per-10k-records so
            // quick and full runs are comparable; wall-clock tolerance —
            // it is disk + CPU on a shared CI runner.
            Gate {
                path: "replay_micros_per_10k",
                better: Better::Lower,
                multi_core_only: false,
                tolerance: WALL_CLOCK_TOLERANCE,
            },
            // Snapshot recovery over full-log replay: the ratio of two
            // walls on the same host, so the ordinary tolerance applies.
            Gate {
                path: "snapshot_speedup",
                better: Better::Higher,
                multi_core_only: false,
                tolerance: TOLERANCE,
            },
        ],
        _ => &[],
    }
}

/// The boolean gates for a bench.
pub fn bool_gates(bench: &str) -> &'static [&'static str] {
    match bench {
        "metadata_scale" => &["single_thread_within_10pct", "leak.bounded"],
        "analyzer_scale" => &[
            "meets_25pct_target",
            "incremental_matches_full",
            "parallel_matches_serial",
        ],
        "subsumption" => &["p99_within_10pct", "uplift_positive", "results_equivalent"],
        "frontdoor" => &["shed_rate_ok"],
        "sharing" => &[
            "hits_exceed_views_only",
            "cpu_saved_positive",
            "results_equivalent",
        ],
        "executor" => &["stats_equal", "meets_5x_target"],
        "persistence" => &["fingerprints_equal", "torn_tail_recovered"],
        _ => &[],
    }
}

/// Resolves a dotted path inside a parsed artifact.
pub fn lookup<'a>(root: &'a Value, path: &str) -> Option<&'a Value> {
    path.split('.').try_fold(root, |v, key| v.get(key))
}

/// Outcome of one gate comparison.
#[derive(Debug, PartialEq, Eq)]
pub enum GateStatus {
    Pass,
    Skip,
    Fail,
}

/// One evaluated gate, ready to print.
pub struct GateResult {
    pub path: &'static str,
    pub status: GateStatus,
    pub detail: String,
}

impl GateResult {
    pub fn passed(&self) -> bool {
        self.status != GateStatus::Fail
    }
}

/// Reads a gated numeric value, distinguishing the failure modes so the
/// report can say *why* the artifact is malformed.
fn numeric(artifact: &Value, path: &str, which: &str) -> Result<f64, String> {
    let Some(v) = lookup(artifact, path) else {
        return Err(format!("metric missing in {which} artifact"));
    };
    let Some(n) = v.as_f64() else {
        return Err(format!("metric non-numeric in {which} artifact"));
    };
    if n.is_nan() {
        return Err(format!("metric is NaN in {which} artifact"));
    }
    if !n.is_finite() {
        return Err(format!("metric non-finite in {which} artifact"));
    }
    Ok(n)
}

fn boolean(artifact: &Value, path: &str, which: &str) -> Result<bool, String> {
    let Some(v) = lookup(artifact, path) else {
        return Err(format!("metric missing in {which} artifact"));
    };
    v.as_bool()
        .ok_or_else(|| format!("metric non-boolean in {which} artifact"))
}

/// Evaluates every gate for `bench` against the two artifacts.
///
/// Returns one [`GateResult`] per gate; the run passes iff every result
/// [`passed`](GateResult::passed). Benches with no registered gates
/// return an empty list.
pub fn evaluate(bench: &str, baseline: &Value, fresh: &Value) -> Vec<GateResult> {
    let multi_core = |v: &Value| {
        lookup(v, "multi_core_target_applicable")
            .and_then(Value::as_bool)
            .unwrap_or(false)
    };
    let both_multi_core = multi_core(baseline) && multi_core(fresh);

    let mut results = Vec::new();
    for gate in numeric_gates(bench) {
        if gate.multi_core_only && !both_multi_core {
            results.push(GateResult {
                path: gate.path,
                status: GateStatus::Skip,
                detail: "multi-core gate, not applicable on both runs".into(),
            });
            continue;
        }
        let values = numeric(baseline, gate.path, "baseline")
            .and_then(|b| numeric(fresh, gate.path, "fresh").map(|f| (b, f)));
        let (base, new) = match values {
            Ok(pair) => pair,
            Err(why) => {
                results.push(GateResult {
                    path: gate.path,
                    status: GateStatus::Fail,
                    detail: why,
                });
                continue;
            }
        };
        // Relative change in the direction of "worse"; zero baselines
        // cannot regress relatively.
        let regression = if base.abs() < f64::EPSILON {
            0.0
        } else {
            match gate.better {
                Better::Higher => (base - new) / base,
                Better::Lower => (new - base) / base,
            }
        };
        let pass = regression <= gate.tolerance;
        results.push(GateResult {
            path: gate.path,
            status: if pass {
                GateStatus::Pass
            } else {
                GateStatus::Fail
            },
            detail: format!(
                "baseline={base:.3} fresh={new:.3} regression={:+.1}%",
                regression * 100.0
            ),
        });
    }

    for path in bool_gates(bench) {
        let values = boolean(baseline, path, "baseline")
            .and_then(|b| boolean(fresh, path, "fresh").map(|f| (b, f)));
        let (base, new) = match values {
            Ok(pair) => pair,
            Err(why) => {
                results.push(GateResult {
                    path,
                    status: GateStatus::Fail,
                    detail: why,
                });
                continue;
            }
        };
        // A gate the baseline never met (e.g. recorded on a 1-core host)
        // cannot regress; it only binds once a baseline achieved it.
        let pass = !base || new;
        results.push(GateResult {
            path,
            status: if pass {
                GateStatus::Pass
            } else {
                GateStatus::Fail
            },
            detail: format!("baseline={base} fresh={new}"),
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonlite::parse;

    fn eval(bench: &str, baseline: &str, fresh: &str) -> Vec<GateResult> {
        evaluate(bench, &parse(baseline).unwrap(), &parse(fresh).unwrap())
    }

    fn all_pass(results: &[GateResult]) -> bool {
        results.iter().all(GateResult::passed)
    }

    const GOOD: &str = r#"{
        "bench": "subsumption",
        "tier2_hit_rate": 0.4,
        "hit_rate_uplift": 0.4,
        "p99_sim_ratio": 1.02,
        "p99_within_10pct": true,
        "uplift_positive": true,
        "results_equivalent": true
    }"#;

    #[test]
    fn identical_artifacts_pass() {
        assert!(all_pass(&eval("subsumption", GOOD, GOOD)));
    }

    #[test]
    fn missing_numeric_key_fails_loudly_in_either_artifact() {
        let hollow = GOOD.replace("\"hit_rate_uplift\": 0.4,", "");
        for (b, f) in [(hollow.as_str(), GOOD), (GOOD, hollow.as_str())] {
            let results = eval("subsumption", b, f);
            let gate = results
                .iter()
                .find(|r| r.path == "hit_rate_uplift")
                .unwrap();
            assert_eq!(gate.status, GateStatus::Fail, "{}", gate.detail);
            assert!(gate.detail.contains("missing"), "{}", gate.detail);
        }
    }

    #[test]
    fn non_numeric_and_nan_values_fail_loudly() {
        let stringy = GOOD.replace("\"p99_sim_ratio\": 1.02", "\"p99_sim_ratio\": \"NaN\"");
        let results = eval("subsumption", GOOD, &stringy);
        let gate = results.iter().find(|r| r.path == "p99_sim_ratio").unwrap();
        assert_eq!(gate.status, GateStatus::Fail);
        assert!(gate.detail.contains("non-numeric"), "{}", gate.detail);

        let nully = GOOD.replace("\"p99_sim_ratio\": 1.02", "\"p99_sim_ratio\": null");
        let results = eval("subsumption", &nully, GOOD);
        let gate = results.iter().find(|r| r.path == "p99_sim_ratio").unwrap();
        assert_eq!(gate.status, GateStatus::Fail);
        assert!(gate.detail.contains("baseline"), "{}", gate.detail);
    }

    #[test]
    fn missing_bool_gate_fails_instead_of_passing_silently() {
        // The pre-fix arm `(Some(false) | None, _) => true` waved missing
        // keys through; they must fail now.
        let hollow = GOOD.replace("\"uplift_positive\": true,", "");
        let results = eval("subsumption", GOOD, &hollow);
        let gate = results
            .iter()
            .find(|r| r.path == "uplift_positive")
            .unwrap();
        assert_eq!(gate.status, GateStatus::Fail);
        assert!(gate.detail.contains("missing"), "{}", gate.detail);

        let stringy = GOOD.replace("\"uplift_positive\": true,", "\"uplift_positive\": 1,");
        let results = eval("subsumption", GOOD, &stringy);
        let gate = results
            .iter()
            .find(|r| r.path == "uplift_positive")
            .unwrap();
        assert_eq!(gate.status, GateStatus::Fail);
        assert!(gate.detail.contains("non-boolean"), "{}", gate.detail);
    }

    #[test]
    fn false_baseline_bool_cannot_regress_but_true_one_binds() {
        let never_met = GOOD.replace("\"p99_within_10pct\": true", "\"p99_within_10pct\": false");
        let results = eval("subsumption", &never_met, &never_met);
        let gate = results
            .iter()
            .find(|r| r.path == "p99_within_10pct")
            .unwrap();
        assert_eq!(gate.status, GateStatus::Pass);

        let results = eval("subsumption", GOOD, &never_met);
        let gate = results
            .iter()
            .find(|r| r.path == "p99_within_10pct")
            .unwrap();
        assert_eq!(gate.status, GateStatus::Fail);
    }

    #[test]
    fn numeric_regression_beyond_tolerance_fails_within_passes() {
        let slightly_worse = GOOD.replace("\"hit_rate_uplift\": 0.4", "\"hit_rate_uplift\": 0.32");
        assert!(all_pass(&eval("subsumption", GOOD, &slightly_worse)));

        let much_worse = GOOD.replace("\"hit_rate_uplift\": 0.4", "\"hit_rate_uplift\": 0.1");
        let results = eval("subsumption", GOOD, &much_worse);
        let gate = results
            .iter()
            .find(|r| r.path == "hit_rate_uplift")
            .unwrap();
        assert_eq!(gate.status, GateStatus::Fail);

        // Lower-is-better gates regress in the other direction.
        let slower = GOOD.replace("\"p99_sim_ratio\": 1.02", "\"p99_sim_ratio\": 2.0");
        let results = eval("subsumption", GOOD, &slower);
        let gate = results.iter().find(|r| r.path == "p99_sim_ratio").unwrap();
        assert_eq!(gate.status, GateStatus::Fail);
    }

    #[test]
    fn multi_core_gates_skip_unless_both_artifacts_applicable() {
        let single = r#"{
            "bench": "metadata_scale",
            "single_thread_ratio": 0.9,
            "single_thread_within_10pct": true,
            "leak": {"bounded": true},
            "multi_core_target_applicable": false
        }"#;
        let results = eval("metadata_scale", single, single);
        let gate = results
            .iter()
            .find(|r| r.path == "speedup_at_4_threads")
            .unwrap();
        assert_eq!(gate.status, GateStatus::Skip);
        assert!(all_pass(&results));

        // Once both hosts are multi-core, the missing metric fails loudly.
        let multi = single.replace(
            "\"multi_core_target_applicable\": false",
            "\"multi_core_target_applicable\": true",
        );
        let results = eval("metadata_scale", &multi, &multi);
        let gate = results
            .iter()
            .find(|r| r.path == "speedup_at_4_threads")
            .unwrap();
        assert_eq!(gate.status, GateStatus::Fail);
        assert!(gate.detail.contains("missing"), "{}", gate.detail);
    }

    #[test]
    fn wall_clock_gates_get_the_wide_tolerance() {
        let base = r#"{
            "bench": "frontdoor",
            "p99_lookup_wall_micros": 200,
            "saturation_ops_per_sec": 70000,
            "shed_rate_ok": true
        }"#;
        // +60% p99 / -40% throughput: scheduler-noise territory over
        // loopback, inside WALL_CLOCK_TOLERANCE, outside TOLERANCE.
        let noisy = r#"{
            "bench": "frontdoor",
            "p99_lookup_wall_micros": 320,
            "saturation_ops_per_sec": 42000,
            "shed_rate_ok": true
        }"#;
        assert!(all_pass(&eval("frontdoor", base, noisy)));

        // An order-of-magnitude stall (a Nagle re-regression) still fails.
        let stalled = r#"{
            "bench": "frontdoor",
            "p99_lookup_wall_micros": 40000,
            "saturation_ops_per_sec": 70000,
            "shed_rate_ok": true
        }"#;
        let results = eval("frontdoor", base, stalled);
        let gate = results
            .iter()
            .find(|r| r.path == "p99_lookup_wall_micros")
            .unwrap();
        assert_eq!(gate.status, GateStatus::Fail);
    }

    #[test]
    fn unknown_bench_has_no_gates() {
        assert!(eval(
            "mystery",
            r#"{"bench": "mystery"}"#,
            r#"{"bench": "mystery"}"#
        )
        .is_empty());
    }
}
