//! Experiment harness for the CloudViews reproduction.
//!
//! Every table and figure in the paper's evaluation has a generator here;
//! the `figures` binary dispatches to them and prints the same series the
//! paper plots (see EXPERIMENTS.md for the paper-vs-measured record):
//!
//! | paper      | function                      |
//! |------------|-------------------------------|
//! | Figure 1   | [`experiments::fig1`]         |
//! | Figure 2a  | [`experiments::fig2a`]        |
//! | Figure 2b  | [`experiments::fig2b`]        |
//! | Figure 3   | [`experiments::fig3`]         |
//! | Figure 4a  | [`experiments::fig4a`]        |
//! | Figure 4b-d| [`experiments::fig4bcd`]      |
//! | Figure 5   | [`experiments::fig5`]         |
//! | Figure 11  | [`experiments::fig11_12`]     |
//! | Figure 12  | [`experiments::fig11_12`]     |
//! | Figure 13  | [`experiments::fig13`]        |
//! | §7.3       | [`experiments::overheads`]    |
//! | ablations  | [`experiments::ablations`]    |
//!
//! [`compile_only`] synthesizes workload-repository records from
//! compile-time plans alone (the workload-shape figures need signatures,
//! not execution); [`prod32`] is the 32-job production workload of
//! Section 7.1.

pub mod compile_only;
pub mod experiments;
pub mod gates;
pub mod jsonlite;
pub mod prod32;
