//! Implementations of every paper table/figure plus the ablation studies.
//!
//! Each function returns a printable TSV-ish report; the `figures` binary
//! dispatches to them. Shape criteria for each experiment are recorded in
//! EXPERIMENTS.md.

use std::collections::HashMap;
use std::sync::Arc;

use cloudviews::analyzer::{
    mine_overlaps, overlap_metrics, run_analysis, AnalyzerConfig, SelectionConstraints,
    SelectionPolicy,
};
use cloudviews::reporting::{
    self, improvement_stats, operator_breakdown, overlap_summary, pct_change,
};
use cloudviews::{CloudViews, RunMode};
use scope_common::hash::Sig128;
use scope_common::stats::{log_space, Distribution};
use scope_common::time::{SimDuration, SimTime};
use scope_common::Result;
use scope_engine::cost::CostEstimator;
use scope_engine::job::JobSpec;
use scope_engine::repo::JobRecord;
use scope_engine::storage::StorageManager;
use scope_plan::{OpKind, PhysicalProps};
use scope_workload::recurring::{RecurringWorkload, WorkloadConfig};
use scope_workload::tpcds::TpcdsWorkload;

use crate::compile_only::cluster_records;
use crate::prod32;

fn refs(records: &[JobRecord]) -> Vec<&JobRecord> {
    records.iter().collect()
}

/// Renders a CDF as `x<TAB>F(x)` lines over a log-spaced support.
fn cdf_lines(label: &str, d: &Distribution, lo: f64, hi: f64, points: usize) -> String {
    let mut out = format!("# {label}: {}\n", d.summary());
    if d.is_empty() {
        return out;
    }
    for (x, y) in d.cdf_series(&log_space(lo.max(1e-6), hi.max(lo * 10.0), points)) {
        out.push_str(&format!("{x:.4}\t{y:.4}\n"));
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 1 — overlap in five production clusters.
// ---------------------------------------------------------------------------

/// Figure 1: % overlapping jobs / % users with overlap / % overlapping
/// subgraphs across five clusters, plus the Section 1.2 headline stats.
pub fn fig1(seed: u64) -> Result<String> {
    let workload = RecurringWorkload::generate(WorkloadConfig::paper_five_clusters(seed))?;
    let mut out = String::from(
        "# Figure 1 — overlap per production cluster (paper: >45% jobs except cluster3, >65% users, up to 80% subgraphs)\n",
    );
    let mut all_jobs = 0usize;
    let mut all_overlapping = 0usize;
    let mut user_pcts = Vec::new();
    for (ci, cw) in workload.clusters.iter().enumerate() {
        let records = cluster_records(&workload, ci, 1)?;
        let m = overlap_metrics(&refs(&records));
        out.push_str(&format!("{}\n", overlap_summary(&cw.spec.name, &m)));
        all_jobs += m.jobs_total;
        all_overlapping += m.jobs_overlapping;
        user_pcts.push(m.pct_users_overlapping());
    }
    out.push_str(&format!(
        "# headline: {:.1}% of all jobs overlap (paper: ~40%); mean user overlap {:.1}% (paper: ~70%)\n",
        100.0 * all_overlapping as f64 / all_jobs.max(1) as f64,
        user_pcts.iter().sum::<f64>() / user_pcts.len().max(1) as f64,
    ));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figure 2 — per-VC overlap in one large cluster.
// ---------------------------------------------------------------------------

fn large_cluster_metrics(seed: u64, vcs: usize) -> Result<(Vec<JobRecord>, String)> {
    let workload = RecurringWorkload::generate(WorkloadConfig::paper_large_cluster(seed, vcs))?;
    let records = cluster_records(&workload, 0, 1)?;
    Ok((records, format!("{} VCs", vcs)))
}

/// Figure 2(a): percentage of jobs overlapping per VC, sorted descending
/// (paper: some VCs at 0%, 54% of VCs above 50%, a few at 100%).
pub fn fig2a(seed: u64, vcs: usize) -> Result<String> {
    let (records, label) = large_cluster_metrics(seed, vcs)?;
    let m = overlap_metrics(&refs(&records));
    let mut pcts: Vec<f64> = m.vc_overlap_pct().values().copied().collect();
    pcts.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut out = format!("# Figure 2a — % overlapping jobs per VC ({label}), sorted\n");
    for (i, p) in pcts.iter().enumerate() {
        out.push_str(&format!("{i}\t{p:.1}\n"));
    }
    let above50 = pcts.iter().filter(|p| **p > 50.0).count();
    let zero = pcts.iter().filter(|p| **p == 0.0).count();
    let full = pcts.iter().filter(|p| **p >= 99.9).count();
    out.push_str(&format!(
        "# {:.0}% of VCs above 50% overlap (paper: 54%); {zero} VCs at zero; {full} VCs at 100%\n",
        100.0 * above50 as f64 / pcts.len().max(1) as f64
    ));
    Ok(out)
}

/// Figure 2(b): average overlap frequency per VC (paper: 1.5–112, median
/// ≈ 3).
pub fn fig2b(seed: u64, vcs: usize) -> Result<String> {
    let (records, label) = large_cluster_metrics(seed, vcs)?;
    // Within-VC precise-signature frequencies.
    let mut per_vc: HashMap<u64, HashMap<Sig128, u64>> = HashMap::new();
    for r in &records {
        let vc = per_vc.entry(r.vc.raw()).or_default();
        for s in &r.subgraphs {
            *vc.entry(s.precise).or_default() += 1;
        }
    }
    let mut avgs: Vec<f64> = per_vc
        .values()
        .filter_map(|sigs| {
            let freqs: Vec<u64> = sigs.values().filter(|c| **c >= 2).copied().collect();
            if freqs.is_empty() {
                None
            } else {
                Some(freqs.iter().sum::<u64>() as f64 / freqs.len() as f64)
            }
        })
        .collect();
    avgs.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut out = format!("# Figure 2b — average overlap frequency per VC ({label}), sorted\n");
    for (i, f) in avgs.iter().enumerate() {
        out.push_str(&format!("{i}\t{f:.2}\n"));
    }
    let d = Distribution::new(avgs);
    out.push_str(&format!(
        "# distribution: {} (paper: range 1.5-112, median 2.96, p75 3.82, p95 7.1)\n",
        d.summary()
    ));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figure 3 — cumulative overlap distributions in a business unit.
// ---------------------------------------------------------------------------

/// Figure 3: CDFs of overlapping-subgraph counts per job, per input, per
/// user, per VC (paper: jobs have 10s–100s of overlaps; >90% of inputs
/// consumed by the same subgraph at least twice).
pub fn fig3(seed: u64) -> Result<String> {
    let workload = RecurringWorkload::generate(WorkloadConfig::paper_business_unit(seed))?;
    let records = cluster_records(&workload, 0, 1)?;
    let m = overlap_metrics(&refs(&records));
    let per_job: Vec<f64> = m
        .per_job
        .values()
        .map(|&c| c as f64)
        .filter(|c| *c > 0.0)
        .collect();
    let per_input: Vec<f64> = m.per_input.values().map(|&c| c as f64).collect();
    let per_user: Vec<f64> = m
        .per_user
        .values()
        .map(|&c| c as f64)
        .filter(|c| *c > 0.0)
        .collect();
    let per_vc: Vec<f64> = m
        .per_vc
        .values()
        .map(|&c| c as f64)
        .filter(|c| *c > 0.0)
        .collect();
    let mut out =
        String::from("# Figure 3 — cumulative overlap distributions, one business unit\n");
    out.push_str(&cdf_lines(
        "3a overlaps per job",
        &Distribution::new(per_job),
        1.0,
        1e3,
        16,
    ));
    out.push_str(&cdf_lines(
        "3b consumptions per input",
        &Distribution::new(per_input),
        1.0,
        1e4,
        16,
    ));
    out.push_str(&cdf_lines(
        "3c overlaps per user",
        &Distribution::new(per_user),
        1.0,
        1e4,
        16,
    ));
    out.push_str(&cdf_lines(
        "3d overlaps per VC",
        &Distribution::new(per_vc),
        1.0,
        1e5,
        16,
    ));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figure 4 — operator-wise overlap.
// ---------------------------------------------------------------------------

/// Figure 4(a): share of overlapping subgraphs by root operator (paper:
/// Sort and Exchange at the top, long tail over 26 operator kinds).
pub fn fig4a(seed: u64) -> Result<String> {
    let workload = RecurringWorkload::generate(WorkloadConfig::paper_business_unit(seed))?;
    let records = cluster_records(&workload, 0, 1)?;
    let groups = mine_overlaps(&refs(&records));
    let mut out = String::from("# Figure 4a — operator-wise share of overlapping subgraphs (%)\n");
    for (kind, pct) in operator_breakdown(&groups) {
        out.push_str(&format!("{kind}\t{pct:.3}\n"));
    }
    Ok(out)
}

/// Figure 4(b–d): per-operator frequency CDFs (paper: shuffle steep, filter
/// flatter, user-defined processors flattest — shared libraries).
pub fn fig4bcd(seed: u64) -> Result<String> {
    let workload = RecurringWorkload::generate(WorkloadConfig::paper_business_unit(seed))?;
    let records = cluster_records(&workload, 0, 1)?;
    let groups = mine_overlaps(&refs(&records));
    let freq_of = |kind: OpKind| -> Vec<f64> {
        groups
            .iter()
            .filter(|g| g.root_kind == kind)
            .map(|g| g.occurrences as f64)
            .collect()
    };
    let mut out = String::from("# Figure 4b-d — per-operator overlap frequency CDFs\n");
    out.push_str(&cdf_lines(
        "4b shuffle (Exchange)",
        &Distribution::new(freq_of(OpKind::Exchange)),
        1.0,
        1e4,
        14,
    ));
    out.push_str(&cdf_lines(
        "4c filter",
        &Distribution::new(freq_of(OpKind::Filter)),
        1.0,
        1e3,
        14,
    ));
    out.push_str(&cdf_lines(
        "4d processor (user code)",
        &Distribution::new(freq_of(OpKind::Process)),
        1.0,
        1e3,
        14,
    ));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figure 5 — impact of overlap (needs execution).
// ---------------------------------------------------------------------------

/// Figure 5: CDFs of view frequency, runtime, output size, and
/// view-to-query cost ratio over an executed business-unit workload
/// (paper: frequency heavily skewed — median 2, p95 14; 26% of overlaps
/// under 1 s; 46% of cost ratios ≤ 0.01, only 4% above 0.5).
pub fn fig5(seed: u64, row_scale: f64) -> Result<String> {
    let mut config = WorkloadConfig::paper_business_unit(seed);
    config.clusters[0].num_templates = 150; // executed, so keep it tractable
    let workload = RecurringWorkload::generate(config)?;
    let mut service = CloudViews::builder(Arc::new(StorageManager::new())).build();
    // Impact ratios need compute to dominate scheduling overhead, as it
    // does in production; shrink the per-vertex overhead accordingly.
    service.cluster.vertex_overhead = SimDuration::from_millis(1);
    workload.register_instance_data(0, 0, &service.storage, row_scale)?;
    let jobs = workload.jobs_for_instance(0, 0)?;
    service.run_sequence(&jobs, RunMode::Baseline)?;
    let records = service.repo.records();
    let groups = mine_overlaps(&refs(&records));

    let freq: Vec<f64> = groups.iter().map(|g| g.occurrences as f64).collect();
    let runtime: Vec<f64> = groups
        .iter()
        .map(|g| g.avg_cumulative_cpu.as_secs_f64())
        .collect();
    let size_gb: Vec<f64> = groups
        .iter()
        .map(|g| g.avg_out_bytes as f64 / 1e9)
        .collect();
    let ratio: Vec<f64> = groups.iter().map(|g| g.cost_ratio()).collect();

    let mut out = format!(
        "# Figure 5 — impact of overlap ({} jobs executed, {} overlapping computations)\n",
        jobs.len(),
        groups.len()
    );
    out.push_str(&cdf_lines(
        "5a frequency",
        &Distribution::new(freq),
        1.0,
        1e4,
        14,
    ));
    out.push_str(&cdf_lines(
        "5b runtime (s)",
        &Distribution::new(runtime),
        1e-5,
        1e3,
        14,
    ));
    out.push_str(&cdf_lines(
        "5c size (GB)",
        &Distribution::new(size_gb),
        1e-7,
        1.0,
        14,
    ));
    // Cost ratio is linear in the paper; print a linear CDF.
    let d = Distribution::new(ratio);
    out.push_str(&format!("# 5d view-to-query cost ratio: {}\n", d.summary()));
    for x in [0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0] {
        out.push_str(&format!("{x:.2}\t{:.4}\n", d.cdf_at(x)));
    }
    out.push_str(&format!(
        "# fraction with ratio <= 0.01: {:.0}% (paper 46%); > 0.5: {:.0}% (paper 4%)\n",
        100.0 * d.cdf_at(0.01),
        100.0 * (1.0 - d.cdf_at(0.5)),
    ));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figures 11/12 — production jobs, latency and CPU.
// ---------------------------------------------------------------------------

/// Figures 11 and 12: the 32-job production workload, baseline vs
/// CloudViews (paper: average latency +43%, total +60%; average CPU +36%,
/// total +54%; the three materializing jobs regress).
pub fn fig11_12(row_scale: f64) -> Result<String> {
    let service = CloudViews::builder(Arc::new(StorageManager::new())).build();

    // Day 0: baseline to fill the repository.
    prod32::register_data(&service.storage, 0, row_scale)?;
    let day0 = prod32::jobs(0)?;
    service.run_sequence(&day0, RunMode::Baseline)?;

    // Analyzer with the paper's production constraints, top-3 by utility.
    let analysis = service.analyze(&AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 3 },
        constraints: SelectionConstraints::paper_production(),
        ..Default::default()
    })?;
    service.install_analysis(&analysis);

    // Day 1: same 32 jobs over new data, baseline then CloudViews.
    prod32::register_data(&service.storage, 1, row_scale)?;
    let day1 = prod32::jobs(1)?;
    let baseline = service.run_sequence(&day1, RunMode::Baseline)?;
    let enabled = service.run_sequence(&day1, RunMode::CloudViews)?;
    for (b, e) in baseline.iter().zip(&enabled) {
        assert_eq!(b.output_checksums, e.output_checksums, "output corruption");
    }

    let mut out = format!(
        "# Figures 11/12 — 32 production jobs (3 views selected: {})\n",
        analysis.selected.len()
    );
    out.push_str(&reporting::impact_report(&baseline, &enabled));
    let (avg_lat, tot_lat) = improvement_stats(&baseline, &enabled, |r| r.latency);
    let (avg_cpu, tot_cpu) = improvement_stats(&baseline, &enabled, |r| r.cpu_time);
    let builders = enabled.iter().filter(|r| !r.views_built.is_empty()).count();
    let regressing = baseline
        .iter()
        .zip(&enabled)
        .filter(|(b, e)| e.latency > b.latency)
        .count();
    out.push_str(&format!(
        "# Fig11 latency: avg {avg_lat:+.1}% (paper +43%), total {tot_lat:+.1}% (paper +60%)\n\
         # Fig12 cpu:     avg {avg_cpu:+.1}% (paper +36%), total {tot_cpu:+.1}% (paper +54%)\n\
         # {builders} materializing jobs; {regressing} jobs slower than baseline (paper: 3)\n",
    ));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figure 13 — TPC-DS.
// ---------------------------------------------------------------------------

/// Figure 13: per-query runtime improvement over TPC-DS with the top-10
/// overlapping computations (paper: 79/99 improved, avg 12.5%, total 17%,
/// peaks around ±62%).
pub fn fig13(scale: f64) -> Result<String> {
    let tpcds = TpcdsWorkload::new(scale, 1);
    let service = CloudViews::builder(Arc::new(StorageManager::new())).build();
    tpcds.register_data(&service.storage)?;
    let jobs = tpcds.all_jobs()?;
    let baseline = service.run_sequence(&jobs, RunMode::Baseline)?;

    let analysis = service.analyze(&AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 10 },
        constraints: SelectionConstraints {
            min_cost_ratio: 0.05,
            ..Default::default()
        },
        ..Default::default()
    })?;
    service.install_analysis(&analysis);

    // Coordination hints order the build queries before their reusers.
    let ordered = cloudviews::analyzer::coordination::apply_order(
        tpcds.all_jobs()?,
        &analysis.order_hints,
        |j: &JobSpec| j.template,
    );
    let mut enabled = service.run_sequence(&ordered, RunMode::CloudViews)?;
    enabled.sort_by_key(|r| r.job);

    let mut out = format!(
        "# Figure 13 — TPC-DS (scale {scale}) runtime improvement %, top-{} views\n",
        analysis.selected.len()
    );
    let mut improved = 0;
    for (b, e) in baseline.iter().zip(&enabled) {
        assert_eq!(
            b.output_checksums, e.output_checksums,
            "q{} corrupted",
            b.job
        );
        let delta = pct_change(b.latency, e.latency);
        if delta > 0.5 {
            improved += 1;
        }
        out.push_str(&format!("q{}\t{delta:+.1}\n", b.job.raw()));
    }
    let (avg, total) = improvement_stats(&baseline, &enabled, |r| r.latency);
    out.push_str(&format!(
        "# {improved}/99 queries improved (paper 79/99); avg {avg:+.1}% (paper +12.5%); total {total:+.1}% (paper +17%)\n",
    ));
    Ok(out)
}

// ---------------------------------------------------------------------------
// §7.3 — overheads.
// ---------------------------------------------------------------------------

/// Section 7.3 overheads: metadata lookup latency, optimizer-time change
/// when creating and when using views, analyzer throughput.
pub fn overheads(scale: f64) -> Result<String> {
    let mut out = String::from("# Section 7.3 — CloudViews overheads\n");

    // (1) Metadata lookup latency, modeled (paper: 19 ms single-threaded,
    // 14.3 ms with 5 service threads) plus measured in-process time.
    let clock = Arc::new(scope_common::time::SimClock::new());
    for threads in [1usize, 5] {
        let svc = cloudviews::MetadataService::new(Arc::clone(&clock), threads);
        let modeled = svc.lookup_latency();
        out.push_str(&format!(
            "metadata_lookup\tthreads={threads}\tmodeled={:.1}ms\n",
            modeled.as_secs_f64() * 1e3
        ));
    }

    // (2) Optimizer overhead on TPC-DS: baseline vs materialize vs reuse.
    let tpcds = TpcdsWorkload::new(scale, 1);
    let service = CloudViews::builder(Arc::new(StorageManager::new())).build();
    tpcds.register_data(&service.storage)?;
    let jobs = tpcds.all_jobs()?;
    let baseline = service.run_sequence(&jobs, RunMode::Baseline)?;
    let analysis = service.analyze(&AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 10 },
        constraints: SelectionConstraints {
            min_cost_ratio: 0.05,
            per_job_cap: Some(1),
            ..Default::default()
        },
        ..Default::default()
    })?;
    service.install_analysis(&analysis);
    // First CV pass: queries that materialize pay the follow-up phase.
    let first = service.run_sequence(&tpcds.all_jobs()?, RunMode::CloudViews)?;
    // Second CV pass: views exist, queries reuse (smaller trees).
    let second = service.run_sequence(&tpcds.all_jobs()?, RunMode::CloudViews)?;

    // Paired per-query comparison: each query's optimize time in the
    // CloudViews pass against its own baseline time.
    let paired_change =
        |cv: &[cloudviews::runtime::JobRunReport],
         f: &dyn Fn(&cloudviews::runtime::JobRunReport) -> bool| {
            let deltas: Vec<f64> = cv
                .iter()
                .zip(&baseline)
                .filter(|(r, _)| f(r))
                .map(|(r, b)| {
                    let base = b.optimizer.wall_time.as_secs_f64().max(1e-9);
                    100.0 * (r.optimizer.wall_time.as_secs_f64() / base - 1.0)
                })
                .collect();
            (
                deltas.iter().sum::<f64>() / deltas.len().max(1) as f64,
                deltas.len(),
            )
        };
    let base_us = baseline
        .iter()
        .map(|r| r.optimizer.wall_time.as_secs_f64() * 1e6)
        .sum::<f64>()
        / baseline.len() as f64;
    let (mat_pct, n_mat) = paired_change(&first, &|r| {
        !r.views_built.is_empty() && r.views_reused.is_empty()
    });
    let (reuse_pct, n_reuse) = paired_change(&second, &|r| {
        !r.views_reused.is_empty() && r.views_built.is_empty()
    });
    out.push_str(&format!(
        "optimizer_time\tbaseline_avg={base_us:.0}us\n\
         optimizer_time\tmaterializing({n_mat} queries)\t{mat_pct:+.0}% vs same-query baseline (paper +28%)\n\
         optimizer_time\treusing({n_reuse} queries)\t{reuse_pct:+.0}% vs same-query baseline (paper -17%)\n",
    ));

    // (3) Analyzer throughput on a cluster-scale compile-only workload.
    let big = RecurringWorkload::generate(WorkloadConfig::paper_large_cluster(5, 80))?;
    let records = cluster_records(&big, 0, 2)?;
    let start = std::time::Instant::now();
    let outcome = run_analysis(&records, &AnalyzerConfig::default())?;
    let secs = start.elapsed().as_secs_f64();
    out.push_str(&format!(
        "analyzer\tjobs={}\tgroups={}\twall={:.2}s\tthroughput={:.0} jobs/s (paper: tens of thousands of jobs in ~2h)\n",
        outcome.jobs_analyzed,
        outcome.groups.len(),
        secs,
        outcome.jobs_analyzed as f64 / secs.max(1e-9),
    ));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Ablations — the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------------

/// All four ablations; see DESIGN.md §5.
pub fn ablations(row_scale: f64) -> Result<String> {
    let mut out = String::from("# Ablations\n");
    out.push_str(&ablation_feedback(row_scale)?);
    out.push_str(&ablation_physical_design(row_scale)?);
    out.push_str(&ablation_coordination(row_scale)?);
    out.push_str(&ablation_selection(row_scale)?);
    Ok(out)
}

/// Runs day0 baseline + day1 baseline/CV with the given selected views;
/// returns (baseline cpu, cv cpu, reuse count).
fn run_prod32_with_views(
    row_scale: f64,
    select: impl FnMut(&CloudViews) -> Result<Vec<cloudviews::SelectedView>>,
) -> Result<(SimDuration, SimDuration, usize)> {
    run_prod32_with_views_rows(row_scale, prod32::SHARED_ROWS, select)
}

fn run_prod32_with_views_rows(
    row_scale: f64,
    shared_rows: [u64; 3],
    mut select: impl FnMut(&CloudViews) -> Result<Vec<cloudviews::SelectedView>>,
) -> Result<(SimDuration, SimDuration, usize)> {
    let service = CloudViews::builder(Arc::new(StorageManager::new())).build();
    prod32::register_data_with(&service.storage, 0, row_scale, shared_rows)?;
    service.run_sequence(&prod32::jobs(0)?, RunMode::Baseline)?;
    let selected = select(&service)?;
    service.metadata.load_annotations(&selected);
    prod32::register_data_with(&service.storage, 1, row_scale, shared_rows)?;
    let day1 = prod32::jobs(1)?;
    let baseline = service.run_sequence(&day1, RunMode::Baseline)?;
    let enabled = service.run_sequence(&day1, RunMode::CloudViews)?;
    Ok((
        baseline.iter().map(|r| r.cpu_time).sum(),
        enabled.iter().map(|r| r.cpu_time).sum(),
        enabled.iter().map(|r| r.views_reused.len()).sum(),
    ))
}

/// Ablation 1 (§5.1): select views by observed runtime statistics (the
/// feedback loop) vs by compile-time estimates.
pub fn ablation_feedback(row_scale: f64) -> Result<String> {
    let production = AnalyzerConfig {
        // Budget of two views over three candidates: the policies must
        // choose, and the choice is where estimates get hurt.
        policy: SelectionPolicy::TopKUtility { k: 2 },
        constraints: SelectionConstraints::paper_production(),
        ..Default::default()
    };
    // Skewed shared-stream sizes: group 1's computation is actually tiny,
    // but a statistics-less estimator (which assumes uniform input sizes)
    // ranks it by frequency alone and picks it over group 2.
    let skewed: [u64; 3] = [150_000, 15_000, 200_000];
    // Feedback-loop selection (mined statistics).
    let (base, cv_feedback, _) = run_prod32_with_views_rows(row_scale, skewed, |svc| {
        Ok(svc.analyze(&production)?.selected)
    })?;
    // Estimate-based selection: replace every mined statistic with the
    // compile-time estimator's prediction before selection runs.
    let (_, cv_estimates, _) = run_prod32_with_views_rows(row_scale, skewed, |svc| {
        let estimator = CostEstimator::default();
        let mut records = svc.repo.records();
        for r in &mut records {
            // Re-estimate each job's plan with no statistics oracle.
            let spec_graph = prod32::jobs(r.instance)?
                .into_iter()
                .find(|s| s.id == r.job)
                .map(|s| s.graph);
            let Some(graph) = spec_graph else { continue };
            let est = estimator.estimate(&graph, &|op| {
                // The estimator does not get to see true base-table sizes
                // for unstructured inputs (the paper's core complaint).
                let _ = op;
                None
            });
            for s in &mut r.subgraphs {
                let cpu = est.subgraph_cpu_us(&graph, s.root);
                s.cumulative_cpu = SimDuration::from_micros(cpu as u64);
                s.out_rows = est.rows[s.root.index()] as u64;
                s.out_bytes = (est.rows[s.root.index()] * estimator.row_bytes) as u64;
            }
            let total: f64 = est.total_cpu_us();
            r.cpu_time = SimDuration::from_micros(total as u64);
        }
        Ok(run_analysis(&records, &production)?.selected)
    })?;
    Ok(format!(
        "## ablation_feedback (prod32, cpu)\nbaseline\t{:.2}s\nfeedback_loop\t{:.2}s\t{:+.1}%\nestimates_only\t{:.2}s\t{:+.1}%\n",
        base.as_secs_f64(),
        cv_feedback.as_secs_f64(),
        pct_change(base, cv_feedback),
        cv_estimates.as_secs_f64(),
        pct_change(base, cv_estimates),
    ))
}

/// Ablation 2 (§5.3): analyzer-mined view physical design vs a mismatched
/// design that forces consumers to repartition.
pub fn ablation_physical_design(row_scale: f64) -> Result<String> {
    let production = AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 3 },
        constraints: SelectionConstraints::paper_production(),
        ..Default::default()
    };
    let (base, cv_mined, _) =
        run_prod32_with_views(row_scale, |svc| Ok(svc.analyze(&production)?.selected))?;
    let (_, cv_bad, _) = run_prod32_with_views(row_scale, |svc| {
        let mut selected = svc.analyze(&production)?.selected;
        for s in &mut selected {
            // A hostile design: partitioned on a non-join column.
            s.annotation.props = PhysicalProps::hashed(vec![1], 4);
        }
        Ok(selected)
    })?;
    Ok(format!(
        "## ablation_physical_design (prod32, cpu)\nbaseline\t{:.2}s\nmined_design\t{:.2}s\t{:+.1}%\nmismatched_design\t{:.2}s\t{:+.1}%\n",
        base.as_secs_f64(),
        cv_mined.as_secs_f64(),
        pct_change(base, cv_mined),
        cv_bad.as_secs_f64(),
        pct_change(base, cv_bad),
    ))
}

/// Ablation 3 (§6.4/§6.5): submission order and early materialization under
/// concurrent arrivals — reuse hit-rates.
pub fn ablation_coordination(row_scale: f64) -> Result<String> {
    let production = AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 3 },
        constraints: SelectionConstraints::paper_production(),
        ..Default::default()
    };
    let mut out = String::from("## ablation_coordination (prod32)\n");

    // (a) Staggered arrivals (a job every 20 ms, jobs run for hundreds of
    // ms), hinted vs reverse submission order. The hints put the shortest
    // job of each overlap group first, so its view publishes earliest and
    // the most overlapping jobs catch it.
    for (label, hinted) in [("hinted_order", true), ("reverse_order", false)] {
        let service = CloudViews::builder(Arc::new(StorageManager::new())).build();
        prod32::register_data(&service.storage, 0, row_scale)?;
        service.run_sequence(&prod32::jobs(0)?, RunMode::Baseline)?;
        let analysis = service.analyze(&production)?;
        service.install_analysis(&analysis);
        prod32::register_data(&service.storage, 1, row_scale)?;
        let mut day1 = prod32::jobs(1)?;
        if hinted {
            day1 = cloudviews::analyzer::coordination::apply_order(
                day1,
                &analysis.order_hints,
                |j: &JobSpec| j.template,
            );
        } else {
            day1.reverse();
        }
        let mut reports = Vec::new();
        for (i, spec) in day1.iter().enumerate() {
            let start = SimTime(i as u64 * 20_000);
            reports.push(service.run_job_at(spec, RunMode::CloudViews, start)?);
        }
        let reused: usize = reports.iter().map(|r| r.views_reused.len()).sum();
        let cpu: SimDuration = reports.iter().map(|r| r.cpu_time).sum();
        out.push_str(&format!(
            "{label}\treused={reused}\tcpu={:.2}s\n",
            cpu.as_secs_f64()
        ));
    }

    // (b) Concurrent arrivals, early materialization on vs off: reuse count.
    for early in [true, false] {
        let mut service = CloudViews::builder(Arc::new(StorageManager::new())).build();
        service.early_materialization = early;
        prod32::register_data(&service.storage, 0, row_scale)?;
        service.run_sequence(&prod32::jobs(0)?, RunMode::Baseline)?;
        let analysis = service.analyze(&production)?;
        service.install_analysis(&analysis);
        prod32::register_data(&service.storage, 1, row_scale)?;
        // Stagger arrivals tightly: a new job every 20 simulated ms while
        // jobs run for hundreds of ms — heavy overlap, so whether a view
        // publishes at stage completion or job completion decides how many
        // overlapping jobs can still catch it.
        let day1 = prod32::jobs(1)?;
        let mut reports = Vec::new();
        for (i, spec) in day1.iter().enumerate() {
            let start = SimTime(i as u64 * 20_000);
            reports.push(service.run_job_at(spec, RunMode::CloudViews, start)?);
        }
        let reused: usize = reports.iter().map(|r| r.views_reused.len()).sum();
        let built: usize = reports.iter().map(|r| r.views_built.len()).sum();
        out.push_str(&format!(
            "early_materialization={early}\treused={reused}\tbuilt={built}\n"
        ));
    }
    Ok(out)
}

/// Ablation 4 (§5.2): selection policies at a fixed storage budget —
/// realized CPU savings.
pub fn ablation_selection(row_scale: f64) -> Result<String> {
    let constraints = SelectionConstraints {
        min_cost_ratio: 0.05,
        per_job_cap: Some(1),
        ..Default::default()
    };
    let mut out = String::from("## ablation_selection (prod32, cpu)\n");
    // Probe the candidate view sizes once, then set a budget that fits
    // roughly two of the three views — forcing packing to actually pack.
    let probe = {
        let service = CloudViews::builder(Arc::new(StorageManager::new())).build();
        prod32::register_data(&service.storage, 0, row_scale)?;
        service.run_sequence(&prod32::jobs(0)?, RunMode::Baseline)?;
        service.analyze(&AnalyzerConfig {
            policy: SelectionPolicy::TopKUtility { k: 3 },
            constraints: constraints.clone(),
            ..Default::default()
        })?
    };
    let mut sizes: Vec<u64> = probe
        .selected
        .iter()
        .map(|s| s.annotation.avg_bytes)
        .collect();
    sizes.sort_unstable();
    let budget: u64 = sizes.iter().take(2).sum::<u64>() + sizes.first().copied().unwrap_or(0) / 2;
    for (label, policy) in [
        ("top3_utility", SelectionPolicy::TopKUtility { k: 3 }),
        (
            "top3_per_byte",
            SelectionPolicy::TopKUtilityPerByte { k: 3 },
        ),
        (
            "packing_budget",
            SelectionPolicy::Packing {
                storage_budget_bytes: budget,
            },
        ),
    ] {
        let cfg = AnalyzerConfig {
            policy,
            constraints: constraints.clone(),
            ..Default::default()
        };
        let mut stored_bytes = 0u64;
        let (base, cv, reused) = run_prod32_with_views(row_scale, |svc| {
            let selected = svc.analyze(&cfg)?.selected;
            stored_bytes = selected.iter().map(|s| s.annotation.avg_bytes).sum();
            Ok(selected)
        })?;
        out.push_str(&format!(
            "{label}\tcpu={:.2}s\t{:+.1}%\treused={reused}\tpredicted_bytes={stored_bytes}\n",
            cv.as_secs_f64(),
            pct_change(base, cv)
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Correctness sweep used by integration tests and the `verify` subcommand.
// ---------------------------------------------------------------------------

/// Runs prod32 with CloudViews and asserts output equality against the
/// baseline; returns a one-line confirmation. Also exercised by the
/// integration tests.
pub fn verify_correctness(row_scale: f64) -> Result<String> {
    let service = CloudViews::builder(Arc::new(StorageManager::new())).build();
    prod32::register_data(&service.storage, 0, row_scale)?;
    service.run_sequence(&prod32::jobs(0)?, RunMode::Baseline)?;
    let analysis = service.analyze(&AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 3 },
        constraints: SelectionConstraints::paper_production(),
        ..Default::default()
    })?;
    service.install_analysis(&analysis);
    prod32::register_data(&service.storage, 1, row_scale)?;
    let day1 = prod32::jobs(1)?;
    let baseline = service.run_sequence(&day1, RunMode::Baseline)?;
    let enabled = service.run_sequence(&day1, RunMode::CloudViews)?;
    let mut reused = 0;
    for (b, e) in baseline.iter().zip(&enabled) {
        assert_eq!(b.output_checksums, e.output_checksums);
        assert_eq!(b.output_rows, e.output_rows);
        reused += e.views_reused.len();
    }
    Ok(format!(
        "verified: 32 jobs, outputs identical, {reused} view reuses, {} views stored\n",
        service.storage.num_views()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_renders_five_clusters() {
        let out = fig1(1).unwrap();
        assert_eq!(out.lines().filter(|l| l.starts_with("cluster")).count(), 5);
        assert!(out.contains("headline"));
    }

    #[test]
    fn fig2_series_sorted() {
        let out = fig2a(1, 24).unwrap();
        let pcts: Vec<f64> = out
            .lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| l.split('\t').nth(1)?.parse().ok())
            .collect();
        assert_eq!(pcts.len(), 24);
        assert!(pcts.windows(2).all(|w| w[0] >= w[1]), "descending");
        let out = fig2b(1, 24).unwrap();
        assert!(out.contains("distribution:"));
    }

    #[test]
    fn fig11_12_shows_improvement() {
        let out = fig11_12(0.05).unwrap();
        assert!(out.contains("Fig11 latency"));
        assert!(out.contains("TOTAL"));
        // Total CPU improvement must be positive at any scale.
        let line = out.lines().find(|l| l.contains("Fig12 cpu")).unwrap();
        assert!(line.contains("avg +"), "cpu must improve: {line}");
    }

    #[test]
    fn verify_correctness_runs() {
        let line = verify_correctness(0.05).unwrap();
        assert!(line.contains("outputs identical"));
    }
}
