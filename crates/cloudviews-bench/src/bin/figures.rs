//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p cloudviews-bench --bin figures -- all
//! cargo run --release -p cloudviews-bench --bin figures -- fig11 [row_scale]
//! ```
//!
//! Subcommands: `fig1 fig2a fig2b fig3 fig4a fig4bcd fig5 fig11 fig12 fig13
//! overheads ablations verify all`. Numeric argument = scale (row_scale for
//! the recurring workloads, TPC-DS scale factor for fig13/overheads).

use cloudviews_bench::experiments as ex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let scale: Option<f64> = args.get(1).and_then(|s| s.parse().ok());
    let seed = 1u64;

    let run = |name: &str| -> String {
        let result = match name {
            "fig1" => ex::fig1(seed),
            "fig2a" => ex::fig2a(seed, 160),
            "fig2b" => ex::fig2b(seed, 160),
            "fig3" => ex::fig3(seed),
            "fig4a" => ex::fig4a(seed),
            "fig4bcd" => ex::fig4bcd(seed),
            "fig5" => ex::fig5(seed, scale.unwrap_or(3.0)),
            // fig11 and fig12 come from the same 32-job experiment.
            "fig11" | "fig12" => ex::fig11_12(scale.unwrap_or(1.0)),
            "fig13" => ex::fig13(scale.unwrap_or(1.5)),
            "overheads" => ex::overheads(scale.unwrap_or(1.0)),
            "ablations" => ex::ablations(scale.unwrap_or(0.25)),
            "verify" => ex::verify_correctness(scale.unwrap_or(0.25)),
            other => {
                eprintln!("unknown figure `{other}`");
                std::process::exit(2);
            }
        };
        match result {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{name} failed: {e}");
                std::process::exit(1);
            }
        }
    };

    if cmd == "all" {
        for name in [
            "fig1",
            "fig2a",
            "fig2b",
            "fig3",
            "fig4a",
            "fig4bcd",
            "fig5",
            "fig11",
            "fig13",
            "overheads",
            "ablations",
            "verify",
        ] {
            println!("==================== {name} ====================");
            println!("{}", run(name));
        }
    } else {
        println!("{}", run(cmd));
    }
}
