//! Compares a fresh `BENCH_*.json` artifact against the committed baseline
//! and fails (exit 1) when a gated metric regresses by more than 25%.
//!
//! Usage: `bench_diff <baseline.json> <fresh.json>`
//!
//! The two files must describe the same bench (matching `"bench"` field);
//! which metrics are gated is keyed off that name. Ratios and wall-time
//! derived metrics are compared relatively (25% tolerance absorbs CI-runner
//! noise); boolean gates must not flip from `true` to `false`. Metrics that
//! only mean anything on multi-core hosts (fold/shard speedups) are skipped
//! unless *both* artifacts report `multi_core_target_applicable` — a 1-core
//! baseline cannot anchor a speedup comparison.

use std::process::ExitCode;

use cloudviews_bench::jsonlite::{parse, Value};

/// Direction of improvement for a numeric gate.
#[derive(Clone, Copy)]
enum Better {
    Higher,
    Lower,
}

/// Allowed relative regression before the gate fails.
const TOLERANCE: f64 = 0.25;

struct Gate {
    /// Dotted path into the artifact, e.g. `leak.bounded`.
    path: &'static str,
    better: Better,
    /// Only compare when both artifacts flag multi-core applicability.
    multi_core_only: bool,
}

fn numeric_gates(bench: &str) -> &'static [Gate] {
    match bench {
        "metadata_scale" => &[
            Gate {
                path: "single_thread_ratio",
                better: Better::Higher,
                multi_core_only: false,
            },
            Gate {
                path: "speedup_at_4_threads",
                better: Better::Higher,
                multi_core_only: true,
            },
        ],
        "analyzer_scale" => &[
            Gate {
                path: "incremental_ratio",
                better: Better::Lower,
                multi_core_only: false,
            },
            Gate {
                path: "speedup_at_4_threads",
                better: Better::Higher,
                multi_core_only: true,
            },
        ],
        _ => &[],
    }
}

fn bool_gates(bench: &str) -> &'static [&'static str] {
    match bench {
        "metadata_scale" => &["single_thread_within_10pct", "leak.bounded"],
        "analyzer_scale" => &[
            "meets_25pct_target",
            "incremental_matches_full",
            "parallel_matches_serial",
        ],
        _ => &[],
    }
}

fn lookup<'a>(root: &'a Value, path: &str) -> Option<&'a Value> {
    path.split('.').try_fold(root, |v, key| v.get(key))
}

fn load(path: &str) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("bench_diff: read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("bench_diff: parse {path}: {e}"))
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_path), Some(fresh_path)) = (args.next(), args.next()) else {
        return Err("usage: bench_diff <baseline.json> <fresh.json>".into());
    };
    let baseline = load(&baseline_path)?;
    let fresh = load(&fresh_path)?;

    let bench = baseline
        .get("bench")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{baseline_path}: missing \"bench\" field"))?
        .to_string();
    let fresh_bench = fresh.get("bench").and_then(Value::as_str).unwrap_or("?");
    if bench != fresh_bench {
        return Err(format!(
            "bench mismatch: baseline is {bench:?}, fresh is {fresh_bench:?}"
        ));
    }
    if numeric_gates(&bench).is_empty() && bool_gates(&bench).is_empty() {
        println!("bench_diff[{bench}]: no gated metrics for this bench, nothing to compare");
        return Ok(true);
    }

    let multi_core = |v: &Value| {
        lookup(v, "multi_core_target_applicable")
            .and_then(Value::as_bool)
            .unwrap_or(false)
    };
    let both_multi_core = multi_core(&baseline) && multi_core(&fresh);

    let mut ok = true;
    for gate in numeric_gates(&bench) {
        if gate.multi_core_only && !both_multi_core {
            println!(
                "bench_diff[{bench}] {:<28} SKIP (multi-core gate, not applicable on both runs)",
                gate.path
            );
            continue;
        }
        let base = lookup(&baseline, gate.path).and_then(Value::as_f64);
        let new = lookup(&fresh, gate.path).and_then(Value::as_f64);
        let (Some(base), Some(new)) = (base, new) else {
            println!(
                "bench_diff[{bench}] {:<28} FAIL (metric missing)",
                gate.path
            );
            ok = false;
            continue;
        };
        // Relative change in the direction of "worse"; zero baselines
        // cannot regress relatively.
        let regression = if base.abs() < f64::EPSILON {
            0.0
        } else {
            match gate.better {
                Better::Higher => (base - new) / base,
                Better::Lower => (new - base) / base,
            }
        };
        let pass = regression <= TOLERANCE;
        println!(
            "bench_diff[{bench}] {:<28} {}  baseline={base:.3} fresh={new:.3} regression={:+.1}%",
            gate.path,
            if pass { "ok  " } else { "FAIL" },
            regression * 100.0,
        );
        ok &= pass;
    }

    for path in bool_gates(&bench) {
        let base = lookup(&baseline, path).and_then(Value::as_bool);
        let new = lookup(&fresh, path).and_then(Value::as_bool);
        // A gate the baseline never met (e.g. recorded on a 1-core host)
        // cannot regress; it only binds once a baseline achieved it.
        let pass = match (base, new) {
            (Some(true), got) => got == Some(true),
            (Some(false) | None, _) => true,
        };
        println!(
            "bench_diff[{bench}] {path:<28} {}  baseline={base:?} fresh={new:?}",
            if pass { "ok  " } else { "FAIL" },
        );
        ok &= pass;
    }

    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!(
                "bench_diff: gated metric regressed beyond {:.0}%",
                TOLERANCE * 100.0
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
