//! Compares a fresh `BENCH_*.json` artifact against the committed baseline
//! and fails (exit 1) when a gated metric regresses by more than 25%.
//!
//! Usage: `bench_diff <baseline.json> <fresh.json>`
//!
//! The two files must describe the same bench (matching `"bench"` field);
//! which metrics are gated is keyed off that name. Ratios and wall-time
//! derived metrics are compared relatively (25% tolerance absorbs CI-runner
//! noise); boolean gates must not flip from `true` to `false`. A gated key
//! that is missing, non-numeric, or NaN in either artifact fails the gate —
//! see [`cloudviews_bench::gates`] for the exact rules. Metrics that only
//! mean anything on multi-core hosts (fold/shard speedups) are skipped
//! unless *both* artifacts report `multi_core_target_applicable` — a 1-core
//! baseline cannot anchor a speedup comparison.

use std::process::ExitCode;

use cloudviews_bench::gates::{self, GateStatus, TOLERANCE};
use cloudviews_bench::jsonlite::{parse, Value};

fn load(path: &str) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("bench_diff: read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("bench_diff: parse {path}: {e}"))
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_path), Some(fresh_path)) = (args.next(), args.next()) else {
        return Err("usage: bench_diff <baseline.json> <fresh.json>".into());
    };
    let baseline = load(&baseline_path)?;
    let fresh = load(&fresh_path)?;

    let bench = baseline
        .get("bench")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{baseline_path}: missing \"bench\" field"))?
        .to_string();
    let fresh_bench = fresh.get("bench").and_then(Value::as_str).unwrap_or("?");
    if bench != fresh_bench {
        return Err(format!(
            "bench mismatch: baseline is {bench:?}, fresh is {fresh_bench:?}"
        ));
    }

    let results = gates::evaluate(&bench, &baseline, &fresh);
    if results.is_empty() {
        println!("bench_diff[{bench}]: no gated metrics for this bench, nothing to compare");
        return Ok(true);
    }
    for r in &results {
        let status = match r.status {
            GateStatus::Pass => "ok  ",
            GateStatus::Skip => "SKIP",
            GateStatus::Fail => "FAIL",
        };
        println!("bench_diff[{bench}] {:<28} {status}  {}", r.path, r.detail);
    }
    Ok(results.iter().all(|r| r.passed()))
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!(
                "bench_diff: a gated metric regressed beyond {:.0}% or was malformed",
                TOLERANCE * 100.0
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
