//! Kill–replay crash-recovery loop (PR 10 `recovery` CI job).
//!
//! Proves the durable-state guarantee end to end, with real process death
//! rather than in-process fault injection: a writer subprocess drives a
//! durable [`CloudViews`] service through a recurring workload, the parent
//! SIGKILLs it at a varied point mid-activity, then recovers the store and
//! checks the catalog:
//!
//! - recovery never panics (torn tails drop at a clean record boundary);
//! - the recovered fingerprints are computable and stable across a
//!   recover → recover double-open (replay is deterministic);
//! - the job-record log never moves backwards across kills (acked
//!   mutations survive);
//! - recovered build locks are conservative: they all expire once the
//!   clock passes the mined TTL horizon.
//!
//! Usage: `kill_replay [iterations]` (parent), `kill_replay --writer DIR`
//! (internal child mode). `KILL_REPLAY_ITERS` overrides the iteration
//! count; each iteration reopens the same store, so later rounds also
//! exercise recovery-then-continue-appending.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::{CloudViews, RunMode};
use scope_common::time::SimDuration;
use scope_engine::storage::StorageManager;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

fn workload(seed: u64) -> RecurringWorkload {
    RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![ClusterSpec::tiny("kr")],
        seed,
        stream_rows: LogNormal::new(6.0, 0.5, 150.0, 1_500.0),
    })
    .unwrap()
}

fn analyzer_cfg() -> AnalyzerConfig {
    AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 5 },
        constraints: SelectionConstraints {
            per_job_cap: Some(1),
            ..Default::default()
        },
        ..Default::default()
    }
}

fn open_durable(dir: &Path) -> CloudViews {
    CloudViews::builder(Arc::new(StorageManager::new()))
        .incremental_analyzer(analyzer_cfg())
        .durable(dir)
        .build()
}

/// Child mode: prime one instance, announce readiness, then append-loop
/// until killed. Instance indices restart from 0 every respawn — replay
/// is at-least-once and every event is idempotent at its pinned time, so
/// re-running an instance against recovered state is the point, not a bug.
fn writer(dir: &Path) -> ! {
    let w = workload(42);
    let cv = open_durable(dir);
    w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
    cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
        .unwrap();
    let outcome = cv.analyze_round().unwrap();
    cv.install_analysis(&outcome);
    println!("PRIMED");

    let mut i: u64 = 1;
    loop {
        w.register_instance_data(0, i, &cv.storage, 1.0).unwrap();
        cv.run_sequence(&w.jobs_for_instance(0, i).unwrap(), RunMode::CloudViews)
            .unwrap();
        let outcome = cv.analyze_round().unwrap();
        cv.install_analysis(&outcome);
        cv.purge_expired();
        println!("INSTANCE {i}");
        i += 1;
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--writer" {
        writer(Path::new(&args[2]));
    }

    let iterations: u64 = std::env::var("KILL_REPLAY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .or_else(|| args.get(1).and_then(|v| v.parse().ok()))
        .unwrap_or(5);

    let dir: PathBuf = std::env::temp_dir().join(format!("cv-kill-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exe = std::env::current_exe().unwrap();

    let mut prev_records = 0usize;
    for iter in 0..iterations {
        let mut child = Command::new(&exe)
            .arg("--writer")
            .arg(&dir)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn writer");
        let stdout = child.stdout.take().unwrap();
        let mut lines = BufReader::new(stdout).lines();
        loop {
            let line = lines
                .next()
                .expect("writer exited before PRIMED")
                .expect("writer stdout");
            if line == "PRIMED" {
                break;
            }
        }
        // Vary the kill point across iterations so death lands in
        // different phases (mid-run, mid-analysis, mid-purge).
        std::thread::sleep(Duration::from_millis(20 + 70 * (iter % 4)));
        child.kill().expect("kill writer");
        child.wait().expect("reap writer");

        // Recover twice: the first open may truncate a torn tail; both
        // opens must agree — replay is deterministic.
        let cv = open_durable(&dir);
        let fp_meta = cv.metadata.fingerprint();
        let fp_analyzer = cv
            .analyzer
            .as_ref()
            .expect("analyzer installed")
            .state()
            .fingerprint();
        let records = cv.repo.records().len();
        let views = cv.metadata.num_views();
        let now = cv.clock.now();
        assert!(
            records >= prev_records,
            "iter {iter}: record log moved backwards ({records} < {prev_records})"
        );
        prev_records = records;

        // Conservative lock recovery: every recovered lock keeps its
        // original expiry, so advancing well past any mined TTL must
        // drain them all.
        let horizon = now + SimDuration::from_micros(7 * 24 * 3_600 * 1_000_000);
        assert_eq!(
            cv.metadata.num_active_locks(horizon),
            0,
            "iter {iter}: recovered lock outlives every plausible TTL"
        );
        drop(cv);

        let cv2 = open_durable(&dir);
        assert_eq!(
            (fp_meta, fp_analyzer, records),
            (
                cv2.metadata.fingerprint(),
                cv2.analyzer.as_ref().unwrap().state().fingerprint(),
                cv2.repo.records().len(),
            ),
            "iter {iter}: double recovery disagreed (non-deterministic replay)"
        );
        println!(
            "kill_replay: iter {iter} ok — {records} records, {views} views, \
             clock {} us",
            now.micros()
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("kill_replay: {iterations} kill/replay iterations passed");
}
