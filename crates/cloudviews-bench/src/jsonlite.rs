//! Minimal JSON reader for the `BENCH_*.json` artifacts.
//!
//! The bench gates (`bench_diff`) need to read back the hand-written JSON
//! the self-timed benches emit; the workspace deliberately carries no
//! external JSON dependency, so this is a small recursive-descent parser
//! covering exactly the JSON the benches produce: objects, arrays, strings
//! without escapes beyond `\"` / `\\` / `\n` / `\t`, f64 numbers, booleans
//! and null. Errors carry the byte offset for debugging a malformed
//! artifact; there is no serializer (the benches format their own output).

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are kept as `f64`, which is exact for the
/// integer ranges the bench artifacts use (< 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` on other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'/') => out.push('/'),
                    other => return Err(format!("unsupported escape {other:?} at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar (artifacts may contain
                // multi-byte characters in free-text fields).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_artifact_shape() {
        let doc = r#"{
  "bench": "analyzer_scale",
  "quick": true,
  "cores": 1,
  "incremental_ratio": 0.123,
  "curve": [
    { "threads": 1, "fold_wall_micros": 1000, "speedup": 1.000 },
    { "threads": 2, "fold_wall_micros": 600, "speedup": 1.667 }
  ],
  "note": null
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("analyzer_scale"));
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("incremental_ratio").unwrap().as_f64(), Some(0.123));
        let curve = v.get("curve").unwrap().as_arr().unwrap();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[1].get("threads").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("note"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_scalars_and_escapes() {
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("false").unwrap().as_bool(), Some(false));
        assert_eq!(
            parse(r#""a\"b\\c\nd""#).unwrap().as_str(),
            Some("a\"b\\c\nd")
        );
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("{\"k\" 1}").is_err());
    }
}
