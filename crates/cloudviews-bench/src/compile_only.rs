//! Compile-only workload records.
//!
//! The workload-shape figures (1–4) measure *signature overlap*, which is a
//! property of compile-time plans; executing exabyte-scale jobs is neither
//! possible nor needed. This module enumerates each job's subgraphs and
//! synthesizes [`JobRecord`]s with zeroed runtime statistics, so the
//! analyzer's overlap mining runs unmodified over cluster-scale workloads
//! in milliseconds.

use scope_common::time::{SimDuration, SimTime};
use scope_common::Result;
use scope_engine::job::JobSpec;
use scope_engine::repo::{JobRecord, SubgraphRun};
use scope_signature::{enumerate_subgraphs, job_tags};
use scope_workload::recurring::RecurringWorkload;

/// Builds a compile-only record for one job spec.
pub fn compile_only_record(spec: &JobSpec, submitted_at: SimTime) -> Result<JobRecord> {
    let infos = enumerate_subgraphs(&spec.graph)?;
    let subgraphs = infos
        .into_iter()
        .map(|info| SubgraphRun {
            root: info.root,
            precise: info.precise,
            normalized: info.normalized,
            root_kind: info.root_kind,
            num_nodes: info.num_nodes,
            input_tags: info.input_tags,
            props: info.props,
            has_user_code: info.has_user_code,
            out_rows: 0,
            out_bytes: 0,
            exclusive_cpu: SimDuration::ZERO,
            cumulative_cpu: SimDuration::ZERO,
            finish_offset: SimDuration::ZERO,
        })
        .collect();
    Ok(JobRecord {
        job: spec.id,
        cluster: spec.cluster,
        vc: spec.vc,
        user: spec.user,
        template: spec.template,
        instance: spec.instance,
        submitted_at,
        latency: SimDuration::ZERO,
        cpu_time: SimDuration::ZERO,
        tags: job_tags(&spec.graph),
        subgraphs,
    })
}

/// Compile-only records for `instances` recurring instances of one cluster.
pub fn cluster_records(
    workload: &RecurringWorkload,
    cluster_idx: usize,
    instances: u64,
) -> Result<Vec<JobRecord>> {
    let mut records = Vec::new();
    for instance in 0..instances {
        let at = SimTime(instance * 86_400 * 1_000_000);
        for spec in workload.jobs_for_instance(cluster_idx, instance)? {
            records.push(compile_only_record(&spec, at)?);
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_workload::dists::LogNormal;
    use scope_workload::recurring::{ClusterSpec, WorkloadConfig};

    #[test]
    fn compile_only_matches_graph_shape() {
        let w = RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![ClusterSpec::tiny("co")],
            seed: 1,
            stream_rows: LogNormal::new(5.0, 0.5, 50.0, 500.0),
        })
        .unwrap();
        let records = cluster_records(&w, 0, 2).unwrap();
        assert!(!records.is_empty());
        let jobs_day0 = w.jobs_for_instance(0, 0).unwrap();
        assert_eq!(
            records.iter().filter(|r| r.instance == 0).count(),
            jobs_day0.len()
        );
        for r in &records {
            assert!(!r.subgraphs.is_empty());
            assert!(!r.tags.is_empty());
        }
        // Overlap mining works on compile-only records.
        let refs: Vec<&JobRecord> = records.iter().collect();
        let groups = cloudviews::analyzer::mine_overlaps(&refs);
        assert!(!groups.is_empty());
    }
}
