//! Protocol property tests: every frame type round-trips bit-for-bit, and
//! no sequence of adversarial bytes — truncations, mutations, random
//! garbage, hostile length prefixes, nesting bombs — makes the decoder
//! panic. The decoder is the server's first line of defense; its only legal
//! failure mode is `WireError`.

use std::collections::BTreeMap;
use std::io::Cursor;

use cloudviews::api::{LookupRequest, ProposeRequest, ReportRequest};
use cloudviews::metadata::{LockOutcome, LookupResponse, MetadataStats, PurgeSweep};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_common::hash::Sig128;
use scope_common::ids::{JobId, VcId};
use scope_common::time::{SimDuration, SimTime};
use scope_common::ScopeError;
use scope_engine::optimizer::{Annotation, AvailableView, SubsumedView};
use scope_net::proto::{ErrorFrame, ErrorKind, Request, Response};
use scope_net::wire::{
    self, frame_type, read_frame, write_frame, WireError, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
use scope_plan::expr::{AggExpr, AggFunc, BinOp, ScalarFunc, UnaryOp};
use scope_plan::interval::Interval;
use scope_plan::{
    Column, DataType, Expr, NamedExpr, Partitioning, PhysicalProps, Schema, SortDir, SortKey,
    SortOrder, Value,
};
use scope_signature::{SubsumeDescriptor, SubsumeDetail, SubsumeKind};

// ---------------------------------------------------------------------------
// Fixtures: one instance of everything that can ride the wire, exercising
// every enum variant the codec knows about.

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("k", DataType::Int),
        Column::new("ts", DataType::Date),
        Column::new("name", DataType::Str),
        Column::new("score", DataType::Float),
        Column::new("ok", DataType::Bool),
    ])
    .expect("fixture schema")
}

fn props() -> PhysicalProps {
    PhysicalProps {
        partitioning: Partitioning::Hash {
            cols: vec![0, 2],
            parts: 64,
        },
        sort: SortOrder(vec![
            SortKey {
                col: 0,
                dir: SortDir::Asc,
            },
            SortKey {
                col: 3,
                dir: SortDir::Desc,
            },
        ]),
    }
}

/// An expression using every node kind, every value tag, and a few ops.
fn gnarly_expr() -> Expr {
    Expr::Func {
        func: ScalarFunc::If,
        args: vec![
            Expr::Binary {
                op: BinOp::And,
                left: Box::new(Expr::Binary {
                    op: BinOp::Ge,
                    left: Box::new(Expr::Col(1)),
                    right: Box::new(Expr::RecurringParam {
                        name: "@start".into(),
                        value: Value::Date(19_723),
                    }),
                }),
                right: Box::new(Expr::Unary {
                    op: UnaryOp::Not,
                    child: Box::new(Expr::Unary {
                        op: UnaryOp::IsNull,
                        child: Box::new(Expr::Col(2)),
                    }),
                }),
            },
            Expr::Lit(Value::Str("kept".into())),
            Expr::Func {
                func: ScalarFunc::Concat,
                args: vec![
                    Expr::Lit(Value::Null),
                    Expr::Lit(Value::Bool(true)),
                    Expr::Lit(Value::Int(-42)),
                    Expr::Lit(Value::Float(2.5)),
                ],
            },
        ],
    }
}

fn filter_descriptor() -> SubsumeDescriptor {
    let mut intervals = BTreeMap::new();
    intervals.insert(
        1,
        Interval {
            lo: Some((Value::Date(19_000), true)),
            hi: Some((Value::Date(19_700), false)),
        },
    );
    intervals.insert(
        3,
        Interval {
            lo: None,
            hi: Some((Value::Float(0.75), true)),
        },
    );
    SubsumeDescriptor {
        kind: SubsumeKind::Filter,
        child_precise: Sig128::new(0xDEAD_BEEF, 0xFEED_FACE),
        cols: 0b10111,
        keys: 0b00001,
        schema: schema(),
        detail: SubsumeDetail::Filter { intervals },
    }
}

fn project_descriptor() -> SubsumeDescriptor {
    SubsumeDescriptor {
        kind: SubsumeKind::Project,
        child_precise: Sig128::new(7, 9),
        cols: 0b00111,
        keys: 0,
        schema: schema(),
        detail: SubsumeDetail::Project {
            exprs: vec![
                NamedExpr {
                    name: "key".into(),
                    expr: Expr::Col(0),
                },
                NamedExpr {
                    name: "derived".into(),
                    expr: gnarly_expr(),
                },
            ],
        },
    }
}

fn rollup_descriptor() -> SubsumeDescriptor {
    SubsumeDescriptor {
        kind: SubsumeKind::Rollup,
        child_precise: Sig128::new(u64::MAX, 0),
        cols: u64::MAX,
        keys: 0b11,
        schema: schema(),
        detail: SubsumeDetail::Rollup {
            keys: vec![0, 1],
            aggs: vec![
                AggExpr {
                    name: "n".into(),
                    func: AggFunc::Count,
                    input: 0,
                },
                AggExpr {
                    name: "total".into(),
                    func: AggFunc::Sum,
                    input: 3,
                },
                AggExpr {
                    name: "lo".into(),
                    func: AggFunc::Min,
                    input: 3,
                },
                AggExpr {
                    name: "hi".into(),
                    func: AggFunc::Max,
                    input: 3,
                },
                AggExpr {
                    name: "mean".into(),
                    func: AggFunc::Avg,
                    input: 3,
                },
                AggExpr {
                    name: "uniq".into(),
                    func: AggFunc::CountDistinct,
                    input: 2,
                },
            ],
        },
    }
}

fn available_view() -> AvailableView {
    AvailableView {
        precise: Sig128::new(11, 13),
        rows: 1_000_000,
        bytes: 64 << 20,
        props: props(),
    }
}

fn lookup_response() -> LookupResponse {
    LookupResponse {
        annotations: vec![
            Annotation {
                normalized: Sig128::new(1, 2),
                props: props(),
                ttl: SimDuration::from_micros(3_600_000_000),
                avg_cpu: SimDuration::from_micros(250_000),
                avg_rows: 1234,
                avg_bytes: 1 << 22,
            },
            Annotation {
                normalized: Sig128::new(3, 4),
                props: PhysicalProps {
                    partitioning: Partitioning::Any,
                    sort: SortOrder(Vec::new()),
                },
                ttl: SimDuration::from_micros(0),
                avg_cpu: SimDuration::from_micros(0),
                avg_rows: 0,
                avg_bytes: 0,
            },
        ],
        tier2: vec![SubsumedView {
            view: available_view(),
            normalized: Sig128::new(5, 6),
            descriptor: filter_descriptor(),
            avg_cpu: SimDuration::from_micros(99),
        }],
        latency: SimDuration::from_micros(777),
        hit_count: 3,
    }
}

/// Every request frame, exercising every descriptor variant.
fn all_requests() -> Vec<Request> {
    vec![
        Request::Lookup(
            LookupRequest::new(
                JobId::new(42),
                &["wasb://in/clicks.ss".into(), "wasb://in/users.ss".into()],
                SimTime(1_234_567),
            )
            .with_probes(vec![
                filter_descriptor(),
                project_descriptor(),
                rollup_descriptor(),
            ])
            .for_vc(VcId::new(7)),
        ),
        Request::Lookup(LookupRequest::new(JobId::new(0), &[], SimTime::ZERO)),
        Request::Propose(
            ProposeRequest::new(
                Sig128::new(21, 22),
                JobId::new(9),
                SimDuration::from_micros(600_000_000),
                SimTime(55),
            )
            .for_vc(VcId::new(3)),
        ),
        Request::Report(
            ReportRequest::new(
                available_view(),
                Sig128::new(31, 32),
                JobId::new(17),
                SimTime(100),
                SimTime(10_000_000),
            )
            .with_descriptor(Some(rollup_descriptor()))
            .for_vc(VcId::new(5)),
        ),
        Request::Report(ReportRequest::new(
            available_view(),
            Sig128::new(33, 34),
            JobId::new(18),
            SimTime(200),
            SimTime(20_000_000),
        )),
        Request::Purge,
        Request::Stats,
    ]
}

/// Every response frame, including an error frame for every kind.
fn all_responses() -> Vec<Response> {
    let mut out = vec![
        Response::Lookup(lookup_response()),
        Response::Lookup(LookupResponse {
            annotations: Vec::new(),
            tier2: Vec::new(),
            latency: SimDuration::from_micros(0),
            hit_count: 0,
        }),
        Response::Propose(LockOutcome::Acquired),
        Response::Propose(LockOutcome::AlreadyLocked),
        Response::Propose(LockOutcome::AlreadyMaterialized),
        Response::Report,
        Response::Purge(PurgeSweep {
            views_purged: 12,
            annotations_purged: 99,
        }),
        Response::Stats(MetadataStats {
            lookups: 1,
            annotations_returned: 2,
            locks_granted: 3,
            lock_conflicts: 4,
            already_materialized: 5,
            views_registered: 6,
            expired_takeovers: 7,
            failed_lookups: 8,
            failed_proposals: 9,
            failed_reports: 10,
            purged_annotations: 11,
            tier2_hits: 12,
            tier2_rejects: 13,
        }),
    ];
    for kind in ALL_ERROR_KINDS {
        out.push(Response::Error(ErrorFrame::new(kind, "detail text")));
    }
    out
}

const ALL_ERROR_KINDS: [ErrorKind; 12] = [
    ErrorKind::InvalidPlan,
    ErrorKind::Expression,
    ErrorKind::Optimizer,
    ErrorKind::Execution,
    ErrorKind::Storage,
    ErrorKind::Metadata,
    ErrorKind::Workload,
    ErrorKind::ServiceUnavailable,
    ErrorKind::ViewUnavailable,
    ErrorKind::Busy,
    ErrorKind::OverQuota,
    ErrorKind::Malformed,
];

// ---------------------------------------------------------------------------
// Round trips

#[test]
fn every_request_round_trips() {
    for req in all_requests() {
        let (ty, payload) = req.encode();
        let back = Request::decode(ty, &payload).expect("valid request payload decodes");
        assert_eq!(req, back);
        // Stability: re-encoding the decoded value is byte-identical.
        assert_eq!((ty, payload), back.encode());
    }
}

#[test]
fn every_response_round_trips() {
    for resp in all_responses() {
        let (ty, payload) = resp.encode();
        let back = Response::decode(ty, &payload).expect("valid response payload decodes");
        // `LookupResponse` has no `Eq`; byte-identical re-encoding is the
        // round-trip witness (and the contract the acceptance test uses).
        assert_eq!((ty, payload), back.encode());
    }
}

#[test]
fn every_frame_survives_the_wire_layer() {
    for req in all_requests() {
        let (ty, payload) = req.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, ty, &payload).expect("write");
        let (rty, rpayload) = read_frame(&mut Cursor::new(&buf)).expect("read");
        assert_eq!((rty, rpayload), (ty, payload));
    }
    for resp in all_responses() {
        let (ty, payload) = resp.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, ty, &payload).expect("write");
        let (rty, rpayload) = read_frame(&mut Cursor::new(&buf)).expect("read");
        assert_eq!((rty, rpayload), (ty, payload));
    }
}

#[test]
fn error_frames_map_the_scope_error_taxonomy_both_ways() {
    let errors = [
        ScopeError::InvalidPlan("a".into()),
        ScopeError::Expression("b".into()),
        ScopeError::Optimizer("c".into()),
        ScopeError::Execution("d".into()),
        ScopeError::Storage("e".into()),
        ScopeError::Metadata("f".into()),
        ScopeError::Workload("g".into()),
        ScopeError::ServiceUnavailable("h".into()),
        ScopeError::ViewUnavailable("i".into()),
    ];
    for err in &errors {
        let frame = ErrorFrame::from_scope_error(err);
        let back = frame.to_scope_error();
        assert_eq!(err.kind(), back.kind(), "taxonomy preserved for {err:?}");
        assert_eq!(err.message(), back.message());
        assert_eq!(
            err.is_degradable(),
            frame.kind.is_transient(),
            "retry contract preserved for {err:?}"
        );
    }
    // The three wire-level kinds have no ScopeError twin; they degrade to
    // the documented fallbacks and keep their transiency.
    assert!(ErrorKind::Busy.is_transient());
    assert!(!ErrorKind::OverQuota.is_transient());
    assert!(!ErrorKind::Malformed.is_transient());
}

// ---------------------------------------------------------------------------
// Adversarial headers

#[test]
fn header_rejects_bad_magic() {
    let mut buf = Vec::new();
    write_frame(&mut buf, frame_type::PURGE, &[]).unwrap();
    buf[0] = b'X';
    match read_frame(&mut Cursor::new(&buf)) {
        Err(WireError::BadMagic(m)) => assert_eq!(&m[1..], &MAGIC[1..]),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn header_rejects_wrong_version() {
    let mut buf = Vec::new();
    write_frame(&mut buf, frame_type::STATS, &[]).unwrap();
    buf[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
    match read_frame(&mut Cursor::new(&buf)) {
        Err(WireError::BadVersion(v)) => assert_eq!(v, VERSION + 1),
        other => panic!("expected BadVersion, got {other:?}"),
    }
}

#[test]
fn header_rejects_unknown_frame_type() {
    for ty in [0x00u8, 0x06, 0x42, 0x80, 0x86, 0xE1, 0xFF] {
        let mut buf = Vec::new();
        write_frame(&mut buf, frame_type::PURGE, &[]).unwrap();
        buf[6] = ty;
        match read_frame(&mut Cursor::new(&buf)) {
            Err(WireError::BadFrameType(t)) => assert_eq!(t, ty),
            other => panic!("expected BadFrameType(0x{ty:02x}), got {other:?}"),
        }
    }
}

#[test]
fn header_rejects_oversized_length_prefix_before_allocating() {
    // A hostile length prefix (4 GiB - 1) must be rejected from the 12-byte
    // header alone — no payload bytes exist to back it.
    let mut buf = Vec::new();
    write_frame(&mut buf, frame_type::LOOKUP, &[]).unwrap();
    buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    match read_frame(&mut Cursor::new(&buf)) {
        Err(WireError::Oversized(n)) => assert_eq!(n, u32::MAX),
        other => panic!("expected Oversized, got {other:?}"),
    }
    const { assert!(MAX_PAYLOAD < u32::MAX) };
}

#[test]
fn truncated_header_and_payload_fail_as_io() {
    let req = &all_requests()[0];
    let (ty, payload) = req.encode();
    let mut buf = Vec::new();
    write_frame(&mut buf, ty, &payload).unwrap();
    for cut in 0..buf.len() {
        match read_frame(&mut Cursor::new(&buf[..cut])) {
            Err(e) => assert!(e.is_io(), "cut at {cut}: expected io error, got {e}"),
            Ok(_) => panic!("cut at {cut}: truncated frame decoded"),
        }
    }
}

#[test]
fn writer_refuses_oversized_payloads() {
    // Claiming more than MAX_PAYLOAD is a local bug, caught before any
    // bytes hit the socket. (Build the length check input without actually
    // allocating 16 MiB: write_frame checks `payload.len()` only.)
    let payload = vec![0u8; MAX_PAYLOAD as usize + 1];
    let mut sink = Vec::new();
    match write_frame(&mut sink, frame_type::REPORT, &payload) {
        Err(WireError::Oversized(_)) => {}
        other => panic!("expected Oversized, got {other:?}"),
    }
    assert!(
        sink.is_empty(),
        "nothing may be written for a refused frame"
    );
}

// ---------------------------------------------------------------------------
// Adversarial payloads: the decoder may refuse, never panic.

#[test]
fn every_strict_prefix_of_a_valid_payload_is_rejected() {
    for req in all_requests() {
        let (ty, payload) = req.encode();
        for cut in 0..payload.len() {
            assert!(
                Request::decode(ty, &payload[..cut]).is_err(),
                "{ty:#x} prefix of {cut}/{} decoded",
                payload.len()
            );
        }
    }
    for resp in all_responses() {
        let (ty, payload) = resp.encode();
        for cut in 0..payload.len() {
            assert!(
                Response::decode(ty, &payload[..cut]).is_err(),
                "{ty:#x} prefix of {cut}/{} decoded",
                payload.len()
            );
        }
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    for req in all_requests() {
        let (ty, mut payload) = req.encode();
        payload.push(0);
        assert!(Request::decode(ty, &payload).is_err());
    }
    for resp in all_responses() {
        let (ty, mut payload) = resp.encode();
        payload.push(0);
        assert!(Response::decode(ty, &payload).is_err());
    }
}

#[test]
fn single_byte_mutations_never_panic() {
    // Flip every byte of every valid payload through a few values. Decode
    // may succeed (some bytes are free), but must never panic; successful
    // decodes must re-encode without panicking too.
    for req in all_requests() {
        let (ty, payload) = req.encode();
        for pos in 0..payload.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = payload.clone();
                mutated[pos] ^= flip;
                if let Ok(back) = Request::decode(ty, &mutated) {
                    let _ = back.encode();
                }
            }
        }
    }
}

#[test]
fn random_garbage_payloads_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xC10D_41E5);
    let types = [
        frame_type::LOOKUP,
        frame_type::PROPOSE,
        frame_type::REPORT,
        frame_type::PURGE,
        frame_type::STATS,
        frame_type::LOOKUP_OK,
        frame_type::PROPOSE_OK,
        frame_type::REPORT_OK,
        frame_type::PURGE_OK,
        frame_type::STATS_OK,
        frame_type::ERROR,
    ];
    for round in 0..2000 {
        let len = rng.gen_range(0..256usize);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let ty = types[round % types.len()];
        let _ = Request::decode(ty, &payload);
        let _ = Response::decode(ty, &payload);
    }
}

#[test]
fn hostile_sequence_lengths_are_rejected_without_allocation() {
    // A lookup request whose tag count claims 2^32-1 entries: the length
    // prefix must be refused (MAX_SEQ), not trusted for a reservation.
    let mut payload = Vec::new();
    payload.extend_from_slice(&42u64.to_le_bytes()); // job
    payload.extend_from_slice(&7u64.to_le_bytes()); // vc
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // tag count
    let err = Request::decode(frame_type::LOOKUP, &payload).unwrap_err();
    assert!(matches!(err, WireError::Malformed(_)), "got {err}");

    // Same for a hostile string length inside the first tag.
    let mut payload = Vec::new();
    payload.extend_from_slice(&42u64.to_le_bytes());
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.extend_from_slice(&1u32.to_le_bytes()); // one tag
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // of absurd length
    let err = Request::decode(frame_type::LOOKUP, &payload).unwrap_err();
    assert!(matches!(err, WireError::Malformed(_)), "got {err}");
}

#[test]
fn expression_nesting_bombs_are_depth_limited() {
    // 200 nested unary nodes squeeze into ~400 bytes; an unchecked decoder
    // would recurse once per node. The codec caps depth at MAX_EXPR_DEPTH.
    let mut deep = Expr::Col(0);
    for _ in 0..200 {
        deep = Expr::Unary {
            op: UnaryOp::Not,
            child: Box::new(deep),
        };
    }
    let desc = SubsumeDescriptor {
        kind: SubsumeKind::Project,
        child_precise: Sig128::ZERO,
        cols: 1,
        keys: 0,
        schema: schema(),
        detail: SubsumeDetail::Project {
            exprs: vec![NamedExpr {
                name: "bomb".into(),
                expr: deep,
            }],
        },
    };
    let req = Request::Lookup(
        LookupRequest::new(JobId::new(1), &[], SimTime::ZERO).with_probes(vec![desc]),
    );
    let (ty, payload) = req.encode();
    let err = Request::decode(ty, &payload).unwrap_err();
    match err {
        WireError::Malformed(m) => assert!(m.contains("nesting"), "unexpected message: {m}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn header_constants_are_pinned() {
    // The wire format is a compatibility contract; lock the constants so an
    // accidental change fails loudly instead of silently forking the
    // protocol.
    assert_eq!(MAGIC, *b"SCPN");
    assert_eq!(VERSION, 1);
    assert_eq!(HEADER_LEN, 12);
    assert_eq!(MAX_PAYLOAD, 16 * 1024 * 1024);
    assert_eq!(wire::frame_type::LOOKUP, 0x01);
    assert_eq!(wire::frame_type::ERROR, 0xE0);
}
