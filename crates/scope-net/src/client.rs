//! Blocking front-door client: connection reuse, deadlines, bounded retry.
//!
//! One [`NetClient`] owns one TCP connection and replays the in-process
//! `MetadataService` surface over it — the method signatures take the same
//! `cloudviews::api` request structs, so swapping a local service for a
//! remote one is a one-line change at the call site.
//!
//! Failure handling reuses the runtime's [`DegradationPolicy`] contract:
//!
//! * **transient** failures — socket errors, request deadlines, server
//!   `Busy` sheds, and degradable service errors (`ServiceUnavailable`,
//!   `ViewUnavailable`) — are retried up to `lookup_retries` times with
//!   `retry_backoff` (wall-clock) between attempts, reconnecting first;
//! * **`OverQuota`** is *not* retried: the bucket refills on the server's
//!   clock, and hammering it just spends more quota budget. It surfaces as
//!   `ScopeError::Metadata` for the caller to handle (queue, degrade, or
//!   give up);
//! * every other error frame maps straight back onto the [`ScopeError`]
//!   taxonomy and returns on the first attempt.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use cloudviews::api::{LookupRequest, ProposeRequest, ReportRequest};
use cloudviews::metadata::{LockOutcome, LookupResponse, MetadataStats, PurgeSweep};
use cloudviews::runtime::DegradationPolicy;
use scope_common::{Result, ScopeError};

use crate::proto::{ErrorKind, Request, Response};
use crate::wire::{read_frame, write_frame};

/// Client-side policy knobs.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-request deadline, enforced as socket read/write timeouts — a
    /// stalled server turns into a transient error, not a hang.
    pub deadline: Duration,
    /// Retry/backoff contract shared with the in-process runtime.
    pub degradation: DegradationPolicy,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            deadline: Duration::from_secs(5),
            degradation: DegradationPolicy::default(),
        }
    }
}

/// A blocking metadata-service client over one reused TCP connection.
pub struct NetClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<TcpStream>,
}

impl NetClient {
    /// Resolves `addr` and prepares a client. The connection itself is
    /// established lazily on the first request (and re-established after
    /// any transient failure).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient> {
        NetClient::with_config(addr, ClientConfig::default())
    }

    /// [`NetClient::connect`] with explicit policy knobs.
    pub fn with_config(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<NetClient> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ScopeError::ServiceUnavailable(format!("resolve: {e}")))?
            .next()
            .ok_or_else(|| ScopeError::ServiceUnavailable("address resolved to nothing".into()))?;
        Ok(NetClient {
            addr,
            config,
            conn: None,
        })
    }

    /// Pinned-time annotation lookup (Figure 9 steps 1/2) over the wire.
    pub fn lookup(&mut self, req: &LookupRequest) -> Result<LookupResponse> {
        match self.call(&Request::Lookup(req.clone()))? {
            Response::Lookup(resp) => Ok(resp),
            other => Err(protocol_violation("lookup", &other)),
        }
    }

    /// Build-lock proposal (Figure 9 steps 3/4) over the wire.
    pub fn propose(&mut self, req: &ProposeRequest) -> Result<LockOutcome> {
        match self.call(&Request::Propose(*req))? {
            Response::Propose(outcome) => Ok(outcome),
            other => Err(protocol_violation("propose", &other)),
        }
    }

    /// Materialization report (Figure 9 steps 5/6) over the wire.
    pub fn report(&mut self, req: ReportRequest) -> Result<()> {
        match self.call(&Request::Report(req))? {
            Response::Report => Ok(()),
            other => Err(protocol_violation("report", &other)),
        }
    }

    /// Full expiry sweep.
    pub fn purge(&mut self) -> Result<PurgeSweep> {
        match self.call(&Request::Purge)? {
            Response::Purge(sweep) => Ok(sweep),
            other => Err(protocol_violation("purge", &other)),
        }
    }

    /// Service-counter snapshot.
    pub fn stats(&mut self) -> Result<MetadataStats> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(protocol_violation("stats", &other)),
        }
    }

    /// One request/response exchange with bounded retry on transient
    /// failures. Non-error responses and non-transient errors return
    /// immediately; exhausted retries surface the last transient error.
    fn call(&mut self, req: &Request) -> Result<Response> {
        let retries = self.config.degradation.lookup_retries;
        let backoff = Duration::from_micros(self.config.degradation.retry_backoff.micros());
        let mut last_err = None;
        for attempt in 0..=retries {
            if attempt > 0 && !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            match self.exchange(req) {
                Ok(Response::Error(frame)) => {
                    let err = frame.to_scope_error();
                    if !frame.kind.is_transient() {
                        return Err(err);
                    }
                    // A Busy shed closes the server side; reconnect.
                    if frame.kind == ErrorKind::Busy {
                        self.conn = None;
                    }
                    last_err = Some(err);
                }
                Ok(resp) => return Ok(resp),
                Err(err) => {
                    // Socket-level failure: the connection is unusable.
                    self.conn = None;
                    last_err = Some(err);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            ScopeError::ServiceUnavailable("retries exhausted without an error".into())
        }))
    }

    /// One attempt: (re)connect, send, receive, decode.
    fn exchange(&mut self, req: &Request) -> Result<Response> {
        if self.conn.is_none() {
            let conn = TcpStream::connect_timeout(&self.addr, self.config.deadline)
                .map_err(|e| ScopeError::ServiceUnavailable(format!("connect: {e}")))?;
            conn.set_nodelay(true).ok();
            conn.set_read_timeout(Some(self.config.deadline))
                .map_err(|e| ScopeError::ServiceUnavailable(format!("set deadline: {e}")))?;
            conn.set_write_timeout(Some(self.config.deadline))
                .map_err(|e| ScopeError::ServiceUnavailable(format!("set deadline: {e}")))?;
            self.conn = Some(conn);
        }
        let conn = self.conn.as_mut().expect("just connected");
        let (ty, payload) = req.encode();
        write_frame(conn, ty, &payload)
            .map_err(|e| ScopeError::ServiceUnavailable(format!("send: {e}")))?;
        let (rty, rpayload) = read_frame(conn)
            .map_err(|e| ScopeError::ServiceUnavailable(format!("receive: {e}")))?;
        Response::decode(rty, &rpayload)
            .map_err(|e| ScopeError::Metadata(format!("undecodable response: {e}")))
    }
}

fn protocol_violation(expected: &str, got: &Response) -> ScopeError {
    let got = match got {
        Response::Lookup(_) => "lookup response",
        Response::Propose(_) => "propose response",
        Response::Report => "report ack",
        Response::Purge(_) => "purge response",
        Response::Stats(_) => "stats response",
        Response::Error(_) => "error frame",
    };
    ScopeError::Metadata(format!(
        "protocol violation: asked for {expected}, got {got}"
    ))
}
