//! The network front door for the CloudViews metadata service.
//!
//! The paper's metadata service is an online component on the SCOPE
//! job-submission path — hundreds of thousands of daily jobs do a signature
//! lookup before compilation. In-process calls can't exercise any of the
//! client-visible contract under real concurrency: admission, per-tenant
//! quotas, shed-vs-queue behavior, or wire-level compatibility. This crate
//! makes the service network-callable without changing its semantics:
//!
//! * [`wire`] — versioned, length-prefixed binary frames (magic, protocol
//!   version, frame type, payload length), hand-rolled — no serde;
//! * [`codec`] — bounds-checked encode/decode for every type that rides
//!   the wire, sharing the exact `cloudviews::api` request structs the
//!   in-process facade takes;
//! * [`proto`] — typed [`Request`]/[`Response`] enums for the five
//!   endpoints (`lookup`, `propose`, `report`, `purge`, `stats`) plus the
//!   [`ErrorFrame`] mapping the [`ScopeError`](scope_common::ScopeError)
//!   taxonomy;
//! * [`server`] — a threaded TCP server (`std::net`): one acceptor, a
//!   fixed worker pool, a *bounded* pending queue that sheds `Busy` instead
//!   of queueing without bound, and per-VC token-bucket quotas;
//! * [`client`] — a blocking client with connection reuse, deadline-based
//!   timeouts, and bounded retry-with-backoff driven by the runtime's
//!   [`DegradationPolicy`](cloudviews::runtime::DegradationPolicy).
//!
//! ```no_run
//! use std::sync::Arc;
//! use cloudviews::api::LookupRequest;
//! use cloudviews::metadata::MetadataService;
//! use scope_common::ids::JobId;
//! use scope_common::telemetry::Telemetry;
//! use scope_common::time::{SimClock, SimTime};
//! use scope_net::{NetClient, NetServer, ServerConfig};
//!
//! let service = Arc::new(MetadataService::new(Arc::new(SimClock::new()), 8));
//! let server = NetServer::spawn(service, Telemetry::new(), ServerConfig::default()).unwrap();
//! let mut client = NetClient::connect(server.addr()).unwrap();
//! let resp = client
//!     .lookup(&LookupRequest::new(JobId::new(1), &["in/a.ss".into()], SimTime::ZERO))
//!     .unwrap();
//! assert!(resp.annotations.is_empty());
//! server.shutdown();
//! ```

pub mod client;
pub mod codec;
pub mod proto;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, NetClient};
pub use proto::{ErrorFrame, ErrorKind, Request, Response};
pub use server::{NetServer, QuotaConfig, ServerConfig};
pub use wire::{WireError, MAX_PAYLOAD, VERSION};
