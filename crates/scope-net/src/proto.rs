//! Typed request/response messages and their frame-level dispatch.
//!
//! The wire carries exactly the `cloudviews::api` request structs the
//! in-process facade takes — encoding them here is the *only* serialization
//! in the system, so a remote caller and a local caller cannot drift apart.
//! Every request frame is answered by either its matching response frame or
//! an [`ErrorFrame`] carrying the service's [`ScopeError`] taxonomy plus
//! the three wire-level outcomes the in-process path never sees: `Busy`
//! (load shed), `OverQuota` (per-VC token bucket empty), and `Malformed`
//! (undecodable frame).

use cloudviews::api::{LookupRequest, ProposeRequest, ReportRequest};
use cloudviews::metadata::{LockOutcome, LookupResponse, MetadataStats, PurgeSweep};
use scope_common::ScopeError;

use crate::codec::{
    get_lock_outcome, get_lookup_request, get_lookup_response, get_propose_request,
    get_purge_sweep, get_report_request, get_stats, put_lock_outcome, put_lookup_request,
    put_lookup_response, put_propose_request, put_purge_sweep, put_report_request, put_stats, Dec,
    Enc,
};
use crate::wire::{frame_type, WireError};

/// A request frame: one of the five front-door endpoints.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Pinned-time annotation lookup.
    Lookup(LookupRequest),
    /// Build-lock proposal.
    Propose(ProposeRequest),
    /// Materialization report.
    Report(ReportRequest),
    /// Full expiry sweep across every shard.
    Purge,
    /// Service-counter snapshot.
    Stats,
}

impl Request {
    /// The virtual cluster the request is attributed to (the quota
    /// principal). `Purge`/`Stats` are admin endpoints and carry none.
    pub fn vc(&self) -> Option<scope_common::ids::VcId> {
        match self {
            Request::Lookup(r) => Some(r.vc),
            Request::Propose(r) => Some(r.vc),
            Request::Report(r) => Some(r.vc),
            Request::Purge | Request::Stats => None,
        }
    }

    /// Frame type tag plus encoded payload.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut e = Enc::new();
        let ty = match self {
            Request::Lookup(r) => {
                put_lookup_request(&mut e, r);
                frame_type::LOOKUP
            }
            Request::Propose(r) => {
                put_propose_request(&mut e, r);
                frame_type::PROPOSE
            }
            Request::Report(r) => {
                put_report_request(&mut e, r);
                frame_type::REPORT
            }
            Request::Purge => frame_type::PURGE,
            Request::Stats => frame_type::STATS,
        };
        (ty, e.buf)
    }

    /// Decodes the payload of a request frame of type `ty`.
    pub fn decode(ty: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut d = Dec::new(payload);
        let req = match ty {
            frame_type::LOOKUP => Request::Lookup(get_lookup_request(&mut d)?),
            frame_type::PROPOSE => Request::Propose(get_propose_request(&mut d)?),
            frame_type::REPORT => Request::Report(get_report_request(&mut d)?),
            frame_type::PURGE => Request::Purge,
            frame_type::STATS => Request::Stats,
            other => return Err(WireError::BadFrameType(other)),
        };
        d.finish()?;
        Ok(req)
    }
}

/// A response frame: the matching answer for each endpoint, or an error.
#[derive(Clone, Debug)]
pub enum Response {
    /// Answer to [`Request::Lookup`].
    Lookup(LookupResponse),
    /// Answer to [`Request::Propose`].
    Propose(LockOutcome),
    /// Acknowledgement of [`Request::Report`].
    Report,
    /// Answer to [`Request::Purge`].
    Purge(PurgeSweep),
    /// Answer to [`Request::Stats`].
    Stats(MetadataStats),
    /// Any request may be answered with an error frame.
    Error(ErrorFrame),
}

impl Response {
    /// Frame type tag plus encoded payload.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut e = Enc::new();
        let ty = match self {
            Response::Lookup(r) => {
                put_lookup_response(&mut e, r);
                frame_type::LOOKUP_OK
            }
            Response::Propose(o) => {
                put_lock_outcome(&mut e, *o);
                frame_type::PROPOSE_OK
            }
            Response::Report => frame_type::REPORT_OK,
            Response::Purge(p) => {
                put_purge_sweep(&mut e, p);
                frame_type::PURGE_OK
            }
            Response::Stats(s) => {
                put_stats(&mut e, s);
                frame_type::STATS_OK
            }
            Response::Error(err) => {
                err.encode_into(&mut e);
                frame_type::ERROR
            }
        };
        (ty, e.buf)
    }

    /// Decodes the payload of a response frame of type `ty`.
    pub fn decode(ty: u8, payload: &[u8]) -> Result<Response, WireError> {
        let mut d = Dec::new(payload);
        let resp = match ty {
            frame_type::LOOKUP_OK => Response::Lookup(get_lookup_response(&mut d)?),
            frame_type::PROPOSE_OK => Response::Propose(get_lock_outcome(&mut d)?),
            frame_type::REPORT_OK => Response::Report,
            frame_type::PURGE_OK => Response::Purge(get_purge_sweep(&mut d)?),
            frame_type::STATS_OK => Response::Stats(get_stats(&mut d)?),
            frame_type::ERROR => Response::Error(ErrorFrame::decode_from(&mut d)?),
            other => return Err(WireError::BadFrameType(other)),
        };
        d.finish()?;
        Ok(resp)
    }
}

/// Failure domain carried by an [`ErrorFrame`]: the nine [`ScopeError`]
/// variants plus the three wire-level outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// [`ScopeError::InvalidPlan`].
    InvalidPlan,
    /// [`ScopeError::Expression`].
    Expression,
    /// [`ScopeError::Optimizer`].
    Optimizer,
    /// [`ScopeError::Execution`].
    Execution,
    /// [`ScopeError::Storage`].
    Storage,
    /// [`ScopeError::Metadata`].
    Metadata,
    /// [`ScopeError::Workload`].
    Workload,
    /// [`ScopeError::ServiceUnavailable`] — transient; clients retry.
    ServiceUnavailable,
    /// [`ScopeError::ViewUnavailable`] — transient; clients retry.
    ViewUnavailable,
    /// The server shed the request instead of queueing it (admission bound
    /// or worker backlog). Transient by definition: retry with backoff.
    Busy,
    /// The requesting VC's token bucket is empty. Not transient at the
    /// client's timescale — retrying immediately just burns quota.
    OverQuota,
    /// The server could not decode the request frame.
    Malformed,
}

impl ErrorKind {
    fn tag(self) -> u8 {
        match self {
            ErrorKind::InvalidPlan => 0,
            ErrorKind::Expression => 1,
            ErrorKind::Optimizer => 2,
            ErrorKind::Execution => 3,
            ErrorKind::Storage => 4,
            ErrorKind::Metadata => 5,
            ErrorKind::Workload => 6,
            ErrorKind::ServiceUnavailable => 7,
            ErrorKind::ViewUnavailable => 8,
            ErrorKind::Busy => 9,
            ErrorKind::OverQuota => 10,
            ErrorKind::Malformed => 11,
        }
    }

    fn from_tag(t: u8) -> Option<ErrorKind> {
        Some(match t {
            0 => ErrorKind::InvalidPlan,
            1 => ErrorKind::Expression,
            2 => ErrorKind::Optimizer,
            3 => ErrorKind::Execution,
            4 => ErrorKind::Storage,
            5 => ErrorKind::Metadata,
            6 => ErrorKind::Workload,
            7 => ErrorKind::ServiceUnavailable,
            8 => ErrorKind::ViewUnavailable,
            9 => ErrorKind::Busy,
            10 => ErrorKind::OverQuota,
            11 => ErrorKind::Malformed,
            _ => return None,
        })
    }

    /// True for failures a client should absorb by retrying with backoff
    /// (mirrors [`ScopeError::is_degradable`], plus `Busy`).
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            ErrorKind::ServiceUnavailable | ErrorKind::ViewUnavailable | ErrorKind::Busy
        )
    }
}

/// The error payload: a failure domain plus a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The failure domain.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorFrame {
    /// Builds an error frame.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ErrorFrame {
        ErrorFrame {
            kind,
            message: message.into(),
        }
    }

    fn encode_into(&self, e: &mut Enc) {
        e.put_u8(self.kind.tag());
        e.put_str(&self.message);
    }

    fn decode_from(d: &mut Dec) -> Result<ErrorFrame, WireError> {
        let tag = d.u8()?;
        let kind = ErrorKind::from_tag(tag)
            .ok_or_else(|| WireError::Malformed(format!("error kind tag {tag}")))?;
        let message = d.str()?;
        Ok(ErrorFrame { kind, message })
    }

    /// Maps a service-side [`ScopeError`] onto the wire taxonomy.
    pub fn from_scope_error(e: &ScopeError) -> ErrorFrame {
        let kind = match e {
            ScopeError::InvalidPlan(_) => ErrorKind::InvalidPlan,
            ScopeError::Expression(_) => ErrorKind::Expression,
            ScopeError::Optimizer(_) => ErrorKind::Optimizer,
            ScopeError::Execution(_) => ErrorKind::Execution,
            ScopeError::Storage(_) => ErrorKind::Storage,
            ScopeError::Metadata(_) => ErrorKind::Metadata,
            ScopeError::Workload(_) => ErrorKind::Workload,
            ScopeError::ServiceUnavailable(_) => ErrorKind::ServiceUnavailable,
            ScopeError::ViewUnavailable(_) => ErrorKind::ViewUnavailable,
        };
        ErrorFrame::new(kind, e.message())
    }

    /// Maps the wire taxonomy back onto [`ScopeError`] for the client's
    /// caller. `Busy` degrades to `ServiceUnavailable` (same retry
    /// contract); `OverQuota` and `Malformed` surface as `Metadata` errors
    /// (the request was refused, not the service broken).
    pub fn to_scope_error(&self) -> ScopeError {
        let m = self.message.clone();
        match self.kind {
            ErrorKind::InvalidPlan => ScopeError::InvalidPlan(m),
            ErrorKind::Expression => ScopeError::Expression(m),
            ErrorKind::Optimizer => ScopeError::Optimizer(m),
            ErrorKind::Execution => ScopeError::Execution(m),
            ErrorKind::Storage => ScopeError::Storage(m),
            ErrorKind::Metadata => ScopeError::Metadata(m),
            ErrorKind::Workload => ScopeError::Workload(m),
            ErrorKind::ServiceUnavailable => ScopeError::ServiceUnavailable(m),
            ErrorKind::ViewUnavailable => ScopeError::ViewUnavailable(m),
            ErrorKind::Busy => ScopeError::ServiceUnavailable(format!("server busy: {m}")),
            ErrorKind::OverQuota => ScopeError::Metadata(format!("over quota: {m}")),
            ErrorKind::Malformed => ScopeError::Metadata(format!("malformed request: {m}")),
        }
    }
}
