//! Hand-rolled payload encoding for every type that rides the wire.
//!
//! No serde: the workspace's `serde` is a no-op shim, and the front door
//! needs byte-for-byte stable encodings anyway (the loopback acceptance
//! test compares in-process and over-the-wire `LookupResponse`s by their
//! encoded bytes). Conventions:
//!
//! * all integers little-endian; `usize` travels as `u64`;
//! * `f64` as IEEE bits (`to_bits`/`from_bits`) — exact round-trip;
//! * strings as `u32` length + UTF-8 bytes, capped at [`MAX_STR`];
//! * sequences as `u32` count + elements, capped at [`MAX_SEQ`];
//! * options as a `0`/`1` byte + payload;
//! * enums as a `u8` tag + variant payload;
//! * [`Symbol`]s travel as their string and are re-interned on decode
//!   (interning tables are per-process, raw ids do not transfer);
//! * recursive [`Expr`] trees are depth-limited at [`MAX_EXPR_DEPTH`] on
//!   decode, so an adversarial payload cannot overflow the stack.
//!
//! Every decode is bounds-checked and returns [`WireError::Malformed`]
//! rather than panicking: the decoder is the server's first line of defense
//! against hostile bytes.

use std::collections::BTreeMap;

use cloudviews::api::{LookupRequest, ProposeRequest, ReportRequest};
use cloudviews::metadata::{LockOutcome, LookupResponse, MetadataStats, PurgeSweep};
use scope_common::hash::Sig128;
use scope_common::ids::{JobId, VcId};
use scope_common::intern::Symbol;
use scope_common::time::{SimDuration, SimTime};
use scope_engine::optimizer::{Annotation, AvailableView, SubsumedView};
use scope_plan::expr::{AggExpr, AggFunc, BinOp, ScalarFunc, UnaryOp};
use scope_plan::interval::{ColumnIntervals, Interval};
use scope_plan::{
    Column, DataType, Expr, NamedExpr, Partitioning, PhysicalProps, Schema, SortDir, SortKey,
    SortOrder, Value,
};
use scope_signature::{SubsumeDescriptor, SubsumeDetail, SubsumeKind};

use crate::wire::WireError;

/// Cap on any single encoded string (1 MiB).
pub const MAX_STR: u32 = 1 << 20;

/// Cap on any single sequence length (64 Ki elements).
pub const MAX_SEQ: u32 = 1 << 16;

/// Cap on [`Expr`] nesting depth accepted by the decoder.
pub const MAX_EXPR_DEPTH: u32 = 64;

fn malformed(what: impl Into<String>) -> WireError {
    WireError::Malformed(what.into())
}

/// Byte-buffer encoder. Infallible: callers build payloads by chaining
/// `put_*` calls and take [`Enc::buf`] at the end.
#[derive(Default)]
pub struct Enc {
    /// The bytes written so far.
    pub buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty buffer.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as IEEE bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a sequence length prefix.
    pub fn put_seq(&mut self, len: usize) {
        self.put_u32(len as u32);
    }
}

/// Bounds-checked cursor decoder over a payload slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Dec<'a> {
    /// Starts decoding at the head of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec {
            buf,
            pos: 0,
            depth: 0,
        }
    }

    /// Fails unless every payload byte was consumed — trailing garbage is
    /// a protocol violation, not padding.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| malformed("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(self.u32()? as i32)
    }

    /// Reads an `f64` from IEEE bits.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte; anything but 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(malformed(format!("bool byte {b}"))),
        }
    }

    /// Reads a `usize` encoded as `u64`, rejecting values above `cap`.
    pub fn usize_capped(&mut self, cap: usize) -> Result<usize, WireError> {
        let v = self.u64()?;
        if v > cap as u64 {
            return Err(malformed(format!("usize {v} exceeds cap {cap}")));
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()?;
        if len > MAX_STR {
            return Err(malformed(format!("string length {len} exceeds {MAX_STR}")));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("string is not UTF-8"))
    }

    /// Reads a sequence length prefix, rejecting lengths above [`MAX_SEQ`].
    pub fn seq(&mut self) -> Result<usize, WireError> {
        let len = self.u32()?;
        if len > MAX_SEQ {
            return Err(malformed(format!(
                "sequence length {len} exceeds {MAX_SEQ}"
            )));
        }
        Ok(len as usize)
    }
}

// ---------------------------------------------------------------------------
// Scalars and ids

/// Encodes a [`Sig128`] as `hi`, `lo`.
pub fn put_sig(e: &mut Enc, s: Sig128) {
    e.put_u64(s.hi);
    e.put_u64(s.lo);
}

/// Decodes a [`Sig128`].
pub fn get_sig(d: &mut Dec) -> Result<Sig128, WireError> {
    Ok(Sig128::new(d.u64()?, d.u64()?))
}

/// Encodes a [`Symbol`] as its string (re-interned on decode).
pub fn put_symbol(e: &mut Enc, s: Symbol) {
    e.put_str(s.as_str());
}

/// Decodes a [`Symbol`].
pub fn get_symbol(d: &mut Dec) -> Result<Symbol, WireError> {
    Ok(Symbol::intern(&d.str()?))
}

fn put_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.put_u8(0),
        Value::Bool(b) => {
            e.put_u8(1);
            e.put_bool(*b);
        }
        Value::Int(i) => {
            e.put_u8(2);
            e.put_i64(*i);
        }
        Value::Float(f) => {
            e.put_u8(3);
            e.put_f64(*f);
        }
        Value::Str(s) => {
            e.put_u8(4);
            e.put_str(s);
        }
        Value::Date(d) => {
            e.put_u8(5);
            e.put_i32(*d);
        }
    }
}

fn get_value(d: &mut Dec) -> Result<Value, WireError> {
    Ok(match d.u8()? {
        0 => Value::Null,
        1 => Value::Bool(d.bool()?),
        2 => Value::Int(d.i64()?),
        3 => Value::Float(d.f64()?),
        4 => Value::Str(d.str()?),
        5 => Value::Date(d.i32()?),
        t => return Err(malformed(format!("value tag {t}"))),
    })
}

fn put_dtype(e: &mut Enc, t: DataType) {
    e.put_u8(match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
    });
}

fn get_dtype(d: &mut Dec) -> Result<DataType, WireError> {
    Ok(match d.u8()? {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        4 => DataType::Date,
        t => return Err(malformed(format!("dtype tag {t}"))),
    })
}

fn put_schema(e: &mut Enc, s: &Schema) {
    e.put_seq(s.len());
    for c in s.columns() {
        e.put_str(&c.name);
        put_dtype(e, c.dtype);
    }
}

fn get_schema(d: &mut Dec) -> Result<Schema, WireError> {
    let n = d.seq()?;
    let mut cols = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.str()?;
        let dtype = get_dtype(d)?;
        cols.push(Column::new(name, dtype));
    }
    Schema::new(cols).map_err(|e| malformed(format!("schema: {e}")))
}

// ---------------------------------------------------------------------------
// Expressions

fn put_unary_op(e: &mut Enc, op: UnaryOp) {
    e.put_u8(match op {
        UnaryOp::Not => 0,
        UnaryOp::Neg => 1,
        UnaryOp::IsNull => 2,
    });
}

fn get_unary_op(d: &mut Dec) -> Result<UnaryOp, WireError> {
    Ok(match d.u8()? {
        0 => UnaryOp::Not,
        1 => UnaryOp::Neg,
        2 => UnaryOp::IsNull,
        t => return Err(malformed(format!("unary op tag {t}"))),
    })
}

fn put_bin_op(e: &mut Enc, op: BinOp) {
    e.put_u8(match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    });
}

fn get_bin_op(d: &mut Dec) -> Result<BinOp, WireError> {
    Ok(match d.u8()? {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        t => return Err(malformed(format!("binary op tag {t}"))),
    })
}

fn put_scalar_func(e: &mut Enc, f: ScalarFunc) {
    e.put_u8(match f {
        ScalarFunc::Year => 0,
        ScalarFunc::Month => 1,
        ScalarFunc::Len => 2,
        ScalarFunc::Lower => 3,
        ScalarFunc::Upper => 4,
        ScalarFunc::Prefix => 5,
        ScalarFunc::Abs => 6,
        ScalarFunc::Hash64 => 7,
        ScalarFunc::Concat => 8,
        ScalarFunc::If => 9,
        ScalarFunc::Least => 10,
        ScalarFunc::Greatest => 11,
    });
}

fn get_scalar_func(d: &mut Dec) -> Result<ScalarFunc, WireError> {
    Ok(match d.u8()? {
        0 => ScalarFunc::Year,
        1 => ScalarFunc::Month,
        2 => ScalarFunc::Len,
        3 => ScalarFunc::Lower,
        4 => ScalarFunc::Upper,
        5 => ScalarFunc::Prefix,
        6 => ScalarFunc::Abs,
        7 => ScalarFunc::Hash64,
        8 => ScalarFunc::Concat,
        9 => ScalarFunc::If,
        10 => ScalarFunc::Least,
        11 => ScalarFunc::Greatest,
        t => return Err(malformed(format!("scalar func tag {t}"))),
    })
}

fn put_expr(e: &mut Enc, x: &Expr) {
    match x {
        Expr::Col(i) => {
            e.put_u8(0);
            e.put_usize(*i);
        }
        Expr::Lit(v) => {
            e.put_u8(1);
            put_value(e, v);
        }
        Expr::RecurringParam { name, value } => {
            e.put_u8(2);
            e.put_str(name);
            put_value(e, value);
        }
        Expr::Unary { op, child } => {
            e.put_u8(3);
            put_unary_op(e, *op);
            put_expr(e, child);
        }
        Expr::Binary { op, left, right } => {
            e.put_u8(4);
            put_bin_op(e, *op);
            put_expr(e, left);
            put_expr(e, right);
        }
        Expr::Func { func, args } => {
            e.put_u8(5);
            put_scalar_func(e, *func);
            e.put_seq(args.len());
            for a in args {
                put_expr(e, a);
            }
        }
    }
}

fn get_expr(d: &mut Dec) -> Result<Expr, WireError> {
    d.depth += 1;
    if d.depth > MAX_EXPR_DEPTH {
        return Err(malformed(format!("expr nesting exceeds {MAX_EXPR_DEPTH}")));
    }
    let x = match d.u8()? {
        0 => Expr::Col(d.usize_capped(u32::MAX as usize)?),
        1 => Expr::Lit(get_value(d)?),
        2 => Expr::RecurringParam {
            name: d.str()?,
            value: get_value(d)?,
        },
        3 => Expr::Unary {
            op: get_unary_op(d)?,
            child: Box::new(get_expr(d)?),
        },
        4 => Expr::Binary {
            op: get_bin_op(d)?,
            left: Box::new(get_expr(d)?),
            right: Box::new(get_expr(d)?),
        },
        5 => {
            let func = get_scalar_func(d)?;
            let n = d.seq()?;
            let mut args = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                args.push(get_expr(d)?);
            }
            Expr::Func { func, args }
        }
        t => return Err(malformed(format!("expr tag {t}"))),
    };
    d.depth -= 1;
    Ok(x)
}

fn put_named_expr(e: &mut Enc, ne: &NamedExpr) {
    e.put_str(&ne.name);
    put_expr(e, &ne.expr);
}

fn get_named_expr(d: &mut Dec) -> Result<NamedExpr, WireError> {
    let name = d.str()?;
    let expr = get_expr(d)?;
    Ok(NamedExpr { name, expr })
}

fn put_agg_func(e: &mut Enc, f: AggFunc) {
    e.put_u8(match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
        AggFunc::CountDistinct => 5,
    });
}

fn get_agg_func(d: &mut Dec) -> Result<AggFunc, WireError> {
    Ok(match d.u8()? {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Avg,
        5 => AggFunc::CountDistinct,
        t => return Err(malformed(format!("agg func tag {t}"))),
    })
}

fn put_agg_expr(e: &mut Enc, a: &AggExpr) {
    e.put_str(&a.name);
    put_agg_func(e, a.func);
    e.put_usize(a.input);
}

fn get_agg_expr(d: &mut Dec) -> Result<AggExpr, WireError> {
    let name = d.str()?;
    let func = get_agg_func(d)?;
    let input = d.usize_capped(u32::MAX as usize)?;
    Ok(AggExpr { name, func, input })
}

// ---------------------------------------------------------------------------
// Physical properties

fn put_sort_order(e: &mut Enc, s: &SortOrder) {
    e.put_seq(s.0.len());
    for k in &s.0 {
        e.put_usize(k.col);
        e.put_u8(matches!(k.dir, SortDir::Desc) as u8);
    }
}

fn get_sort_order(d: &mut Dec) -> Result<SortOrder, WireError> {
    let n = d.seq()?;
    let mut keys = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let col = d.usize_capped(u32::MAX as usize)?;
        let dir = match d.u8()? {
            0 => SortDir::Asc,
            1 => SortDir::Desc,
            t => return Err(malformed(format!("sort dir tag {t}"))),
        };
        keys.push(SortKey { col, dir });
    }
    Ok(SortOrder(keys))
}

fn put_partitioning(e: &mut Enc, p: &Partitioning) {
    match p {
        Partitioning::Single => e.put_u8(0),
        Partitioning::Hash { cols, parts } => {
            e.put_u8(1);
            e.put_seq(cols.len());
            for c in cols {
                e.put_usize(*c);
            }
            e.put_usize(*parts);
        }
        Partitioning::Range { col, parts } => {
            e.put_u8(2);
            e.put_usize(*col);
            e.put_usize(*parts);
        }
        Partitioning::RoundRobin { parts } => {
            e.put_u8(3);
            e.put_usize(*parts);
        }
        Partitioning::Any => e.put_u8(4),
    }
}

fn get_partitioning(d: &mut Dec) -> Result<Partitioning, WireError> {
    Ok(match d.u8()? {
        0 => Partitioning::Single,
        1 => {
            let n = d.seq()?;
            let mut cols = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                cols.push(d.usize_capped(u32::MAX as usize)?);
            }
            Partitioning::Hash {
                cols,
                parts: d.usize_capped(u32::MAX as usize)?,
            }
        }
        2 => Partitioning::Range {
            col: d.usize_capped(u32::MAX as usize)?,
            parts: d.usize_capped(u32::MAX as usize)?,
        },
        3 => Partitioning::RoundRobin {
            parts: d.usize_capped(u32::MAX as usize)?,
        },
        4 => Partitioning::Any,
        t => return Err(malformed(format!("partitioning tag {t}"))),
    })
}

fn put_props(e: &mut Enc, p: &PhysicalProps) {
    put_partitioning(e, &p.partitioning);
    put_sort_order(e, &p.sort);
}

fn get_props(d: &mut Dec) -> Result<PhysicalProps, WireError> {
    Ok(PhysicalProps {
        partitioning: get_partitioning(d)?,
        sort: get_sort_order(d)?,
    })
}

// ---------------------------------------------------------------------------
// Subsumption descriptors

fn put_intervals(e: &mut Enc, ivs: &ColumnIntervals) {
    e.put_seq(ivs.len());
    for (col, iv) in ivs {
        e.put_usize(*col);
        for bound in [&iv.lo, &iv.hi] {
            match bound {
                None => e.put_u8(0),
                Some((v, incl)) => {
                    e.put_u8(1);
                    put_value(e, v);
                    e.put_bool(*incl);
                }
            }
        }
    }
}

fn get_intervals(d: &mut Dec) -> Result<ColumnIntervals, WireError> {
    let n = d.seq()?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let col = d.usize_capped(u32::MAX as usize)?;
        let mut bounds = [None, None];
        for b in &mut bounds {
            *b = match d.u8()? {
                0 => None,
                1 => {
                    let v = get_value(d)?;
                    let incl = d.bool()?;
                    Some((v, incl))
                }
                t => return Err(malformed(format!("interval bound tag {t}"))),
            };
        }
        let [lo, hi] = bounds;
        out.insert(col, Interval { lo, hi });
    }
    Ok(out)
}

/// Encodes a [`SubsumeDescriptor`].
pub fn put_descriptor(e: &mut Enc, desc: &SubsumeDescriptor) {
    e.put_u8(match desc.kind {
        SubsumeKind::Filter => 0,
        SubsumeKind::Project => 1,
        SubsumeKind::Rollup => 2,
    });
    put_sig(e, desc.child_precise);
    e.put_u64(desc.cols);
    e.put_u64(desc.keys);
    put_schema(e, &desc.schema);
    match &desc.detail {
        SubsumeDetail::Filter { intervals } => {
            e.put_u8(0);
            put_intervals(e, intervals);
        }
        SubsumeDetail::Project { exprs } => {
            e.put_u8(1);
            e.put_seq(exprs.len());
            for ne in exprs {
                put_named_expr(e, ne);
            }
        }
        SubsumeDetail::Rollup { keys, aggs } => {
            e.put_u8(2);
            e.put_seq(keys.len());
            for k in keys {
                e.put_usize(*k);
            }
            e.put_seq(aggs.len());
            for a in aggs {
                put_agg_expr(e, a);
            }
        }
    }
}

/// Decodes a [`SubsumeDescriptor`].
pub fn get_descriptor(d: &mut Dec) -> Result<SubsumeDescriptor, WireError> {
    let kind = match d.u8()? {
        0 => SubsumeKind::Filter,
        1 => SubsumeKind::Project,
        2 => SubsumeKind::Rollup,
        t => return Err(malformed(format!("subsume kind tag {t}"))),
    };
    let child_precise = get_sig(d)?;
    let cols = d.u64()?;
    let keys = d.u64()?;
    let schema = get_schema(d)?;
    let detail = match d.u8()? {
        0 => SubsumeDetail::Filter {
            intervals: get_intervals(d)?,
        },
        1 => {
            let n = d.seq()?;
            let mut exprs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                exprs.push(get_named_expr(d)?);
            }
            SubsumeDetail::Project { exprs }
        }
        2 => {
            let nk = d.seq()?;
            let mut rkeys = Vec::with_capacity(nk.min(1024));
            for _ in 0..nk {
                rkeys.push(d.usize_capped(u32::MAX as usize)?);
            }
            let na = d.seq()?;
            let mut aggs = Vec::with_capacity(na.min(1024));
            for _ in 0..na {
                aggs.push(get_agg_expr(d)?);
            }
            SubsumeDetail::Rollup { keys: rkeys, aggs }
        }
        t => return Err(malformed(format!("subsume detail tag {t}"))),
    };
    Ok(SubsumeDescriptor {
        kind,
        child_precise,
        cols,
        keys,
        schema,
        detail,
    })
}

// ---------------------------------------------------------------------------
// Metadata-service domain types

fn put_available_view(e: &mut Enc, v: &AvailableView) {
    put_sig(e, v.precise);
    e.put_u64(v.rows);
    e.put_u64(v.bytes);
    put_props(e, &v.props);
}

fn get_available_view(d: &mut Dec) -> Result<AvailableView, WireError> {
    Ok(AvailableView {
        precise: get_sig(d)?,
        rows: d.u64()?,
        bytes: d.u64()?,
        props: get_props(d)?,
    })
}

fn put_annotation(e: &mut Enc, a: &Annotation) {
    put_sig(e, a.normalized);
    put_props(e, &a.props);
    e.put_u64(a.ttl.micros());
    e.put_u64(a.avg_cpu.micros());
    e.put_u64(a.avg_rows);
    e.put_u64(a.avg_bytes);
}

fn get_annotation(d: &mut Dec) -> Result<Annotation, WireError> {
    Ok(Annotation {
        normalized: get_sig(d)?,
        props: get_props(d)?,
        ttl: SimDuration::from_micros(d.u64()?),
        avg_cpu: SimDuration::from_micros(d.u64()?),
        avg_rows: d.u64()?,
        avg_bytes: d.u64()?,
    })
}

fn put_subsumed_view(e: &mut Enc, v: &SubsumedView) {
    put_available_view(e, &v.view);
    put_sig(e, v.normalized);
    put_descriptor(e, &v.descriptor);
    e.put_u64(v.avg_cpu.micros());
}

fn get_subsumed_view(d: &mut Dec) -> Result<SubsumedView, WireError> {
    Ok(SubsumedView {
        view: get_available_view(d)?,
        normalized: get_sig(d)?,
        descriptor: get_descriptor(d)?,
        avg_cpu: SimDuration::from_micros(d.u64()?),
    })
}

// ---------------------------------------------------------------------------
// Requests

/// Encodes a [`LookupRequest`].
pub fn put_lookup_request(e: &mut Enc, r: &LookupRequest) {
    e.put_u64(r.job.raw());
    e.put_u64(r.vc.raw());
    e.put_seq(r.tags.len());
    for t in &r.tags {
        put_symbol(e, *t);
    }
    e.put_seq(r.probes.len());
    for p in &r.probes {
        put_descriptor(e, p);
    }
    e.put_u64(r.at.micros());
}

/// Decodes a [`LookupRequest`].
pub fn get_lookup_request(d: &mut Dec) -> Result<LookupRequest, WireError> {
    let job = JobId::new(d.u64()?);
    let vc = VcId::new(d.u64()?);
    let nt = d.seq()?;
    let mut tags = Vec::with_capacity(nt.min(1024));
    for _ in 0..nt {
        tags.push(get_symbol(d)?);
    }
    let np = d.seq()?;
    let mut probes = Vec::with_capacity(np.min(1024));
    for _ in 0..np {
        probes.push(get_descriptor(d)?);
    }
    let at = SimTime(d.u64()?);
    Ok(LookupRequest::new(job, &tags, at)
        .with_probes(probes)
        .for_vc(vc))
}

/// Encodes a [`ProposeRequest`].
pub fn put_propose_request(e: &mut Enc, r: &ProposeRequest) {
    put_sig(e, r.precise);
    e.put_u64(r.job.raw());
    e.put_u64(r.vc.raw());
    e.put_u64(r.lock_ttl.micros());
    e.put_u64(r.at.micros());
}

/// Decodes a [`ProposeRequest`].
pub fn get_propose_request(d: &mut Dec) -> Result<ProposeRequest, WireError> {
    let precise = get_sig(d)?;
    let job = JobId::new(d.u64()?);
    let vc = VcId::new(d.u64()?);
    let lock_ttl = SimDuration::from_micros(d.u64()?);
    let at = SimTime(d.u64()?);
    Ok(ProposeRequest::new(precise, job, lock_ttl, at).for_vc(vc))
}

/// Encodes a [`ReportRequest`].
pub fn put_report_request(e: &mut Enc, r: &ReportRequest) {
    put_available_view(e, &r.view);
    put_sig(e, r.normalized);
    e.put_u64(r.producer.raw());
    e.put_u64(r.vc.raw());
    e.put_u64(r.available_at.micros());
    e.put_u64(r.expires_at.micros());
    match &r.descriptor {
        None => e.put_u8(0),
        Some(desc) => {
            e.put_u8(1);
            put_descriptor(e, desc);
        }
    }
}

/// Decodes a [`ReportRequest`].
pub fn get_report_request(d: &mut Dec) -> Result<ReportRequest, WireError> {
    let view = get_available_view(d)?;
    let normalized = get_sig(d)?;
    let producer = JobId::new(d.u64()?);
    let vc = VcId::new(d.u64()?);
    let available_at = SimTime(d.u64()?);
    let expires_at = SimTime(d.u64()?);
    let descriptor = match d.u8()? {
        0 => None,
        1 => Some(get_descriptor(d)?),
        t => return Err(malformed(format!("descriptor option tag {t}"))),
    };
    Ok(
        ReportRequest::new(view, normalized, producer, available_at, expires_at)
            .with_descriptor(descriptor)
            .for_vc(vc),
    )
}

// ---------------------------------------------------------------------------
// Responses

/// Encodes a [`LookupResponse`].
pub fn put_lookup_response(e: &mut Enc, r: &LookupResponse) {
    e.put_seq(r.annotations.len());
    for a in &r.annotations {
        put_annotation(e, a);
    }
    e.put_seq(r.tier2.len());
    for v in &r.tier2 {
        put_subsumed_view(e, v);
    }
    e.put_u64(r.latency.micros());
    e.put_usize(r.hit_count);
}

/// Decodes a [`LookupResponse`].
pub fn get_lookup_response(d: &mut Dec) -> Result<LookupResponse, WireError> {
    let na = d.seq()?;
    let mut annotations = Vec::with_capacity(na.min(1024));
    for _ in 0..na {
        annotations.push(get_annotation(d)?);
    }
    let nv = d.seq()?;
    let mut tier2 = Vec::with_capacity(nv.min(1024));
    for _ in 0..nv {
        tier2.push(get_subsumed_view(d)?);
    }
    let latency = SimDuration::from_micros(d.u64()?);
    let hit_count = d.usize_capped(u32::MAX as usize)?;
    Ok(LookupResponse {
        annotations,
        tier2,
        latency,
        hit_count,
    })
}

/// Encodes a [`LockOutcome`].
pub fn put_lock_outcome(e: &mut Enc, o: LockOutcome) {
    e.put_u8(match o {
        LockOutcome::Acquired => 0,
        LockOutcome::AlreadyLocked => 1,
        LockOutcome::AlreadyMaterialized => 2,
    });
}

/// Decodes a [`LockOutcome`].
pub fn get_lock_outcome(d: &mut Dec) -> Result<LockOutcome, WireError> {
    Ok(match d.u8()? {
        0 => LockOutcome::Acquired,
        1 => LockOutcome::AlreadyLocked,
        2 => LockOutcome::AlreadyMaterialized,
        t => return Err(malformed(format!("lock outcome tag {t}"))),
    })
}

/// Encodes a [`PurgeSweep`].
pub fn put_purge_sweep(e: &mut Enc, p: &PurgeSweep) {
    e.put_usize(p.views_purged);
    e.put_usize(p.annotations_purged);
}

/// Decodes a [`PurgeSweep`].
pub fn get_purge_sweep(d: &mut Dec) -> Result<PurgeSweep, WireError> {
    Ok(PurgeSweep {
        views_purged: d.usize_capped(u32::MAX as usize)?,
        annotations_purged: d.usize_capped(u32::MAX as usize)?,
    })
}

/// Encodes a [`MetadataStats`].
pub fn put_stats(e: &mut Enc, s: &MetadataStats) {
    for v in [
        s.lookups,
        s.annotations_returned,
        s.locks_granted,
        s.lock_conflicts,
        s.already_materialized,
        s.views_registered,
        s.expired_takeovers,
        s.failed_lookups,
        s.failed_proposals,
        s.failed_reports,
        s.purged_annotations,
        s.tier2_hits,
        s.tier2_rejects,
    ] {
        e.put_u64(v);
    }
}

/// Decodes a [`MetadataStats`].
pub fn get_stats(d: &mut Dec) -> Result<MetadataStats, WireError> {
    Ok(MetadataStats {
        lookups: d.u64()?,
        annotations_returned: d.u64()?,
        locks_granted: d.u64()?,
        lock_conflicts: d.u64()?,
        already_materialized: d.u64()?,
        views_registered: d.u64()?,
        expired_takeovers: d.u64()?,
        failed_lookups: d.u64()?,
        failed_proposals: d.u64()?,
        failed_reports: d.u64()?,
        purged_annotations: d.u64()?,
        tier2_hits: d.u64()?,
        tier2_rejects: d.u64()?,
    })
}
