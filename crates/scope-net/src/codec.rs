//! Payload encodings for everything that rides the wire.
//!
//! The actual encoders live one layer down so the wire format and the
//! durable on-disk format are the *same bytes*:
//!
//! * `scope_common::codec` — the generic buffer layer ([`Enc`]/[`Dec`],
//!   bounds-checked, cap-enforced, depth-guarded);
//! * `cloudviews::codec` — the typed domain encoders (requests,
//!   responses, annotations, descriptors, job records, view files).
//!
//! This module re-exports both and bridges their [`CodecError`] into the
//! wire-level [`WireError`] taxonomy, so frame decoding keeps using `?`
//! and reports malformed payloads as [`WireError::Malformed`] exactly as
//! before — the encodings themselves are byte-identical to when they
//! lived here (the loopback acceptance test pins that).

pub use cloudviews::codec::*;
pub use scope_common::codec::{CodecError, Dec, Enc, MAX_EXPR_DEPTH, MAX_SEQ, MAX_STR};

use crate::wire::WireError;

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> WireError {
        WireError::Malformed(e.0)
    }
}
