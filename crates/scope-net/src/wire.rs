//! Frame layer: length-prefixed binary frames with a versioned header.
//!
//! Every message on a front-door connection is one frame:
//!
//! | offset | size | field                                   |
//! |--------|------|-----------------------------------------|
//! | 0      | 4    | magic `b"SCPN"`                         |
//! | 4      | 2    | protocol version (little-endian, = 1)   |
//! | 6      | 1    | frame type (see [`frame_type`])         |
//! | 7      | 1    | reserved (must be 0)                    |
//! | 8      | 4    | payload length (little-endian)          |
//! | 12     | n    | payload ([`codec`](crate::codec) bytes) |
//!
//! The header is fixed-size and validated before a single payload byte is
//! read, so a malformed peer costs at most 12 bytes of buffering: bad magic,
//! an unknown version, an unknown frame type, or an oversized length prefix
//! all fail fast without allocation. Compatibility rule: the version is
//! bumped on *any* payload-encoding change — there are no in-band optional
//! fields, so both peers must speak the same version and a mismatch is
//! answered with an error frame, never guessed at.

use std::fmt;
use std::io::{Read, Write};

/// Frame magic: first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SCPN";

/// Protocol version carried in every frame header.
pub const VERSION: u16 = 1;

/// Hard ceiling on payload size (16 MiB). A length prefix above this is
/// rejected before any allocation, bounding what a hostile peer can make
/// the server buffer.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Frame header size in bytes.
pub const HEADER_LEN: usize = 12;

/// Frame type tags. Requests are `0x01..=0x05`, responses set the high bit
/// (`0x81..=0x85`), and `0xE0` is the error frame that can answer any
/// request.
pub mod frame_type {
    /// Annotation lookup request.
    pub const LOOKUP: u8 = 0x01;
    /// Build-lock proposal request.
    pub const PROPOSE: u8 = 0x02;
    /// Materialization report request.
    pub const REPORT: u8 = 0x03;
    /// Full purge sweep request.
    pub const PURGE: u8 = 0x04;
    /// Service-counter snapshot request.
    pub const STATS: u8 = 0x05;
    /// Lookup response.
    pub const LOOKUP_OK: u8 = 0x81;
    /// Propose response.
    pub const PROPOSE_OK: u8 = 0x82;
    /// Report acknowledgement.
    pub const REPORT_OK: u8 = 0x83;
    /// Purge response.
    pub const PURGE_OK: u8 = 0x84;
    /// Stats response.
    pub const STATS_OK: u8 = 0x85;
    /// Error frame (any request may be answered with one).
    pub const ERROR: u8 = 0xE0;
}

/// Everything that can go wrong at the frame and codec layers.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes timeouts and peer disconnects).
    Io(std::io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    BadVersion(u16),
    /// Unknown frame type tag.
    BadFrameType(u8),
    /// Length prefix above [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Payload did not decode (truncated, bad tag, trailing bytes, ...).
    Malformed(String),
}

impl WireError {
    /// True when the error came from the socket rather than the protocol —
    /// the connection is gone (or timed out) and there is nobody to answer.
    pub fn is_io(&self) -> bool {
        matches!(self, WireError::Io(_))
    }

    /// True when the underlying I/O error is a read timeout (the server's
    /// idle poll), as opposed to a disconnect.
    pub fn is_timeout(&self) -> bool {
        matches!(self, WireError::Io(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadFrameType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            WireError::Oversized(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

fn known_frame_type(t: u8) -> bool {
    matches!(t, 0x01..=0x05 | 0x81..=0x85 | frame_type::ERROR)
}

/// Writes one frame (header + payload) to `w` as a **single** write.
///
/// One write matters on a TCP stream: header and payload in separate
/// writes lets Nagle hold the second one for the peer's delayed ACK
/// (~40 ms per request — three orders of magnitude over the loopback
/// round trip). The copy into one buffer is cheap; the stall is not.
pub fn write_frame(w: &mut impl Write, ty: u8, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() as u64 > MAX_PAYLOAD as u64 {
        return Err(WireError::Oversized(payload.len() as u32));
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.push(ty);
    frame.push(0);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Validates a complete 12-byte header, returning the frame type and
/// payload length.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u32), WireError> {
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let ty = header[6];
    if !known_frame_type(ty) {
        return Err(WireError::BadFrameType(ty));
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    Ok((ty, len))
}

/// Reads one frame from `r`, validating the header before buffering the
/// payload. Returns the frame type and payload bytes.
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    read_frame_after_header(r, header)
}

/// Finishes reading a frame whose first header byte was already consumed
/// (the server's idle-poll read). The remaining 11 header bytes and the
/// payload follow under whatever read deadline the caller set.
pub fn read_frame_continued(r: &mut impl Read, first: u8) -> Result<(u8, Vec<u8>), WireError> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    r.read_exact(&mut header[1..])?;
    read_frame_after_header(r, header)
}

fn read_frame_after_header(
    r: &mut impl Read,
    header: [u8; HEADER_LEN],
) -> Result<(u8, Vec<u8>), WireError> {
    let (ty, len) = parse_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((ty, payload))
}
