//! The threaded TCP front door: one acceptor, a fixed worker pool, bounded
//! admission, and per-VC token-bucket quotas.
//!
//! Architecture mirrors the pipeline's `run_many` discipline (bounded
//! semaphore + condvar, poison-recovering locks) rather than async I/O:
//!
//! * the **acceptor** thread owns the listener. Accepted connections go
//!   into a *bounded* pending queue; when the queue is full the connection
//!   is answered with a `Busy` error frame and closed — load is shed at the
//!   door, never queued without bound (the paper's metadata service sits on
//!   the job-submission hot path, where queueing delay is the failure mode);
//! * **workers** (fixed pool) pop connections and serve frames until the
//!   peer disconnects or goes idle past the configured horizon. Connections
//!   are reused across requests — one TCP round trip per request, not per
//!   session;
//! * each request is charged against its VC's **token bucket** before any
//!   service work happens. An empty bucket answers `OverQuota` without
//!   touching the metadata service, so one tenant's burst cannot consume
//!   another's lookup capacity. A refill rate of zero makes the bucket a
//!   fixed budget (deterministic for tests).
//!
//! Every stage is counted under `cv_net_*` metrics: frames by type, bytes
//! both ways, queue depth, sheds, quota rejections, and per-endpoint wall
//! latency.

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cloudviews::metadata::MetadataService;
use scope_common::telemetry::{Counter, Gauge, Histogram, MetricUnit, Telemetry};
use scope_common::{Result, ScopeError};

use crate::proto::{ErrorFrame, ErrorKind, Request, Response};
use crate::wire::{read_frame_continued, write_frame, WireError};

/// Per-VC token-bucket parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuotaConfig {
    /// Tokens added per second. `0.0` disables refill — the bucket is a
    /// fixed budget of `burst` requests (deterministic tests).
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest burst a VC can spend at once. Buckets
    /// start full.
    pub burst: f64,
}

/// Front-door server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks an ephemeral port (tests, loopback
    /// benches); read the bound address back via [`NetServer::addr`].
    pub addr: String,
    /// Worker threads. Each serves one connection at a time, so this is
    /// also the concurrent-connection bound.
    pub workers: usize,
    /// Pending-connection queue bound. An accept beyond this is shed with
    /// a `Busy` frame instead of queued.
    pub max_pending: usize,
    /// Per-VC token bucket; `None` admits everything.
    pub quota: Option<QuotaConfig>,
    /// Poll interval for shutdown checks on idle reads.
    pub idle_poll: Duration,
    /// A connection idle past this horizon is closed, freeing its worker.
    pub idle_timeout: Duration,
    /// Once a frame has *started* arriving, the peer has this long to
    /// deliver the rest of it. Bounds how long a slow (or slow-loris) peer
    /// can hold a worker mid-frame, and keeps the idle poll from ever
    /// splitting a frame that arrives across TCP segments.
    pub frame_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_pending: 64,
            quota: None,
            idle_poll: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(60),
            frame_deadline: Duration::from_secs(5),
        }
    }
}

/// Pre-resolved `cv_net_*` metric handles (the `MetadataMetrics` pattern:
/// resolve once at startup, never take the registry lock on the hot path).
struct NetMetrics {
    sink: Arc<Telemetry>,
    connections: Counter,
    disconnects: Counter,
    shed: Counter,
    quota_rejections: Counter,
    malformed: Counter,
    frames: Counter,
    frames_lookup: Counter,
    frames_propose: Counter,
    frames_report: Counter,
    frames_purge: Counter,
    frames_stats: Counter,
    error_responses: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    queue_depth: Gauge,
    lookup_wall: Histogram,
    propose_wall: Histogram,
    report_wall: Histogram,
}

impl NetMetrics {
    fn new(sink: Arc<Telemetry>) -> NetMetrics {
        let m = &sink.metrics;
        NetMetrics {
            connections: m.counter("cv_net_connections_total"),
            disconnects: m.counter("cv_net_disconnects_total"),
            shed: m.counter("cv_net_shed_total"),
            quota_rejections: m.counter("cv_net_quota_rejections_total"),
            malformed: m.counter("cv_net_malformed_total"),
            frames: m.counter("cv_net_frames_total"),
            frames_lookup: m.counter("cv_net_frames_lookup_total"),
            frames_propose: m.counter("cv_net_frames_propose_total"),
            frames_report: m.counter("cv_net_frames_report_total"),
            frames_purge: m.counter("cv_net_frames_purge_total"),
            frames_stats: m.counter("cv_net_frames_stats_total"),
            error_responses: m.counter("cv_net_error_responses_total"),
            bytes_read: m.counter("cv_net_bytes_read_total"),
            bytes_written: m.counter("cv_net_bytes_written_total"),
            queue_depth: m.gauge("cv_net_queue_depth"),
            lookup_wall: m.histogram("cv_net_lookup_wall_micros", MetricUnit::WallMicros),
            propose_wall: m.histogram("cv_net_propose_wall_micros", MetricUnit::WallMicros),
            report_wall: m.histogram("cv_net_report_wall_micros", MetricUnit::WallMicros),
            sink,
        }
    }

    fn enabled(&self) -> bool {
        self.sink.is_enabled()
    }
}

/// One VC's bucket state.
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// Per-VC token buckets behind one lock (quota checks are a handful of
/// float ops; contention is negligible next to the socket round trip).
struct Quota {
    config: QuotaConfig,
    buckets: Mutex<HashMap<u64, Bucket>>,
}

impl Quota {
    fn new(config: QuotaConfig) -> Quota {
        Quota {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Charges one token against `vc`'s bucket; `false` means over quota.
    fn admit(&self, vc: u64) -> bool {
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let now = Instant::now();
        let b = buckets.entry(vc).or_insert(Bucket {
            tokens: self.config.burst,
            last_refill: now,
        });
        if self.config.rate_per_sec > 0.0 {
            let elapsed = now.duration_since(b.last_refill).as_secs_f64();
            b.tokens = (b.tokens + elapsed * self.config.rate_per_sec).min(self.config.burst);
            b.last_refill = now;
        }
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Bounded pending-connection queue (the `Admission` semaphore idiom with
/// the connection riding along; poison-recovering like the pipeline's).
/// Each entry carries the connection's idle-since instant so the idle
/// horizon keeps accruing across worker rotations.
struct ConnQueue {
    pending: Mutex<VecDeque<(TcpStream, Instant)>>,
    max: usize,
    wake: Condvar,
}

impl ConnQueue {
    fn new(max: usize) -> ConnQueue {
        ConnQueue {
            pending: Mutex::new(VecDeque::new()),
            max,
            wake: Condvar::new(),
        }
    }

    /// Enqueues unless full; a full queue returns the entry for shedding
    /// (or, on a rotation push, for the worker to keep serving).
    fn push(
        &self,
        conn: TcpStream,
        idle_since: Instant,
    ) -> std::result::Result<usize, (TcpStream, Instant)> {
        let mut q = self
            .pending
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if q.len() >= self.max {
            return Err((conn, idle_since));
        }
        q.push_back((conn, idle_since));
        let depth = q.len();
        drop(q);
        self.wake.notify_one();
        Ok(depth)
    }

    /// Pops the next connection, waiting at most `timeout`.
    fn pop(&self, timeout: Duration) -> Option<(TcpStream, Instant, usize)> {
        let mut q = self
            .pending
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if q.is_empty() {
            let (guard, _) = self
                .wake
                .wait_timeout(q, timeout)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            q = guard;
        }
        let (conn, idle_since) = q.pop_front()?;
        Some((conn, idle_since, q.len()))
    }

    /// Connections currently waiting for a worker.
    fn backlog(&self) -> usize {
        self.pending
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }
}

struct Shared {
    service: Arc<MetadataService>,
    metrics: NetMetrics,
    quota: Option<Quota>,
    queue: ConnQueue,
    shutdown: AtomicBool,
    config: ServerConfig,
}

/// A running front-door server. Dropping it (or calling
/// [`NetServer::shutdown`]) stops the acceptor, drains the workers, and
/// joins every thread.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `config.addr` and spawns the acceptor + worker pool.
    pub fn spawn(
        service: Arc<MetadataService>,
        telemetry: Arc<Telemetry>,
        config: ServerConfig,
    ) -> Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ScopeError::ServiceUnavailable(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ScopeError::ServiceUnavailable(format!("local_addr: {e}")))?;
        let shared = Arc::new(Shared {
            service,
            metrics: NetMetrics::new(telemetry),
            quota: config.quota.map(Quota::new),
            queue: ConnQueue::new(config.max_pending.max(1)),
            shutdown: AtomicBool::new(false),
            config: config.clone(),
        });

        let mut threads = Vec::with_capacity(config.workers + 1);
        let acceptor_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("scope-net-acceptor".into())
                .spawn(move || acceptor(listener, &acceptor_shared))
                .map_err(|e| ScopeError::ServiceUnavailable(format!("spawn acceptor: {e}")))?,
        );
        for i in 0..config.workers.max(1) {
            let worker_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("scope-net-worker-{i}"))
                    .spawn(move || worker(&worker_shared))
                    .map_err(|e| ScopeError::ServiceUnavailable(format!("spawn worker: {e}")))?,
            );
        }
        Ok(NetServer {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (read this after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains workers, joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection; it re-checks
        // the flag after every accept.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue.wake.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn acceptor(listener: TcpListener, shared: &Shared) {
    loop {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.metrics.enabled() {
            shared.metrics.connections.inc();
        }
        match shared.queue.push(conn, Instant::now()) {
            Ok(depth) => shared.metrics.queue_depth.set(depth as i64),
            Err((conn, _)) => shed(conn, shared),
        }
    }
}

/// Answers a connection the queue cannot hold with `Busy` and closes it.
fn shed(mut conn: TcpStream, shared: &Shared) {
    if shared.metrics.enabled() {
        shared.metrics.shed.inc();
    }
    let _ = conn.set_write_timeout(Some(Duration::from_secs(1)));
    let busy = Response::Error(ErrorFrame::new(
        ErrorKind::Busy,
        "admission queue full; retry with backoff",
    ));
    let (ty, payload) = busy.encode();
    let _ = write_frame(&mut conn, ty, &payload);
}

fn worker(shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let Some((conn, idle_since, depth)) = shared.queue.pop(shared.config.idle_poll) else {
            continue;
        };
        shared.metrics.queue_depth.set(depth as i64);
        serve_connection(conn, idle_since, shared);
    }
}

/// Serves one connection until disconnect, idle timeout, a framing error,
/// or shutdown. Request frames keep arriving on the same socket —
/// connection reuse is the client's norm, not an optimization.
///
/// Fairness: a worker does not camp on an idle connection while other
/// connections wait. At each idle tick with a non-empty backlog it parks
/// its connection back into the queue and picks up the next, so the pool
/// multiplexes arbitrarily many mostly-idle connections at idle-poll
/// granularity instead of starving everything past `workers`. (A full
/// queue skips the rotation — the worker keeps what it has rather than
/// dropping a healthy connection.) Latency-sensitive deployments still
/// provision `workers` at or above the expected concurrent connections:
/// a parked connection's next request waits up to one idle tick to be
/// noticed.
fn serve_connection(mut conn: TcpStream, mut idle_since: Instant, shared: &Shared) {
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(shared.config.idle_poll));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(1)));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Two-phase read: poll one byte at the idle tick (cheap shutdown
        // checks), and only once a frame has *started* grant the peer the
        // full frame deadline for the rest. Reading the whole frame at the
        // idle tick would let the poll timeout fire between a frame's TCP
        // segments, misframing a perfectly healthy connection.
        let mut first = [0u8; 1];
        let first = match conn.read(&mut first) {
            Ok(1) => first[0],
            Ok(_) => {
                // Read of zero bytes: orderly disconnect.
                if shared.metrics.enabled() {
                    shared.metrics.disconnects.inc();
                }
                return;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if idle_since.elapsed() > shared.config.idle_timeout {
                    if shared.metrics.enabled() {
                        shared.metrics.disconnects.inc();
                    }
                    return;
                }
                if shared.queue.backlog() > 0 {
                    match shared.queue.push(conn, idle_since) {
                        Ok(depth) => {
                            shared.metrics.queue_depth.set(depth as i64);
                            return;
                        }
                        Err((c, _)) => conn = c,
                    }
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if shared.metrics.enabled() {
                    shared.metrics.disconnects.inc();
                }
                return;
            }
        };
        let _ = conn.set_read_timeout(Some(shared.config.frame_deadline));
        let frame = read_frame_continued(&mut conn, first);
        let _ = conn.set_read_timeout(Some(shared.config.idle_poll));
        let (ty, payload) = match frame {
            Ok(frame) => frame,
            Err(WireError::Io(_)) => {
                // Disconnect or mid-frame stall past the deadline. The
                // worker simply moves on to the next pending connection —
                // nothing is wedged.
                if shared.metrics.enabled() {
                    shared.metrics.disconnects.inc();
                }
                return;
            }
            Err(e) => {
                // Framing is broken (bad magic/version/type/length): answer
                // once, then close — the byte stream can't be resynced.
                if shared.metrics.enabled() {
                    shared.metrics.malformed.inc();
                }
                respond(
                    &mut conn,
                    shared,
                    Response::Error(ErrorFrame::new(ErrorKind::Malformed, e.to_string())),
                );
                return;
            }
        };
        idle_since = Instant::now();
        if shared.metrics.enabled() {
            shared.metrics.frames.inc();
            shared
                .metrics
                .bytes_read
                .add((crate::wire::HEADER_LEN + payload.len()) as u64);
        }
        let req = match Request::decode(ty, &payload) {
            Ok(req) => req,
            Err(e) => {
                // The frame parsed but the payload didn't: the stream is
                // still framed, so answer and keep serving.
                if shared.metrics.enabled() {
                    shared.metrics.malformed.inc();
                }
                if !respond(
                    &mut conn,
                    shared,
                    Response::Error(ErrorFrame::new(ErrorKind::Malformed, e.to_string())),
                ) {
                    return;
                }
                continue;
            }
        };
        let response = process(&req, shared);
        if !respond(&mut conn, shared, response) {
            if shared.metrics.enabled() {
                shared.metrics.disconnects.inc();
            }
            return;
        }
    }
}

/// Runs one decoded request: quota first, then the service call.
fn process(req: &Request, shared: &Shared) -> Response {
    let m = &shared.metrics;
    if m.enabled() {
        match req {
            Request::Lookup(_) => m.frames_lookup.inc(),
            Request::Propose(_) => m.frames_propose.inc(),
            Request::Report(_) => m.frames_report.inc(),
            Request::Purge => m.frames_purge.inc(),
            Request::Stats => m.frames_stats.inc(),
        }
    }
    if let (Some(quota), Some(vc)) = (&shared.quota, req.vc()) {
        if !quota.admit(vc.raw()) {
            if m.enabled() {
                m.quota_rejections.inc();
            }
            return Response::Error(ErrorFrame::new(
                ErrorKind::OverQuota,
                format!("vc {} token bucket empty", vc.raw()),
            ));
        }
    }
    let start = Instant::now();
    let response = match req {
        Request::Lookup(r) => match shared.service.lookup(r) {
            Ok(resp) => Response::Lookup(resp),
            Err(e) => Response::Error(ErrorFrame::from_scope_error(&e)),
        },
        Request::Propose(r) => match shared.service.propose(r) {
            Ok(outcome) => Response::Propose(outcome),
            Err(e) => Response::Error(ErrorFrame::from_scope_error(&e)),
        },
        Request::Report(r) => match shared.service.report(r.clone()) {
            Ok(()) => Response::Report,
            Err(e) => Response::Error(ErrorFrame::from_scope_error(&e)),
        },
        Request::Purge => Response::Purge(shared.service.purge_expired()),
        Request::Stats => Response::Stats(shared.service.stats()),
    };
    if m.enabled() {
        let wall = start.elapsed().as_micros() as u64;
        match req {
            Request::Lookup(_) => m.lookup_wall.record(wall),
            Request::Propose(_) => m.propose_wall.record(wall),
            Request::Report(_) => m.report_wall.record(wall),
            Request::Purge | Request::Stats => {}
        }
    }
    response
}

/// Writes a response frame; `false` means the connection is gone.
fn respond(conn: &mut TcpStream, shared: &Shared, response: Response) -> bool {
    let m = &shared.metrics;
    if m.enabled() {
        if let Response::Error(_) = &response {
            m.error_responses.inc();
        }
    }
    let (ty, payload) = response.encode();
    if m.enabled() {
        m.bytes_written
            .add((crate::wire::HEADER_LEN + payload.len()) as u64);
    }
    write_frame(conn, ty, &payload).is_ok()
}
