//! Recurring SCOPE-style workload generation.
//!
//! The paper attributes computation overlap to two mechanisms (Section 2.1):
//! *(i)* users rarely start scripts from scratch — they clone someone else's
//! script and extend it; *(ii)* a producer/consumer model where many
//! consumers apply the same post-processing to the same produced inputs.
//!
//! The generator reproduces exactly those mechanisms. Each cluster owns a
//! pool of input *streams* and a pool of *fragments* — parameterized
//! sub-plan recipes (cook-and-sort, shuffle-aggregate, UDF scoring,
//! sessionizing, join pairs, ...). A recurring *template* picks fragments
//! (Zipf-weighted, so a few fragments are wildly popular) and appends its
//! own template-specific tail before the output. Two templates that picked
//! the same fragment emit byte-identical subgraphs over the same
//! per-instance input GUIDs — overlap that the CloudViews analyzer has to
//! *discover* through signatures; nothing here labels it.
//!
//! Every recurring instance rebinds the input GUIDs and the date parameters,
//! so precise signatures change across instances while normalized signatures
//! stay fixed — the Section 3 situation.

use rand::Rng;
use scope_common::hash::sip64;
use scope_common::ids::{BusinessUnitId, ClusterId, DatasetId, JobId, TemplateId, UserId, VcId};
use scope_common::{Result, ScopeError};
use scope_engine::data::{ColumnVector, Table};
use scope_engine::job::JobSpec;
use scope_engine::storage::StorageManager;
use scope_plan::expr::AggFunc;
use scope_plan::{
    AggExpr, DataType, Expr, NamedExpr, Partitioning, PlanBuilder, ScalarFunc, Schema, SortKey,
    SortOrder, Udo, UdoKind, Value,
};

use crate::dists::{coin, rng_for, LogNormal, Zipf};

/// Specification of one physical cluster's workload.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Display name (e.g. `"cluster1"`).
    pub name: String,
    /// Number of virtual clusters (tenants).
    pub num_vcs: usize,
    /// Number of user entities submitting jobs.
    pub num_users: usize,
    /// Number of recurring job templates.
    pub num_templates: usize,
    /// Number of distinct input streams.
    pub num_streams: usize,
    /// Number of shared fragments in the cluster's "script folklore".
    pub num_fragments: usize,
    /// Zipf exponent for fragment popularity (higher ⇒ more skew).
    pub fragment_zipf: f64,
    /// Fraction of VCs with no overlap at all (Figure 2a shows some).
    pub vc_zero_overlap: f64,
    /// Fraction of VCs where every job overlaps (Figure 2a shows a few).
    pub vc_full_overlap: f64,
    /// Baseline overlap propensity for the remaining VCs, scaled by a
    /// per-VC uniform draw.
    pub base_overlap: f64,
    /// Number of business units the VCs are grouped into.
    pub num_business_units: usize,
}

impl ClusterSpec {
    /// A small cluster suitable for unit tests.
    pub fn tiny(name: &str) -> ClusterSpec {
        ClusterSpec {
            name: name.into(),
            num_vcs: 4,
            num_users: 6,
            num_templates: 12,
            num_streams: 6,
            num_fragments: 8,
            fragment_zipf: 1.1,
            vc_zero_overlap: 0.25,
            vc_full_overlap: 0.0,
            base_overlap: 0.7,
            num_business_units: 2,
        }
    }
}

/// A business unit: a set of VCs composing one data pipeline.
#[derive(Clone, Debug)]
pub struct BusinessUnitSpec {
    /// Id.
    pub id: BusinessUnitId,
    /// Member VCs.
    pub vcs: Vec<VcId>,
}

/// Top-level generator configuration.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Clusters to generate.
    pub clusters: Vec<ClusterSpec>,
    /// Master seed.
    pub seed: u64,
    /// Distribution of stream row counts.
    pub stream_rows: LogNormal,
}

impl WorkloadConfig {
    /// The five-cluster production setting of Figure 1: all clusters above
    /// 45% job overlap except `cluster3`.
    pub fn paper_five_clusters(seed: u64) -> WorkloadConfig {
        let mk = |name: &str, base_overlap: f64, zero: f64, full: f64| ClusterSpec {
            name: name.into(),
            num_vcs: 40,
            num_users: 60,
            num_templates: 220,
            num_streams: 40,
            num_fragments: 60,
            fragment_zipf: 1.15,
            vc_zero_overlap: zero,
            vc_full_overlap: full,
            base_overlap,
            num_business_units: 5,
        };
        WorkloadConfig {
            clusters: vec![
                mk("cluster1", 0.80, 0.05, 0.05),
                mk("cluster2", 0.72, 0.08, 0.04),
                mk("cluster3", 0.35, 0.25, 0.00), // the paper's low outlier
                mk("cluster4", 0.78, 0.05, 0.06),
                mk("cluster5", 0.68, 0.10, 0.03),
            ],
            seed,
            stream_rows: LogNormal::new(7.6, 1.0, 200.0, 40_000.0),
        }
    }

    /// One large cluster with many VCs (Figure 2's setting).
    pub fn paper_large_cluster(seed: u64, num_vcs: usize) -> WorkloadConfig {
        WorkloadConfig {
            clusters: vec![ClusterSpec {
                name: "large".into(),
                num_vcs,
                num_users: num_vcs * 2,
                num_templates: num_vcs * 6,
                num_streams: num_vcs,
                num_fragments: num_vcs * 2,
                fragment_zipf: 1.25,
                vc_zero_overlap: 0.12,
                vc_full_overlap: 0.06,
                base_overlap: 0.75,
                num_business_units: 8,
            }],
            seed,
            stream_rows: LogNormal::new(7.3, 1.1, 100.0, 30_000.0),
        }
    }

    /// One large business unit (Figures 3–5): a producer/consumer pipeline
    /// with heavy fragment sharing.
    pub fn paper_business_unit(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            clusters: vec![ClusterSpec {
                name: "bu".into(),
                num_vcs: 12,
                num_users: 40,
                num_templates: 400,
                num_streams: 30,
                num_fragments: 80,
                fragment_zipf: 1.3,
                vc_zero_overlap: 0.0,
                vc_full_overlap: 0.08,
                base_overlap: 0.85,
                num_business_units: 1,
            }],
            seed,
            stream_rows: LogNormal::new(7.0, 1.2, 100.0, 25_000.0),
        }
    }
}

/// The canonical stream schema every generated input uses.
pub fn stream_schema() -> Schema {
    Schema::from_pairs(&[
        ("user", DataType::Int),
        ("item", DataType::Int),
        ("cat", DataType::Str),
        ("val", DataType::Float),
        ("ts", DataType::Date),
        ("text", DataType::Str),
    ])
}

/// One input stream of a cluster.
#[derive(Clone, Debug)]
struct StreamInfo {
    /// Normalized-name template, with a literal date segment per instance.
    base_name: String,
    /// Rows per instance (stable across instances so runtime statistics are
    /// stable — like production streams whose daily volume is steady).
    rows: u64,
}

/// A fragment: a deterministic sub-plan recipe shared across templates.
#[derive(Clone, Debug)]
pub(crate) struct Fragment {
    stream: usize,
    second_stream: usize,
    kind: FragmentKind,
    /// Fixed fragment parameters — identical wherever the fragment is used.
    threshold: i64,
    seed: u64,
    udo_version: String,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FragmentKind {
    /// scan → date filter → shuffle on user → sort: "cooking" (root Sort).
    CookSort,
    /// scan → filter → shuffle → group-by aggregate.
    CookAgg,
    /// scan → UDF scoring → filter on score (root Filter over Process).
    ScoreUdf,
    /// scan → tokenize → per-token counts.
    TokenizeCount,
    /// two-stream equi-join → projection.
    JoinPair,
    /// scan → shuffle → user-defined sessionizing reducer.
    SessionReduce,
    /// scan → filter → global top-k.
    TopK,
    /// scan → shuffle → sort → window rank.
    WindowRank,
}

const FRAGMENT_KINDS: [FragmentKind; 8] = [
    FragmentKind::CookSort,
    FragmentKind::CookAgg,
    FragmentKind::ScoreUdf,
    FragmentKind::TokenizeCount,
    FragmentKind::JoinPair,
    FragmentKind::SessionReduce,
    FragmentKind::TopK,
    FragmentKind::WindowRank,
];

/// A recurring job template.
#[derive(Clone, Debug)]
pub struct TemplateInfo {
    /// Template id (unique within the workload).
    pub template: TemplateId,
    /// Owning VC.
    pub vc: VcId,
    /// Owning user.
    pub user: UserId,
    /// Indices of the fragments the template uses (empty ⇒ fully private
    /// job built from a private recipe).
    pub(crate) fragment_ids: Vec<usize>,
    /// Whether each fragment gets a template-specific tail (cloned-and-
    /// extended) or feeds the output directly (pure clone).
    pub(crate) tails: Vec<bool>,
    /// Seed for the template's private parts.
    pub(crate) tail_seed: u64,
    /// How many times the template runs per instance (occasionally 2 — the
    /// paper's "jobs scheduled more frequently than new data arrival").
    pub multiplicity: usize,
}

/// A generated cluster workload.
#[derive(Clone, Debug)]
pub struct ClusterWorkload {
    /// Cluster id.
    pub cluster: ClusterId,
    /// Spec it was generated from.
    pub spec: ClusterSpec,
    /// VC → business unit assignment.
    pub vc_bu: Vec<BusinessUnitId>,
    /// Per-VC overlap propensity actually drawn.
    pub vc_overlap: Vec<f64>,
    streams: Vec<StreamInfo>,
    pub(crate) fragments: Vec<Fragment>,
    /// The recurring templates.
    pub templates: Vec<TemplateInfo>,
}

/// The generated multi-cluster workload.
#[derive(Clone, Debug)]
pub struct RecurringWorkload {
    /// Generator configuration.
    pub config: WorkloadConfig,
    /// Per-cluster generated state.
    pub clusters: Vec<ClusterWorkload>,
}

impl RecurringWorkload {
    /// Generates the workload deterministically from the config.
    pub fn generate(config: WorkloadConfig) -> Result<RecurringWorkload> {
        if config.clusters.is_empty() {
            return Err(ScopeError::Workload("no clusters configured".into()));
        }
        let mut clusters = Vec::with_capacity(config.clusters.len());
        for (ci, spec) in config.clusters.iter().enumerate() {
            clusters.push(generate_cluster(ci, spec, &config)?);
        }
        Ok(RecurringWorkload { config, clusters })
    }

    /// Registers the input datasets of `instance` for one cluster into the
    /// storage manager. `row_scale` scales all stream sizes (≤1 shrinks the
    /// data for fast experiments).
    pub fn register_instance_data(
        &self,
        cluster_idx: usize,
        instance: u64,
        storage: &StorageManager,
        row_scale: f64,
    ) -> Result<()> {
        let cw = self
            .clusters
            .get(cluster_idx)
            .ok_or_else(|| ScopeError::Workload(format!("no cluster {cluster_idx}")))?;
        for (si, stream) in cw.streams.iter().enumerate() {
            let id = dataset_guid(cw.cluster, si, instance);
            let rows = ((stream.rows as f64 * row_scale).round() as u64).max(1);
            storage.put_dataset(id, generate_stream_table(cw.cluster, si, instance, rows));
        }
        Ok(())
    }

    /// Builds the job specs of one recurring instance of one cluster.
    ///
    /// Job ids are `instance * 1_000_000 + k` so ids never collide across
    /// instances; jobs are emitted in template order (the arrival order the
    /// coordination experiments permute).
    pub fn jobs_for_instance(&self, cluster_idx: usize, instance: u64) -> Result<Vec<JobSpec>> {
        let cw = self
            .clusters
            .get(cluster_idx)
            .ok_or_else(|| ScopeError::Workload(format!("no cluster {cluster_idx}")))?;
        let mut jobs = Vec::new();
        for t in &cw.templates {
            for copy in 0..t.multiplicity {
                let graph = build_template_graph(cw, t, instance, copy)?;
                jobs.push(JobSpec {
                    id: JobId::new(instance * 1_000_000 + jobs.len() as u64),
                    cluster: cw.cluster,
                    vc: t.vc,
                    user: t.user,
                    template: t.template,
                    instance,
                    graph,
                });
            }
        }
        Ok(jobs)
    }

    /// Business unit of a VC in a cluster.
    pub fn business_unit_of(&self, cluster_idx: usize, vc: VcId) -> Option<BusinessUnitId> {
        self.clusters
            .get(cluster_idx)?
            .vc_bu
            .get(vc.index() % self.clusters[cluster_idx].vc_bu.len().max(1))
            .copied()
    }

    /// Starts a [`RoundDriver`] over one cluster — the multi-round
    /// recurring driver for incremental-analysis experiments.
    pub fn rounds(&self, cluster_idx: usize) -> RoundDriver<'_> {
        RoundDriver {
            workload: self,
            cluster_idx,
            next_instance: 0,
        }
    }
}

/// Drives a cluster's recurring instances round by round: each
/// [`RoundDriver::next_round`] registers the next instance's input data and
/// returns its job specs, modeling the periodic arrival the incremental
/// analyzer ingests between selection rounds.
pub struct RoundDriver<'a> {
    workload: &'a RecurringWorkload,
    cluster_idx: usize,
    next_instance: u64,
}

impl RoundDriver<'_> {
    /// The instance the next round will run.
    pub fn next_instance(&self) -> u64 {
        self.next_instance
    }

    /// Registers the next instance's datasets into `storage` and returns
    /// its job specs, advancing the cursor.
    pub fn next_round(&mut self, storage: &StorageManager, row_scale: f64) -> Result<Vec<JobSpec>> {
        let instance = self.next_instance;
        self.workload
            .register_instance_data(self.cluster_idx, instance, storage, row_scale)?;
        let jobs = self
            .workload
            .jobs_for_instance(self.cluster_idx, instance)?;
        self.next_instance += 1;
        Ok(jobs)
    }
}

fn generate_cluster(
    ci: usize,
    spec: &ClusterSpec,
    config: &WorkloadConfig,
) -> Result<ClusterWorkload> {
    if spec.num_vcs == 0 || spec.num_templates == 0 || spec.num_streams == 0 {
        return Err(ScopeError::Workload(format!(
            "cluster {} needs vcs, templates, and streams",
            spec.name
        )));
    }
    let cluster = ClusterId::new(ci as u64);
    let mut rng = rng_for(config.seed, &format!("cluster/{}", spec.name));

    // Business-unit assignment: contiguous blocks of VCs.
    let bus = spec.num_business_units.max(1);
    let vc_bu: Vec<BusinessUnitId> = (0..spec.num_vcs)
        .map(|v| BusinessUnitId::new((v * bus / spec.num_vcs) as u64))
        .collect();

    // Per-VC overlap propensity (Figure 2a heterogeneity).
    let vc_overlap: Vec<f64> = (0..spec.num_vcs)
        .map(|_| {
            if coin(&mut rng, spec.vc_zero_overlap) {
                0.0
            } else if coin(&mut rng, spec.vc_full_overlap) {
                1.0
            } else {
                (spec.base_overlap * rng.gen_range(0.4..1.3)).clamp(0.05, 1.0)
            }
        })
        .collect();

    // Streams: sizes from the configured distribution; producer BU round-
    // robin.
    let mut srng = rng_for(config.seed, &format!("streams/{}", spec.name));
    let streams: Vec<StreamInfo> = (0..spec.num_streams)
        .map(|si| StreamInfo {
            base_name: format!("{}/stream{si}", spec.name),
            rows: config.stream_rows.sample(&mut srng).round() as u64,
        })
        .collect();

    // Fragments: Zipf over streams so hot inputs are consumed by many
    // fragments (Figure 3b per-input overlap).
    let stream_pick = Zipf::new(spec.num_streams, 1.05);
    let mut streams = streams;
    let mut frng = rng_for(config.seed, &format!("fragments/{}", spec.name));
    let fragments: Vec<Fragment> = (0..spec.num_fragments)
        .map(|fi| {
            let kind = FRAGMENT_KINDS[fi % FRAGMENT_KINDS.len()];
            Fragment {
                stream: stream_pick.sample(&mut frng),
                second_stream: stream_pick.sample(&mut frng),
                kind,
                threshold: frng.gen_range(1..100),
                seed: frng.gen(),
                udo_version: format!("1.{}.0", frng.gen_range(0..4)),
            }
        })
        .collect();

    // Templates: owner user Zipf (heavy users), fragments Zipf (popular
    // folklore), overlap propensity decides shared vs private fragments.
    let user_pick = Zipf::new(spec.num_users.max(1), 1.1);
    let frag_pick = Zipf::new(spec.num_fragments, spec.fragment_zipf);
    let mut trng = rng_for(config.seed, &format!("templates/{}", spec.name));
    let mut templates = Vec::with_capacity(spec.num_templates);
    let mut fragments = fragments;
    for ti in 0..spec.num_templates {
        let vc = VcId::new((ti % spec.num_vcs) as u64);
        let user = UserId::new(user_pick.sample(&mut trng) as u64);
        let propensity = vc_overlap[vc.index()];
        let shared = coin(&mut trng, propensity);
        let n_frags = if shared {
            // 1..=4 usually; occasionally many (jobs with 10s of overlaps).
            if coin(&mut trng, 0.1) {
                trng.gen_range(5..=8)
            } else {
                trng.gen_range(1..=4)
            }
        } else {
            1
        };
        let fragment_ids: Vec<usize> = if shared {
            (0..n_frags).map(|_| frag_pick.sample(&mut trng)).collect()
        } else {
            // Fully private job: a template-specific fragment over a
            // template-specific stream — no shared scans, no shared
            // computation (the paper's non-overlapping jobs read their own
            // inputs).
            let kind = FRAGMENT_KINDS[trng.gen_range(0..FRAGMENT_KINDS.len())];
            let private_stream = streams.len();
            streams.push(StreamInfo {
                base_name: format!("{}/private/t{ti}", spec.name),
                rows: config.stream_rows.sample(&mut trng).round() as u64,
            });
            let private = Fragment {
                stream: private_stream,
                second_stream: private_stream,
                kind,
                threshold: trng.gen_range(1..100),
                seed: trng.gen(),
                udo_version: "9.9.9".into(),
            };
            fragments.push(private);
            vec![fragments.len() - 1]
        };
        let tails: Vec<bool> = fragment_ids
            .iter()
            .map(|_| coin(&mut trng, 0.7)) // 30%: pure clone up to the output
            .collect();
        let multiplicity = if propensity > 0.0 && coin(&mut trng, 0.04) {
            2
        } else {
            1
        };
        templates.push(TemplateInfo {
            template: TemplateId::new((ci * 1_000_000 + ti) as u64),
            vc,
            user,
            fragment_ids,
            tails,
            tail_seed: trng.gen(),
            multiplicity,
        });
    }

    Ok(ClusterWorkload {
        cluster,
        spec: spec.clone(),
        vc_bu,
        vc_overlap,
        streams,
        fragments,
        templates,
    })
}

/// Stable per-(cluster, stream, instance) dataset GUID.
fn dataset_guid(cluster: ClusterId, stream: usize, instance: u64) -> DatasetId {
    DatasetId::new(sip64(
        format!("guid/{}/{stream}/{instance}", cluster.raw()).as_bytes(),
    ))
}

/// Date string for a recurring instance, embedded in stream names.
fn instance_date(instance: u64) -> String {
    let month = 1 + (instance / 28) % 12;
    let day = 1 + instance % 28;
    format!("2017-{month:02}-{day:02}")
}

/// Deterministic row synthesis for one stream instance.
fn generate_stream_table(cluster: ClusterId, stream: usize, instance: u64, rows: u64) -> Table {
    let mut rng = rng_for(
        sip64(format!("data/{}/{stream}/{instance}", cluster.raw()).as_bytes()),
        "rows",
    );
    let cats = ["news", "video", "shop", "mail", "search"];
    let words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
    let date = (instance as i32) + 17_000;
    // Batch-first synthesis: fill typed columns directly, no row
    // materialization. Draw order per row is unchanged, so the data is
    // byte-identical to the historical row-wise generator.
    let n = rows as usize;
    let mut users = Vec::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    let mut categories = Vec::with_capacity(n);
    let mut amounts = Vec::with_capacity(n);
    let mut texts = Vec::with_capacity(n);
    for _ in 0..rows {
        // Draw order matches the historical row-wise generator exactly.
        users.push((rng.gen_range(0.0_f64..1.0).powi(2) * 500.0) as i64); // skewed
        let w1 = words[rng.gen_range(0..words.len())];
        let w2 = words[rng.gen_range(0..words.len())];
        ids.push(rng.gen_range(0..10_000));
        categories.push(cats[rng.gen_range(0..cats.len())].to_string());
        amounts.push((rng.gen_range(0.0_f64..100.0) * 100.0).round() / 100.0);
        texts.push(format!("{w1} {w2}"));
    }
    let columns = vec![
        ColumnVector::Int {
            data: users,
            nulls: None,
        },
        ColumnVector::Int {
            data: ids,
            nulls: None,
        },
        ColumnVector::Str {
            data: categories,
            nulls: None,
        },
        ColumnVector::Float {
            data: amounts,
            nulls: None,
        },
        ColumnVector::Date {
            data: vec![date; n],
            nulls: None,
        },
        ColumnVector::Str {
            data: texts,
            nulls: None,
        },
    ];
    Table::from_columns(stream_schema(), columns).expect("uniform column lengths")
}

/// Builds one fragment's sub-plan. Identical calls (same fragment, same
/// instance) from different templates produce identical subgraphs — the
/// source of all overlap in this workload.
fn build_fragment(
    b: &mut PlanBuilder,
    cw: &ClusterWorkload,
    f: &Fragment,
    instance: u64,
) -> scope_common::ids::NodeId {
    let date = instance_date(instance);
    let scan_of = |b: &mut PlanBuilder, stream: usize| {
        let info = &cw.streams[stream];
        b.table_scan(
            dataset_guid(cw.cluster, stream, instance),
            format!("{}/{}/data.ss", info.base_name, date),
            stream_schema(),
        )
    };
    let date_param = || Expr::param("@@startDate", Value::Date(instance as i32 + 17_000));

    match f.kind {
        FragmentKind::CookSort => {
            let s = scan_of(b, f.stream);
            let fil = b.filter(
                s,
                Expr::col(4)
                    .ge(date_param())
                    .and(Expr::col(1).ge(Expr::lit(f.threshold * 3))),
            );
            let ex = b.exchange(
                fil,
                Partitioning::Hash {
                    cols: vec![0],
                    parts: 8,
                },
            );
            b.sort(ex, SortOrder::asc(&[0, 1]))
        }
        FragmentKind::CookAgg => {
            let s = scan_of(b, f.stream);
            let fil = b.filter(s, Expr::col(3).gt(Expr::lit(f.threshold as f64 * 0.3)));
            let ex = b.exchange(
                fil,
                Partitioning::Hash {
                    cols: vec![0],
                    parts: 8,
                },
            );
            let agg = b.aggregate(
                ex,
                vec![0],
                vec![
                    AggExpr::new("events", AggFunc::Count, 1),
                    AggExpr::new("total", AggFunc::Sum, 3),
                ],
            );
            // Cooked outputs ship sorted by key (partition-local).
            b.sort(agg, SortOrder::asc(&[0]))
        }
        FragmentKind::ScoreUdf => {
            let s = scan_of(b, f.stream);
            let p = b.process(
                s,
                Udo::new(
                    UdoKind::ScoreModel {
                        cols: vec![0, 1],
                        seed: f.seed,
                    },
                    "Contoso.ML",
                    f.udo_version.clone(),
                ),
            );
            b.filter(p, Expr::col(6).gt(Expr::lit(0.5)))
        }
        FragmentKind::TokenizeCount => {
            let s = scan_of(b, f.stream);
            let s = b.filter(s, Expr::col(1).ge(Expr::lit(f.threshold * 2)));
            let tok = b.process(
                s,
                Udo::new(
                    UdoKind::Tokenize { col: 5 },
                    "Contoso.Text",
                    f.udo_version.clone(),
                ),
            );
            let ex = b.exchange(
                tok,
                Partitioning::Hash {
                    cols: vec![6],
                    parts: 8,
                },
            );
            let agg = b.aggregate(ex, vec![6], vec![AggExpr::new("n", AggFunc::Count, 0)]);
            b.sort(agg, SortOrder(vec![SortKey::desc(1)]))
        }
        FragmentKind::JoinPair => {
            let l = scan_of(b, f.stream);
            let r = scan_of(b, f.second_stream);
            let lex = b.exchange(
                l,
                Partitioning::Hash {
                    cols: vec![0],
                    parts: 8,
                },
            );
            let rex = b.exchange(
                r,
                Partitioning::Hash {
                    cols: vec![0],
                    parts: 8,
                },
            );
            let ra = b.aggregate(
                rex,
                vec![0],
                vec![AggExpr::new("visits", AggFunc::Count, 1)],
            );
            let j = b.join(lex, ra, scope_plan::JoinKind::Inner, vec![0], vec![0]);
            b.project(
                j,
                vec![
                    NamedExpr::new("user", Expr::col(0)),
                    NamedExpr::new("val", Expr::col(3)),
                    NamedExpr::new("visits", Expr::col(7)),
                ],
            )
        }
        FragmentKind::SessionReduce => {
            let s = scan_of(b, f.stream);
            let fil = b.filter(s, Expr::col(4).ge(date_param()));
            let fil = b.exchange(
                fil,
                Partitioning::Hash {
                    cols: vec![0],
                    parts: 8,
                },
            );
            let fil = b.sort(fil, SortOrder::asc(&[0]));
            b.reduce(
                fil,
                Udo::new(
                    UdoKind::TrimBand {
                        col: 1,
                        gap: f.threshold.min(10),
                    },
                    "Contoso.Sessions",
                    f.udo_version.clone(),
                ),
                vec![0],
            )
        }
        FragmentKind::TopK => {
            let s = scan_of(b, f.stream);
            let fil = b.filter(s, Expr::col(3).gt(Expr::lit(f.threshold as f64 * 0.5)));
            b.top(fil, 100, SortOrder(vec![SortKey::desc(3)]))
        }
        FragmentKind::WindowRank => {
            let s = scan_of(b, f.stream);
            let fil = b.filter(s, Expr::col(3).gt(Expr::lit(f.threshold as f64 * 0.25)));
            let ex = b.exchange(
                fil,
                Partitioning::Hash {
                    cols: vec![2],
                    parts: 8,
                },
            );
            let so = b.sort(ex, SortOrder(vec![SortKey::asc(2), SortKey::desc(3)]));
            b.window(
                so,
                scope_plan::op::WindowFunc::Rank,
                vec![2],
                SortOrder(vec![SortKey::desc(3)]),
            )
        }
    }
}

/// Builds the full job graph of a template instance.
fn build_template_graph(
    cw: &ClusterWorkload,
    t: &TemplateInfo,
    instance: u64,
    copy: usize,
) -> Result<scope_plan::QueryGraph> {
    let mut b = PlanBuilder::new();
    let date = instance_date(instance);
    let mut trng = rng_for(t.tail_seed, "tail");
    for (bi, (&fid, &tail)) in t.fragment_ids.iter().zip(&t.tails).enumerate() {
        let frag_root = build_fragment(&mut b, cw, &cw.fragments[fid], instance);
        let out_root = if tail {
            // Template-specific extension: a private scalar projection.
            let factor: f64 = trng.gen_range(0.5..2.0);
            let proj = b.project(
                frag_root,
                vec![
                    NamedExpr::new("k", Expr::col(0)),
                    NamedExpr::new(
                        "m",
                        Expr::func(
                            ScalarFunc::Greatest,
                            vec![Expr::col(1).mul(Expr::lit(factor)), Expr::lit(0.0)],
                        ),
                    ),
                ],
            );
            if coin(&mut trng, 0.4) {
                b.filter(proj, Expr::col(1).gt(Expr::lit(trng.gen_range(0.0..5.0))))
            } else {
                proj
            }
        } else {
            frag_root
        };
        // The copy index keeps duplicate submissions distinguishable by
        // output name only (contents identical — full-job overlap).
        let out_name = format!(
            "out/{}/t{}b{bi}c{copy}/{date}/part.ss",
            cw.spec.name,
            t.template.raw()
        );
        b.write(out_root, out_name);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_signature::sign_graph;
    use std::collections::HashMap;

    fn tiny_workload() -> RecurringWorkload {
        RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![ClusterSpec::tiny("test")],
            // Arbitrary, but pinned to a value whose tiny fixture draws at
            // least one overlapping VC (seed-sensitive: the generator's
            // zero-overlap coin can otherwise zero out a 12-job cluster).
            seed: 7,
            stream_rows: LogNormal::new(5.0, 0.5, 50.0, 500.0),
        })
        .unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let w1 = tiny_workload();
        let w2 = tiny_workload();
        let j1 = w1.jobs_for_instance(0, 0).unwrap();
        let j2 = w2.jobs_for_instance(0, 0).unwrap();
        assert_eq!(j1.len(), j2.len());
        for (a, b) in j1.iter().zip(&j2) {
            let sa = sign_graph(&a.graph).unwrap();
            let sb = sign_graph(&b.graph).unwrap();
            assert_eq!(
                sa.of(a.graph.roots()[0]).precise,
                sb.of(b.graph.roots()[0]).precise
            );
        }
    }

    #[test]
    fn all_graphs_validate() {
        let w = tiny_workload();
        for job in w.jobs_for_instance(0, 0).unwrap() {
            job.graph.validate().unwrap();
        }
    }

    #[test]
    fn overlap_exists_within_instance() {
        let w = tiny_workload();
        let jobs = w.jobs_for_instance(0, 0).unwrap();
        // Count precise-signature collisions across different jobs.
        let mut seen: HashMap<scope_common::Sig128, usize> = HashMap::new();
        for job in &jobs {
            let signed = sign_graph(&job.graph).unwrap();
            let mut in_job: Vec<scope_common::Sig128> =
                signed.all().iter().map(|s| s.precise).collect();
            in_job.sort_unstable();
            in_job.dedup();
            for sig in in_job {
                *seen.entry(sig).or_default() += 1;
            }
        }
        let overlapping = seen.values().filter(|&&c| c >= 2).count();
        assert!(
            overlapping > 5,
            "expected cross-job overlap, found {overlapping} shared subgraphs"
        );
    }

    #[test]
    fn instances_match_normalized_not_precise() {
        let w = tiny_workload();
        let day0 = w.jobs_for_instance(0, 0).unwrap();
        let day1 = w.jobs_for_instance(0, 1).unwrap();
        let mut any_checked = false;
        for (a, b) in day0.iter().zip(&day1) {
            assert_eq!(a.template, b.template);
            if a.graph.len() != b.graph.len() {
                continue;
            }
            let sa = sign_graph(&a.graph).unwrap();
            let sb = sign_graph(&b.graph).unwrap();
            for (x, y) in sa.all().iter().zip(sb.all()) {
                assert_eq!(
                    x.normalized, y.normalized,
                    "template drift across instances"
                );
                assert_ne!(x.precise, y.precise, "precise must change with new GUIDs");
            }
            any_checked = true;
        }
        assert!(any_checked);
    }

    #[test]
    fn zero_overlap_vcs_have_private_fragments() {
        let mut spec = ClusterSpec::tiny("t");
        spec.vc_zero_overlap = 1.0; // every VC zero-overlap
        let w = RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![spec],
            seed: 7,
            stream_rows: LogNormal::new(5.0, 0.5, 50.0, 500.0),
        })
        .unwrap();
        let jobs = w.jobs_for_instance(0, 0).unwrap();
        // Private fragments have distinct seeds/thresholds: overlapping
        // full subgraphs across jobs should be (almost) absent. We allow
        // scan-level overlap (same stream scanned twice is still real
        // overlap the paper would count).
        let mut seen: HashMap<scope_common::Sig128, usize> = HashMap::new();
        for job in &jobs {
            let signed = sign_graph(&job.graph).unwrap();
            for (node, sigs) in job.graph.nodes().iter().zip(signed.all()) {
                if node.children.is_empty() {
                    continue; // ignore bare scans
                }
                *seen.entry(sigs.precise).or_default() += 1;
            }
        }
        // Multiplicity-2 templates still duplicate themselves; tolerate a
        // tiny count.
        let overlapping = seen.values().filter(|&&c| c >= 2).count();
        // Duplicate-submission templates (multiplicity 2) legitimately
        // duplicate whole jobs, and private thresholds can collide; allow a
        // small residue.
        assert!(overlapping <= 12, "{overlapping} unexpected overlaps");
    }

    #[test]
    fn register_instance_data_populates_storage() {
        let w = tiny_workload();
        let storage = StorageManager::new();
        w.register_instance_data(0, 0, &storage, 0.5).unwrap();
        assert_eq!(storage.num_datasets(), w.clusters[0].streams.len());
        // A job executes end-to-end on the registered data.
        let jobs = w.jobs_for_instance(0, 0).unwrap();
        let out = scope_engine::job::run_job_baseline(
            &jobs[0],
            &storage,
            &scope_engine::cost::CostModel::default(),
            &scope_engine::sim::ClusterConfig::default(),
            scope_common::time::SimTime::ZERO,
        )
        .unwrap();
        assert!(!out.outputs.is_empty());
    }

    #[test]
    fn paper_presets_generate() {
        let five = RecurringWorkload::generate(WorkloadConfig::paper_five_clusters(1)).unwrap();
        assert_eq!(five.clusters.len(), 5);
        let large =
            RecurringWorkload::generate(WorkloadConfig::paper_large_cluster(1, 16)).unwrap();
        assert_eq!(large.clusters[0].spec.num_vcs, 16);
        let bu = RecurringWorkload::generate(WorkloadConfig::paper_business_unit(1)).unwrap();
        assert_eq!(bu.clusters[0].spec.num_business_units, 1);
    }

    #[test]
    fn empty_config_rejected() {
        let err = RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![],
            seed: 0,
            stream_rows: LogNormal::new(5.0, 0.5, 50.0, 500.0),
        })
        .unwrap_err();
        assert_eq!(err.kind(), "workload");
    }

    #[test]
    fn instance_dates_roll_over_months() {
        assert_eq!(instance_date(0), "2017-01-01");
        assert_eq!(instance_date(27), "2017-01-28");
        assert_eq!(instance_date(28), "2017-02-01");
        assert_eq!(instance_date(28 * 12), "2017-01-01");
    }
}
