//! All 99 TPC-DS queries as table-driven plan builders.
//!
//! Each query is described by a [`TpcdsQuery`] spec — sales/returns
//! channel(s), a date-dimension predicate, the dimension tables joined, the
//! grouping key, the metric aggregated, and an optional top-N — taken from
//! the shape of the corresponding official query (channel mix, dimensions,
//! and typical predicates). The builder lowers every spec through one
//! canonical pipeline:
//!
//! ```text
//! fact ⋈ σ(date_dim) ⋈ dim₁ ⋈ dim₂ … → π(group, metric)
//!   [∪ other channels] → shuffle → γ(group; sum, count, avg) → top-N → out
//! ```
//!
//! Because the pipeline is canonical, two queries over the same channel and
//! the same date predicate produce *byte-identical* `fact ⋈ σ(date_dim)`
//! subgraphs (and identical longer prefixes when their dimension lists share
//! a prefix) — which is precisely the inter-query overlap the paper's
//! TPC-DS experiment (Figure 13) exploits. The translation is a plan-level
//! approximation of the SQL (see DESIGN.md): correlated subqueries and
//! windowed ranking variants are flattened into the same join/aggregate
//! skeleton, preserving which queries share which computation.

use scope_common::ids::NodeId;
use scope_common::{Result, ScopeError};
use scope_plan::expr::AggFunc;
use scope_plan::{
    AggExpr, Expr, JoinKind, NamedExpr, Partitioning, PlanBuilder, QueryGraph, Schema, SortKey,
    SortOrder,
};

use super::schema::{dataset_id, table_schema, TpcdsTable};

/// Number of TPC-DS queries.
pub const NUM_QUERIES: u32 = 99;

/// A sales/returns channel of one query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Channel {
    /// store_sales
    SS,
    /// catalog_sales
    CS,
    /// web_sales
    WS,
    /// store_returns
    SR,
    /// catalog_returns
    CR,
    /// web_returns
    WR,
    /// inventory
    INV,
}

/// Dimensions a query joins (canonical join order = enum order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Dim {
    /// item
    Item,
    /// customer
    Customer,
    /// customer_address (via customer, or ss_addr_sk on the store channel)
    CustomerAddress,
    /// customer_demographics
    CustomerDemographics,
    /// household_demographics
    HouseholdDemographics,
    /// store (store channel only)
    Store,
    /// promotion (sales channels)
    Promotion,
    /// warehouse (catalog/inventory)
    Warehouse,
    /// call_center (catalog)
    CallCenter,
    /// web_site (web sales)
    WebSite,
    /// web_page (web)
    WebPage,
    /// ship_mode (catalog/web sales)
    ShipMode,
    /// reason (returns)
    Reason,
}

/// Grouping key of a query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Group {
    /// Global aggregate, no grouping.
    NoGroup,
    /// i_category
    ItemCategory,
    /// i_brand_id
    ItemBrand,
    /// i_class
    ItemClass,
    /// s_store_name
    StoreName,
    /// s_state
    StoreState,
    /// ca_state
    CaState,
    /// cd_gender
    Gender,
    /// cd_marital_status
    Marital,
    /// c_birth_year
    BirthYear,
    /// w_warehouse_name
    WarehouseName,
    /// cc_name
    CallCenterName,
    /// web_name
    WebSiteName,
    /// d_moy (of the already-filtered dates)
    Moy,
    /// d_day_name
    DayName,
    /// hd_buy_potential
    BuyPotential,
    /// sm_type
    ShipModeType,
    /// r_reason_desc
    ReasonDesc,
    /// i_manufact_id
    ManufactId,
}

/// Aggregated metric.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// ext sales price (sales channels).
    ExtPrice,
    /// quantity.
    Quantity,
    /// net profit (sales channels).
    NetProfit,
    /// return amount (returns channels).
    ReturnAmt,
    /// quantity on hand (inventory).
    OnHand,
}

/// One query's specification.
#[derive(Clone, Debug)]
pub struct TpcdsQuery {
    /// Query number (1..=99).
    pub id: u32,
    /// Channels unioned.
    pub channels: &'static [Channel],
    /// d_year predicate.
    pub year: i64,
    /// Optional d_moy predicate.
    pub moy: Option<i64>,
    /// Optional d_qoy predicate.
    pub qoy: Option<i64>,
    /// Dimensions joined (auto-completed with prerequisites).
    pub dims: &'static [Dim],
    /// Grouping key.
    pub group: Group,
    /// Metric.
    pub metric: Metric,
    /// Optional top-N on the summed metric.
    pub top: Option<usize>,
}

use Channel::*;
use Dim::*;
use Group::*;
use Metric::*;

#[allow(clippy::too_many_arguments)]
const fn q(
    id: u32,
    channels: &'static [Channel],
    year: i64,
    moy: Option<i64>,
    qoy: Option<i64>,
    dims: &'static [Dim],
    group: Group,
    metric: Metric,
    top: Option<usize>,
) -> TpcdsQuery {
    TpcdsQuery {
        id,
        channels,
        year,
        moy,
        qoy,
        dims,
        group,
        metric,
        top,
    }
}

/// The spec of query `id` (1..=99).
pub fn query_spec(id: u32) -> Result<TpcdsQuery> {
    let spec = match id {
        1 => q(
            1,
            &[SR],
            2000,
            None,
            None,
            &[Customer, Store],
            StoreState,
            ReturnAmt,
            Some(100),
        ),
        2 => q(2, &[WS, CS], 2000, None, None, &[], DayName, ExtPrice, None),
        3 => q(
            3,
            &[SS],
            2000,
            Some(11),
            None,
            &[Item],
            ItemBrand,
            ExtPrice,
            Some(100),
        ),
        4 => q(
            4,
            &[SS, CS, WS],
            2000,
            None,
            None,
            &[Customer],
            BirthYear,
            ExtPrice,
            Some(100),
        ),
        5 => q(
            5,
            &[SS, CS, WS],
            2000,
            None,
            None,
            &[],
            DayName,
            ExtPrice,
            Some(100),
        ),
        6 => q(
            6,
            &[SS],
            2000,
            Some(1),
            None,
            &[Customer, CustomerAddress, Item],
            CaState,
            ExtPrice,
            Some(100),
        ),
        7 => q(
            7,
            &[SS],
            2000,
            None,
            None,
            &[CustomerDemographics, Item, Promotion],
            ItemCategory,
            Quantity,
            Some(100),
        ),
        8 => q(
            8,
            &[SS],
            2000,
            None,
            Some(1),
            &[Store, Customer, CustomerAddress],
            StoreName,
            ExtPrice,
            Some(100),
        ),
        9 => q(9, &[SS], 2000, None, None, &[], None_, Quantity, None),
        10 => q(
            10,
            &[CS, WS],
            2000,
            None,
            None,
            &[Customer, CustomerDemographics, CustomerAddress],
            Gender,
            ExtPrice,
            Some(100),
        ),
        11 => q(
            11,
            &[SS, WS],
            2000,
            None,
            None,
            &[Customer],
            BirthYear,
            ExtPrice,
            Some(100),
        ),
        12 => q(
            12,
            &[WS],
            2000,
            None,
            None,
            &[Item],
            ItemCategory,
            ExtPrice,
            Some(100),
        ),
        13 => q(
            13,
            &[SS],
            2000,
            None,
            None,
            &[
                Store,
                CustomerDemographics,
                HouseholdDemographics,
                Customer,
                CustomerAddress,
            ],
            None_,
            ExtPrice,
            None,
        ),
        14 => q(
            14,
            &[SS, CS, WS],
            2000,
            None,
            None,
            &[Item],
            ItemCategory,
            ExtPrice,
            Some(100),
        ),
        15 => q(
            15,
            &[CS],
            2000,
            None,
            Some(1),
            &[Customer, CustomerAddress],
            CaState,
            ExtPrice,
            Some(100),
        ),
        16 => q(
            16,
            &[CS],
            2000,
            Some(2),
            None,
            &[Customer, CustomerAddress, CallCenter],
            CallCenterName,
            ExtPrice,
            Some(100),
        ),
        17 => q(
            17,
            &[SS, CS],
            2000,
            None,
            Some(1),
            &[Item, Store],
            ItemClass,
            Quantity,
            Some(100),
        ),
        18 => q(
            18,
            &[CS],
            2000,
            None,
            None,
            &[CustomerDemographics, Customer, CustomerAddress, Item],
            CaState,
            Quantity,
            Some(100),
        ),
        19 => q(
            19,
            &[SS],
            2000,
            Some(11),
            None,
            &[Item, Customer, CustomerAddress, Store],
            ItemBrand,
            ExtPrice,
            Some(100),
        ),
        20 => q(
            20,
            &[CS],
            2000,
            None,
            None,
            &[Item],
            ItemCategory,
            ExtPrice,
            Some(100),
        ),
        21 => q(
            21,
            &[INV],
            2000,
            Some(3),
            None,
            &[Warehouse, Item],
            WarehouseName,
            OnHand,
            Some(100),
        ),
        22 => q(
            22,
            &[INV],
            2000,
            None,
            None,
            &[Item, Warehouse],
            ItemCategory,
            OnHand,
            Some(100),
        ),
        23 => q(
            23,
            &[SS, CS, WS],
            2000,
            None,
            None,
            &[Customer],
            None_,
            ExtPrice,
            Some(100),
        ),
        24 => q(
            24,
            &[SS, SR],
            2000,
            None,
            None,
            &[Store, Item, Customer, CustomerAddress],
            ItemClass,
            ExtPrice,
            None,
        ),
        25 => q(
            25,
            &[SS, CS],
            2000,
            Some(4),
            None,
            &[Item, Store],
            ItemClass,
            NetProfit,
            Some(100),
        ),
        26 => q(
            26,
            &[CS],
            2000,
            None,
            None,
            &[CustomerDemographics, Promotion, Item],
            ItemCategory,
            Quantity,
            Some(100),
        ),
        27 => q(
            27,
            &[SS],
            2000,
            None,
            None,
            &[CustomerDemographics, Store, Item],
            ItemCategory,
            Quantity,
            Some(100),
        ),
        28 => q(28, &[SS], 2000, None, None, &[], None_, ExtPrice, Some(100)),
        29 => q(
            29,
            &[SS, SR],
            2000,
            Some(9),
            None,
            &[Item, Store],
            ItemClass,
            Quantity,
            Some(100),
        ),
        30 => q(
            30,
            &[WR],
            2000,
            None,
            None,
            &[Customer, CustomerAddress],
            CaState,
            ReturnAmt,
            Some(100),
        ),
        31 => q(
            31,
            &[SS, WS],
            2000,
            None,
            Some(2),
            &[Customer, CustomerAddress],
            CaState,
            ExtPrice,
            None,
        ),
        32 => q(
            32,
            &[CS],
            2000,
            Some(1),
            None,
            &[Item],
            ManufactId,
            ExtPrice,
            Some(100),
        ),
        33 => q(
            33,
            &[SS, CS, WS],
            2000,
            Some(1),
            None,
            &[Item, Customer, CustomerAddress],
            ManufactId,
            ExtPrice,
            Some(100),
        ),
        34 => q(
            34,
            &[SS],
            2000,
            None,
            None,
            &[Store, HouseholdDemographics, Customer],
            BuyPotential,
            Quantity,
            None,
        ),
        35 => q(
            35,
            &[SS, CS, WS],
            2000,
            None,
            Some(1),
            &[Customer, CustomerDemographics, CustomerAddress],
            Gender,
            Quantity,
            Some(100),
        ),
        36 => q(
            36,
            &[SS],
            2000,
            None,
            None,
            &[Item, Store],
            ItemClass,
            NetProfit,
            Some(100),
        ),
        37 => q(
            37,
            &[INV],
            2000,
            Some(2),
            None,
            &[Item, Warehouse],
            ManufactId,
            OnHand,
            Some(100),
        ),
        38 => q(
            38,
            &[SS, CS, WS],
            2000,
            None,
            None,
            &[Customer],
            BirthYear,
            ExtPrice,
            Some(100),
        ),
        39 => q(
            39,
            &[INV],
            2000,
            Some(1),
            None,
            &[Item, Warehouse],
            WarehouseName,
            OnHand,
            None,
        ),
        40 => q(
            40,
            &[CS],
            2000,
            None,
            None,
            &[Warehouse, Item],
            StoreStateOr(WarehouseName),
            ExtPrice,
            Some(100),
        ),
        41 => q(
            41,
            &[SS],
            2000,
            None,
            None,
            &[Item],
            ManufactId,
            Count_(Quantity),
            Some(100),
        ),
        42 => q(
            42,
            &[SS],
            2000,
            Some(11),
            None,
            &[Item],
            ItemCategory,
            ExtPrice,
            Some(100),
        ),
        43 => q(
            43,
            &[SS],
            2000,
            None,
            None,
            &[Store],
            StoreName,
            ExtPrice,
            Some(100),
        ),
        44 => q(
            44,
            &[SS],
            2000,
            None,
            None,
            &[Item],
            ItemBrand,
            NetProfit,
            Some(100),
        ),
        45 => q(
            45,
            &[WS],
            2000,
            None,
            Some(2),
            &[Customer, CustomerAddress, Item],
            CaState,
            ExtPrice,
            Some(100),
        ),
        46 => q(
            46,
            &[SS],
            2000,
            None,
            None,
            &[Store, HouseholdDemographics, Customer, CustomerAddress],
            CaState,
            ExtPrice,
            Some(100),
        ),
        47 => q(
            47,
            &[SS],
            2000,
            None,
            None,
            &[Item, Store],
            ItemBrand,
            ExtPrice,
            Some(100),
        ),
        48 => q(
            48,
            &[SS],
            2000,
            None,
            None,
            &[Store, CustomerDemographics, Customer, CustomerAddress],
            None_,
            Quantity,
            None,
        ),
        49 => q(
            49,
            &[SS, CS, WS],
            2000,
            Some(12),
            None,
            &[Item],
            ItemCategory,
            Quantity,
            Some(100),
        ),
        50 => q(
            50,
            &[SS, SR],
            2000,
            Some(8),
            None,
            &[Store],
            StoreName,
            Quantity,
            Some(100),
        ),
        51 => q(
            51,
            &[SS, WS],
            2000,
            None,
            None,
            &[Item],
            ItemCategory,
            ExtPrice,
            Some(100),
        ),
        52 => q(
            52,
            &[SS],
            2000,
            Some(11),
            None,
            &[Item],
            ItemBrand,
            ExtPrice,
            Some(100),
        ),
        53 => q(
            53,
            &[SS],
            2000,
            None,
            None,
            &[Item, Store],
            ManufactId,
            ExtPrice,
            Some(100),
        ),
        54 => q(
            54,
            &[SS, CS, WS],
            2000,
            Some(12),
            None,
            &[Customer, CustomerAddress, Item],
            CaState,
            ExtPrice,
            Some(100),
        ),
        55 => q(
            55,
            &[SS],
            2000,
            Some(11),
            None,
            &[Item],
            ItemBrand,
            ExtPrice,
            Some(100),
        ),
        56 => q(
            56,
            &[SS, CS, WS],
            2000,
            Some(1),
            None,
            &[Item, Customer, CustomerAddress],
            ItemCategory,
            ExtPrice,
            Some(100),
        ),
        57 => q(
            57,
            &[CS],
            2000,
            None,
            None,
            &[Item, CallCenter],
            ItemBrand,
            ExtPrice,
            Some(100),
        ),
        58 => q(
            58,
            &[SS, CS, WS],
            2000,
            None,
            None,
            &[Item],
            ItemCategory,
            ExtPrice,
            Some(100),
        ),
        59 => q(
            59,
            &[SS],
            2000,
            None,
            None,
            &[Store],
            StoreName,
            ExtPrice,
            None,
        ),
        60 => q(
            60,
            &[SS, CS, WS],
            2000,
            Some(9),
            None,
            &[Item, Customer, CustomerAddress],
            ItemCategory,
            ExtPrice,
            Some(100),
        ),
        61 => q(
            61,
            &[SS],
            2000,
            Some(11),
            None,
            &[Promotion, Store, Customer, CustomerAddress, Item],
            None_,
            ExtPrice,
            Some(100),
        ),
        62 => q(
            62,
            &[WS],
            2000,
            None,
            None,
            &[WebSite, ShipMode],
            ShipModeType,
            ExtPrice,
            Some(100),
        ),
        63 => q(
            63,
            &[SS],
            2000,
            None,
            None,
            &[Item, Store],
            ManufactId,
            ExtPrice,
            Some(100),
        ),
        64 => q(
            64,
            &[SS, CS],
            2000,
            None,
            None,
            &[Customer, CustomerAddress, Store, Item],
            ItemBrand,
            ExtPrice,
            None,
        ),
        65 => q(
            65,
            &[SS],
            2000,
            None,
            None,
            &[Store, Item],
            StoreName,
            ExtPrice,
            Some(100),
        ),
        66 => q(
            66,
            &[WS, CS],
            2000,
            None,
            None,
            &[Warehouse, ShipMode],
            WarehouseName,
            Quantity,
            Some(100),
        ),
        67 => q(
            67,
            &[SS],
            2000,
            None,
            None,
            &[Store, Item],
            ItemClass,
            Quantity,
            Some(100),
        ),
        68 => q(
            68,
            &[SS],
            2000,
            None,
            None,
            &[Store, HouseholdDemographics, Customer, CustomerAddress],
            CaState,
            ExtPrice,
            Some(100),
        ),
        69 => q(
            69,
            &[CS, WS],
            2000,
            None,
            Some(2),
            &[Customer, CustomerDemographics, CustomerAddress],
            Gender,
            ExtPrice,
            Some(100),
        ),
        70 => q(
            70,
            &[SS],
            2000,
            None,
            None,
            &[Store],
            StoreState,
            NetProfit,
            Some(100),
        ),
        71 => q(
            71,
            &[SS, CS, WS],
            2000,
            Some(11),
            None,
            &[Item],
            ItemBrand,
            ExtPrice,
            None,
        ),
        72 => q(
            72,
            &[CS],
            2000,
            None,
            None,
            &[
                Item,
                Warehouse,
                CustomerDemographics,
                HouseholdDemographics,
                Customer,
                Promotion,
            ],
            WarehouseName,
            Quantity,
            Some(100),
        ),
        73 => q(
            73,
            &[SS],
            2000,
            None,
            None,
            &[Store, HouseholdDemographics, Customer],
            BuyPotential,
            Quantity,
            None,
        ),
        74 => q(
            74,
            &[SS, WS],
            2000,
            None,
            None,
            &[Customer],
            BirthYear,
            ExtPrice,
            Some(100),
        ),
        75 => q(
            75,
            &[SS, CS, WS],
            2000,
            None,
            None,
            &[Item],
            ItemBrand,
            Quantity,
            Some(100),
        ),
        76 => q(
            76,
            &[SS, CS, WS],
            2000,
            None,
            None,
            &[Item],
            ItemCategory,
            ExtPrice,
            Some(100),
        ),
        77 => q(
            77,
            &[SS, CS, WS],
            2000,
            Some(8),
            None,
            &[],
            DayName,
            NetProfit,
            Some(100),
        ),
        78 => q(
            78,
            &[SS, CS, WS],
            2000,
            None,
            None,
            &[Customer, Item],
            ItemBrand,
            Quantity,
            Some(100),
        ),
        79 => q(
            79,
            &[SS],
            2000,
            None,
            None,
            &[Store, HouseholdDemographics, Customer],
            StoreName,
            ExtPrice,
            Some(100),
        ),
        80 => q(
            80,
            &[SS, CS, WS],
            2000,
            Some(8),
            None,
            &[Item, Promotion],
            ItemCategory,
            NetProfit,
            Some(100),
        ),
        81 => q(
            81,
            &[CR],
            2000,
            None,
            None,
            &[Customer, CustomerAddress],
            CaState,
            ReturnAmt,
            Some(100),
        ),
        82 => q(
            82,
            &[INV],
            2000,
            Some(6),
            None,
            &[Item, Warehouse],
            ManufactId,
            OnHand,
            Some(100),
        ),
        83 => q(
            83,
            &[SR, CR, WR],
            2000,
            None,
            None,
            &[Item],
            ItemCategory,
            ReturnAmt,
            Some(100),
        ),
        84 => q(
            84,
            &[SS],
            2000,
            None,
            None,
            &[
                Customer,
                CustomerAddress,
                CustomerDemographics,
                HouseholdDemographics,
            ],
            Gender,
            ExtPrice,
            Some(100),
        ),
        85 => q(
            85,
            &[WR],
            2000,
            None,
            None,
            &[Customer, CustomerDemographics, CustomerAddress, Reason],
            ReasonDesc,
            ReturnAmt,
            Some(100),
        ),
        86 => q(
            86,
            &[WS],
            2000,
            None,
            None,
            &[Item],
            ItemCategory,
            NetProfit,
            Some(100),
        ),
        87 => q(
            87,
            &[SS, CS, WS],
            2000,
            None,
            None,
            &[Customer],
            BirthYear,
            Count_(Quantity),
            Some(100),
        ),
        88 => q(
            88,
            &[SS],
            2000,
            None,
            None,
            &[Store, HouseholdDemographics],
            StoreName,
            Count_(Quantity),
            None,
        ),
        89 => q(
            89,
            &[SS],
            2000,
            None,
            None,
            &[Item, Store],
            ItemClass,
            ExtPrice,
            Some(100),
        ),
        90 => q(
            90,
            &[WS],
            2000,
            None,
            None,
            &[WebPage, HouseholdDemographics, Customer],
            BuyPotential,
            Count_(Quantity),
            Some(100),
        ),
        91 => q(
            91,
            &[CR],
            2000,
            Some(11),
            None,
            &[
                CallCenter,
                Customer,
                CustomerDemographics,
                HouseholdDemographics,
                CustomerAddress,
            ],
            CallCenterName,
            ReturnAmt,
            None,
        ),
        92 => q(
            92,
            &[WS],
            2000,
            Some(1),
            None,
            &[Item],
            ManufactId,
            ExtPrice,
            Some(100),
        ),
        93 => q(
            93,
            &[SR],
            2000,
            None,
            None,
            &[Reason, Item],
            ReasonDesc,
            Quantity,
            Some(100),
        ),
        94 => q(
            94,
            &[WS],
            2000,
            Some(2),
            None,
            &[Customer, CustomerAddress, WebSite],
            WebSiteName,
            ExtPrice,
            Some(100),
        ),
        95 => q(
            95,
            &[WS],
            2000,
            Some(2),
            None,
            &[Customer, CustomerAddress, WebSite],
            WebSiteName,
            Count_(Quantity),
            Some(100),
        ),
        96 => q(
            96,
            &[SS],
            2000,
            None,
            None,
            &[Store, HouseholdDemographics],
            None_,
            Count_(Quantity),
            Some(100),
        ),
        97 => q(
            97,
            &[SS, CS],
            2000,
            None,
            None,
            &[Customer],
            None_,
            Count_(Quantity),
            None,
        ),
        98 => q(
            98,
            &[SS],
            2000,
            None,
            None,
            &[Item],
            ItemCategory,
            ExtPrice,
            None,
        ),
        99 => q(
            99,
            &[CS],
            2000,
            None,
            None,
            &[Warehouse, ShipMode, CallCenter],
            ShipModeType,
            Count_(Quantity),
            Some(100),
        ),
        other => {
            return Err(ScopeError::Workload(format!(
                "TPC-DS query {other} out of range 1..=99"
            )))
        }
    };
    Ok(spec)
}

// Spec-table aliases that keep the match arms one line each.
#[allow(non_upper_case_globals)]
const None_: Group = Group::NoGroup;
#[allow(non_snake_case)]
const fn Count_(m: Metric) -> Metric {
    // Count queries still need a metric column to aggregate over.
    m
}
#[allow(non_snake_case)]
const fn StoreStateOr(g: Group) -> Group {
    g
}

impl Channel {
    fn fact(self) -> TpcdsTable {
        match self {
            SS => TpcdsTable::StoreSales,
            CS => TpcdsTable::CatalogSales,
            WS => TpcdsTable::WebSales,
            SR => TpcdsTable::StoreReturns,
            CR => TpcdsTable::CatalogReturns,
            WR => TpcdsTable::WebReturns,
            INV => TpcdsTable::Inventory,
        }
    }

    fn date_fk(self) -> &'static str {
        match self {
            SS => "ss_sold_date_sk",
            CS => "cs_sold_date_sk",
            WS => "ws_sold_date_sk",
            SR => "sr_returned_date_sk",
            CR => "cr_returned_date_sk",
            WR => "wr_returned_date_sk",
            INV => "inv_date_sk",
        }
    }

    /// Foreign-key column of this fact for a dimension; `None` when the
    /// dimension does not apply to this channel directly. `Customer`-routed
    /// dims are resolved by the builder.
    fn dim_fk(self, dim: Dim) -> Option<&'static str> {
        match (self, dim) {
            (SS, Item) => Some("ss_item_sk"),
            (CS, Item) => Some("cs_item_sk"),
            (WS, Item) => Some("ws_item_sk"),
            (SR, Item) => Some("sr_item_sk"),
            (CR, Item) => Some("cr_item_sk"),
            (WR, Item) => Some("wr_item_sk"),
            (INV, Item) => Some("inv_item_sk"),
            (SS, Customer) => Some("ss_customer_sk"),
            (CS, Customer) => Some("cs_bill_customer_sk"),
            (WS, Customer) => Some("ws_bill_customer_sk"),
            (SR, Customer) => Some("sr_customer_sk"),
            (CR, Customer) => Some("cr_returning_customer_sk"),
            (WR, Customer) => Some("wr_returning_customer_sk"),
            (SS, CustomerAddress) => Some("ss_addr_sk"),
            (SS, CustomerDemographics) => Some("ss_cdemo_sk"),
            (SS, HouseholdDemographics) => Some("ss_hdemo_sk"),
            (SS | SR, Store) => Some(if self == SS {
                "ss_store_sk"
            } else {
                "sr_store_sk"
            }),
            (SS, Promotion) => Some("ss_promo_sk"),
            (CS, Promotion) => Some("cs_promo_sk"),
            (WS, Promotion) => Some("ws_promo_sk"),
            (CS, Warehouse) => Some("cs_warehouse_sk"),
            (INV, Warehouse) => Some("inv_warehouse_sk"),
            (CS, CallCenter) => Some("cs_call_center_sk"),
            (CR, CallCenter) => Some("cr_call_center_sk"),
            (WS, WebSite) => Some("web_site_fk_ws"),
            (WS, WebPage) => Some("ws_web_page_sk"),
            (WR, WebPage) => Some("wr_web_page_sk"),
            (CS, ShipMode) => Some("cs_ship_mode_sk"),
            (WS, ShipMode) => Some("ws_ship_mode_sk"),
            (SR, Reason) => Some("sr_reason_sk"),
            (CR, Reason) => Some("cr_reason_sk"),
            (WR, Reason) => Some("wr_reason_sk"),
            _ => Option::None,
        }
    }

    fn metric_col(self, metric: Metric) -> &'static str {
        match (self, metric) {
            (SS, ExtPrice) => "ss_ext_sales_price",
            (CS, ExtPrice) => "cs_ext_sales_price",
            (WS, ExtPrice) => "ws_ext_sales_price",
            (SS, Quantity) => "ss_quantity",
            (CS, Quantity) => "cs_quantity",
            (WS, Quantity) => "ws_quantity",
            (SS, NetProfit) => "ss_net_profit",
            (CS, NetProfit) => "cs_net_profit",
            (WS, NetProfit) => "ws_net_profit",
            (SR, ReturnAmt | ExtPrice | NetProfit) => "sr_return_amt",
            (CR, ReturnAmt | ExtPrice | NetProfit) => "cr_return_amount",
            (WR, ReturnAmt | ExtPrice | NetProfit) => "wr_return_amt",
            (SR, Quantity) => "sr_return_quantity",
            (CR, Quantity) => "cr_return_quantity",
            (WR, Quantity) => "wr_return_quantity",
            (INV, _) => "inv_quantity_on_hand",
            // Fallbacks for spec/channel mismatches: quantity-like columns.
            (SS | CS | WS, ReturnAmt | OnHand) => self.metric_col(Quantity),
            (SR | CR | WR, OnHand) => self.metric_col(Quantity),
        }
    }
}

impl Dim {
    fn table(self) -> TpcdsTable {
        match self {
            Item => TpcdsTable::Item,
            Customer => TpcdsTable::Customer,
            CustomerAddress => TpcdsTable::CustomerAddress,
            CustomerDemographics => TpcdsTable::CustomerDemographics,
            HouseholdDemographics => TpcdsTable::HouseholdDemographics,
            Store => TpcdsTable::Store,
            Promotion => TpcdsTable::Promotion,
            Warehouse => TpcdsTable::Warehouse,
            CallCenter => TpcdsTable::CallCenter,
            WebSite => TpcdsTable::WebSite,
            WebPage => TpcdsTable::WebPage,
            ShipMode => TpcdsTable::ShipMode,
            Reason => TpcdsTable::Reason,
        }
    }

    fn pk(self) -> &'static str {
        match self {
            Item => "i_item_sk",
            Customer => "c_customer_sk",
            CustomerAddress => "ca_address_sk",
            CustomerDemographics => "cd_demo_sk",
            HouseholdDemographics => "hd_demo_sk",
            Store => "s_store_sk",
            Promotion => "p_promo_sk",
            Warehouse => "w_warehouse_sk",
            CallCenter => "cc_call_center_sk",
            WebSite => "web_site_sk",
            WebPage => "wp_web_page_sk",
            ShipMode => "sm_ship_mode_sk",
            Reason => "r_reason_sk",
        }
    }

    /// Column on `customer` routing to this dim (when not on the fact).
    fn customer_route(self) -> Option<&'static str> {
        match self {
            CustomerAddress => Some("c_current_addr_sk"),
            CustomerDemographics => Some("c_current_cdemo_sk"),
            HouseholdDemographics => Some("c_current_hdemo_sk"),
            _ => Option::None,
        }
    }
}

impl Group {
    fn column(self) -> Option<&'static str> {
        match self {
            Group::NoGroup => Option::None,
            ItemCategory => Some("i_category"),
            ItemBrand => Some("i_brand_id"),
            ItemClass => Some("i_class"),
            StoreName => Some("s_store_name"),
            StoreState => Some("s_state"),
            CaState => Some("ca_state"),
            Gender => Some("cd_gender"),
            Marital => Some("cd_marital_status"),
            BirthYear => Some("c_birth_year"),
            WarehouseName => Some("w_warehouse_name"),
            CallCenterName => Some("cc_name"),
            WebSiteName => Some("web_name"),
            Moy => Some("d_moy"),
            DayName => Some("d_day_name"),
            BuyPotential => Some("hd_buy_potential"),
            ShipModeType => Some("sm_type"),
            ReasonDesc => Some("r_reason_desc"),
            ManufactId => Some("i_manufact_id"),
        }
    }

    /// The dimension this group key lives on (None = date_dim).
    fn needs_dim(self) -> Option<Dim> {
        match self {
            Group::NoGroup | Moy | DayName => Option::None,
            ItemCategory | ItemBrand | ItemClass | ManufactId => Some(Item),
            StoreName | StoreState => Some(Store),
            CaState => Some(CustomerAddress),
            Gender | Marital => Some(CustomerDemographics),
            BirthYear => Some(Customer),
            WarehouseName => Some(Warehouse),
            CallCenterName => Some(CallCenter),
            WebSiteName => Some(WebSite),
            BuyPotential => Some(HouseholdDemographics),
            ShipModeType => Some(ShipMode),
            ReasonDesc => Some(Reason),
        }
    }
}

/// Tracks column names through joins/projections so specs can reference
/// columns by name.
struct Tracked {
    node: NodeId,
    names: Vec<String>,
}

impl Tracked {
    fn pos(&self, name: &str) -> Result<usize> {
        self.names.iter().position(|n| n == name).ok_or_else(|| {
            ScopeError::Workload(format!("column {name} not found in {:?}", self.names))
        })
    }
}

fn scan(b: &mut PlanBuilder, t: TpcdsTable) -> Tracked {
    let schema: Schema = table_schema(t);
    let names = schema.columns().iter().map(|c| c.name.clone()).collect();
    let node = b.table_scan(dataset_id(t), t.stream_name(), schema);
    Tracked { node, names }
}

fn join(b: &mut PlanBuilder, left: Tracked, right: Tracked, lcol: usize, rcol: usize) -> Tracked {
    let node = b.join(
        left.node,
        right.node,
        JoinKind::Inner,
        vec![lcol],
        vec![rcol],
    );
    let mut names = left.names;
    for n in right.names {
        if names.contains(&n) {
            names.push(format!("r_{n}"));
        } else {
            names.push(n);
        }
    }
    Tracked { node, names }
}

/// Builds one channel's canonical subplan down to `(group..., m)`.
fn build_channel(
    b: &mut PlanBuilder,
    spec: &TpcdsQuery,
    channel: Channel,
    dims: &[Dim],
    group_cols: &[&'static str],
) -> Result<Tracked> {
    // fact
    let fact = scan(b, channel.fact());

    // σ(date_dim): byte-identical across queries with the same predicate.
    let dd = scan(b, TpcdsTable::DateDim);
    let mut pred = Expr::col(dd.pos("d_year")?).eq(Expr::lit(spec.year));
    if let Some(m) = spec.moy {
        pred = pred.and(Expr::col(dd.pos("d_moy")?).eq(Expr::lit(m)));
    }
    if let Some(qy) = spec.qoy {
        pred = pred.and(Expr::col(dd.pos("d_qoy")?).eq(Expr::lit(qy)));
    }
    let filtered = Tracked {
        node: b.filter(dd.node, pred),
        names: dd.names,
    };

    let lpos = fact.pos(channel.date_fk())?;
    let rpos = filtered.pos("d_date_sk")?;
    let mut cur = join(b, fact, filtered, lpos, rpos);

    // Dimension joins in canonical order.
    let mut joined_customer = false;
    for &dim in dims {
        if dim == Customer {
            if !joined_customer {
                let fk = channel
                    .dim_fk(Customer)
                    .ok_or_else(|| ScopeError::Workload("no customer fk".into()))?;
                let c = scan(b, Customer.table());
                let l = cur.pos(fk)?;
                let r = c.pos(Customer.pk())?;
                cur = join(b, cur, c, l, r);
                joined_customer = true;
            }
            continue;
        }
        // Direct fact fk?
        if let Some(fk) = channel.dim_fk(dim) {
            // Special case: the WS->WebSite fk name differs from the real
            // column name on web_sales.
            let fk = if fk == "web_site_fk_ws" {
                "ws_web_site_sk"
            } else {
                fk
            };
            let d = scan(b, dim.table());
            let l = cur.pos(fk)?;
            let r = d.pos(dim.pk())?;
            cur = join(b, cur, d, l, r);
            continue;
        }
        // Route via customer.
        if let Some(route) = dim.customer_route() {
            if !joined_customer {
                let fk = channel.dim_fk(Customer).ok_or_else(|| {
                    ScopeError::Workload(format!(
                        "q{}: {dim:?} needs customer routing but channel {channel:?} has no customer fk",
                        spec.id
                    ))
                })?;
                let c = scan(b, Customer.table());
                let l = cur.pos(fk)?;
                let r = c.pos(Customer.pk())?;
                cur = join(b, cur, c, l, r);
                joined_customer = true;
            }
            let d = scan(b, dim.table());
            let l = cur.pos(route)?;
            let r = d.pos(dim.pk())?;
            cur = join(b, cur, d, l, r);
            continue;
        }
        // Dimension not applicable to this channel: skip (multi-channel
        // specs list the union of dims; e.g. Store never joins on the web
        // channel).
    }

    // π(group..., m)
    let mut exprs: Vec<NamedExpr> = Vec::new();
    for (gi, gcol) in group_cols.iter().enumerate() {
        let pos = cur.pos(gcol)?;
        exprs.push(NamedExpr::new(format!("g{gi}"), Expr::col(pos)));
    }
    let metric_pos = cur.pos(channel.metric_col(spec.metric))?;
    exprs.push(NamedExpr::new("m", Expr::col(metric_pos)));
    let node = b.project(cur.node, exprs);
    let mut names: Vec<String> = (0..group_cols.len()).map(|gi| format!("g{gi}")).collect();
    names.push("m".into());
    Ok(Tracked { node, names })
}

/// Builds the full plan of TPC-DS query `id`.
pub fn build_query(id: u32) -> Result<QueryGraph> {
    let spec = query_spec(id)?;
    let mut b = PlanBuilder::new();

    // Complete the dim list with prerequisites of the group key, in
    // canonical order.
    let mut dims: Vec<Dim> = spec.dims.to_vec();
    if let Some(need) = spec.group.needs_dim() {
        if !dims.contains(&need) {
            dims.push(need);
        }
        if let Some(route) = need.customer_route() {
            let _ = route;
            if !dims.contains(&Customer) {
                dims.push(Customer);
            }
        }
    }
    dims.sort();
    dims.dedup();

    let group_cols: Vec<&'static str> = spec.group.column().into_iter().collect();

    let mut channel_outputs: Vec<NodeId> = Vec::new();
    for &ch in spec.channels {
        // Channels that cannot supply the group key (e.g. Store grouping on
        // a web channel) are skipped entirely — mirrors how the official
        // multi-channel queries restrict per-channel parts.
        match build_channel(&mut b, &spec, ch, &dims, &group_cols) {
            Ok(t) => channel_outputs.push(t.node),
            Err(e) => {
                if spec.channels.len() == 1 {
                    return Err(e);
                }
            }
        }
    }
    if channel_outputs.is_empty() {
        return Err(ScopeError::Workload(format!(
            "q{id}: no channel could supply the group key"
        )));
    }

    let unioned = if channel_outputs.len() == 1 {
        channel_outputs[0]
    } else {
        b.union_all(channel_outputs)
    };

    // Shuffle + aggregate.
    let key_cols: Vec<usize> = (0..group_cols.len()).collect();
    let metric_idx = group_cols.len();
    let pre_agg = if key_cols.is_empty() {
        unioned
    } else {
        b.exchange(
            unioned,
            Partitioning::Hash {
                cols: key_cols.clone(),
                parts: 8,
            },
        )
    };
    let agg = b.aggregate(
        pre_agg,
        key_cols,
        vec![
            AggExpr::new("total", AggFunc::Sum, metric_idx),
            AggExpr::new("cnt", AggFunc::Count, metric_idx),
            AggExpr::new("avg_m", AggFunc::Avg, metric_idx),
        ],
    );

    let tail = if let Some(n) = spec.top {
        let total_idx = group_cols.len(); // first agg output
        b.top(agg, n, SortOrder(vec![SortKey::desc(total_idx)]))
    } else {
        agg
    };
    b.output(tail, format!("tpcds/q{id}/result.ss"));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_1_to_99() {
        for i in 1..=NUM_QUERIES {
            let s = query_spec(i).unwrap();
            assert_eq!(s.id, i);
            assert!(!s.channels.is_empty());
        }
        assert!(query_spec(0).is_err());
        assert!(query_spec(100).is_err());
    }

    #[test]
    fn q3_shape() {
        let g = build_query(3).unwrap();
        // scan ss + scan dd + filter + join + scan item + join + project +
        // exchange + agg + top + output = 11 nodes.
        assert_eq!(g.len(), 11);
        g.validate().unwrap();
    }

    #[test]
    fn multi_channel_unions() {
        let g = build_query(14).unwrap(); // SS+CS+WS on item category
        let unions = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, scope_plan::Operator::UnionAll))
            .count();
        assert_eq!(unions, 1);
        let scans = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, scope_plan::Operator::Get { .. }))
            .count();
        // 3 facts + 3 date_dims + 3 items.
        assert_eq!(scans, 9);
    }

    #[test]
    fn same_predicate_same_subgraph() {
        use scope_signature::sign_graph;
        // q52 and q55 are both SS, year 2000, moy 11, item brand: their
        // fact⋈date⋈item subgraphs must be identical.
        let g52 = build_query(52).unwrap();
        let g55 = build_query(55).unwrap();
        let s52 = sign_graph(&g52).unwrap();
        let s55 = sign_graph(&g55).unwrap();
        let sigs52: std::collections::HashSet<_> = s52.all().iter().map(|s| s.precise).collect();
        let shared = s55
            .all()
            .iter()
            .filter(|s| sigs52.contains(&s.precise))
            .count();
        // Everything except possibly the output name should match.
        assert!(shared >= g55.len() - 1, "shared {shared} of {}", g55.len());
    }

    #[test]
    fn group_prereqs_added() {
        // q43 groups by store name; Store is in dims. q4 groups by birth
        // year; Customer must be auto-present.
        let g = build_query(4).unwrap();
        let has_customer_scan = g.nodes().iter().any(|n| {
            matches!(&n.op, scope_plan::Operator::Get { template_name, .. }
                if template_name.as_str().contains("customer.ss"))
        });
        assert!(has_customer_scan);
    }

    #[test]
    fn global_aggregates_have_no_exchange_before_agg() {
        let g = build_query(9).unwrap(); // Group::None
        g.validate().unwrap();
        let aggs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, scope_plan::Operator::Aggregate { .. }))
            .count();
        assert_eq!(aggs, 1);
    }

    #[test]
    fn store_dim_skipped_on_web_channel() {
        // q24 is SS+SR with Store: both channels support Store. q77 is
        // SS+CS+WS grouped by day name — no Store needed. Check q50 SS+SR.
        let g = build_query(50).unwrap();
        g.validate().unwrap();
    }
}
