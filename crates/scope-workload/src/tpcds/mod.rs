//! The TPC-DS benchmark substrate (paper Section 7.2).
//!
//! The paper runs all 99 TPC-DS queries at 1 TB, selects the top-10
//! overlapping computations with the CloudViews analyzer, and reports
//! per-query runtime improvements (Figure 13). What that experiment needs
//! from the benchmark is *which queries share which subexpressions* and
//! *relative* runtimes — not the full SQL surface. This module therefore
//! provides:
//!
//! * [`schema`] — the 24-table TPC-DS schema with the column subset the
//!   queries touch, plus a deterministic scaled data generator with valid
//!   foreign keys;
//! * [`queries`] — all 99 queries translated into plan builders through a
//!   table-driven spec (channel → fact table, dimension joins, date
//!   predicates, grouping, aggregates, top-N). Queries that share a channel
//!   and date predicate in TPC-DS share them here too, producing the
//!   signature-identical subexpressions Figure 13's reuse comes from.
//!
//! See DESIGN.md for the substitution note (plan-level translation instead
//! of a SQL parser; simulated cost model instead of a 100-node testbed).

pub mod queries;
pub mod schema;

use scope_common::ids::{ClusterId, JobId, TemplateId, UserId, VcId};
use scope_common::Result;
use scope_engine::job::JobSpec;
use scope_engine::storage::StorageManager;

pub use queries::{build_query, query_spec, TpcdsQuery, NUM_QUERIES};
pub use schema::{table_schema, TpcdsTable, ALL_TABLES};

/// A generated TPC-DS workload instance.
#[derive(Clone, Debug)]
pub struct TpcdsWorkload {
    /// Scale factor: 1.0 ≈ 40k fact rows (laptop scale; the shape of
    /// inter-query overlap is scale-invariant).
    pub scale: f64,
    /// Data generator seed.
    pub seed: u64,
}

impl TpcdsWorkload {
    /// A workload at the given scale.
    pub fn new(scale: f64, seed: u64) -> TpcdsWorkload {
        TpcdsWorkload { scale, seed }
    }

    /// Generates and registers every table into `storage`.
    pub fn register_data(&self, storage: &StorageManager) -> Result<()> {
        for table in ALL_TABLES {
            let t = schema::generate_table(table, self.scale, self.seed);
            storage.put_dataset(schema::dataset_id(table), t);
        }
        Ok(())
    }

    /// Builds the job spec for TPC-DS query `q` (1-based, 1..=99).
    pub fn query_job(&self, q: u32) -> Result<JobSpec> {
        let graph = build_query(q)?;
        Ok(JobSpec {
            id: JobId::new(q as u64),
            cluster: ClusterId::new(100),
            vc: VcId::new(0),
            user: UserId::new(0),
            template: TemplateId::new(1_000_000 + q as u64),
            instance: 0,
            graph,
        })
    }

    /// All 99 job specs in query order.
    pub fn all_jobs(&self) -> Result<Vec<JobSpec>> {
        (1..=NUM_QUERIES).map(|q| self.query_job(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::time::SimTime;
    use scope_common::ScopeError;
    use scope_engine::cost::CostModel;
    use scope_engine::job::run_job_baseline;
    use scope_engine::sim::ClusterConfig;

    /// Wraps a per-query failure with the query number, propagating the
    /// error instead of panicking so the test harness reports it cleanly.
    fn with_query(q: u32, e: ScopeError) -> ScopeError {
        ScopeError::Workload(format!("q{q}: {e}"))
    }

    #[test]
    fn all_99_queries_build_and_validate() -> Result<()> {
        for q in 1..=NUM_QUERIES {
            let g = build_query(q).map_err(|e| with_query(q, e))?;
            g.validate().map_err(|e| with_query(q, e))?;
        }
        Ok(())
    }

    #[test]
    fn data_registers_all_tables() {
        let storage = StorageManager::new();
        TpcdsWorkload::new(0.02, 1).register_data(&storage).unwrap();
        assert_eq!(storage.num_datasets(), ALL_TABLES.len());
    }

    #[test]
    fn sample_queries_execute() -> Result<()> {
        let storage = StorageManager::new();
        TpcdsWorkload::new(0.02, 1).register_data(&storage)?;
        let w = TpcdsWorkload::new(0.02, 1);
        for q in [1, 3, 7, 19, 42, 55, 72, 99] {
            let spec = w.query_job(q).map_err(|e| with_query(q, e))?;
            let out = run_job_baseline(
                &spec,
                &storage,
                &CostModel::default(),
                &ClusterConfig::default(),
                SimTime::ZERO,
            )
            .map_err(|e| with_query(q, e))?;
            assert!(!out.outputs.is_empty(), "q{q} produced no output");
        }
        Ok(())
    }

    #[test]
    fn queries_share_subexpressions() {
        use scope_signature::sign_graph;
        use std::collections::HashMap;
        // The famous store_sales ⋈ date_dim(year) subexpression must be
        // byte-identical across the queries that use the same year.
        let mut seen: HashMap<scope_common::Sig128, Vec<u32>> = HashMap::new();
        for q in 1..=NUM_QUERIES {
            let g = build_query(q).unwrap();
            let signed = sign_graph(&g).unwrap();
            let mut sigs: Vec<scope_common::Sig128> = g
                .nodes()
                .iter()
                .filter(|n| !n.children.is_empty())
                .map(|n| signed.of(n.id).precise)
                .collect();
            sigs.sort_unstable();
            sigs.dedup();
            for s in sigs {
                seen.entry(s).or_default().push(q);
            }
        }
        let shared = seen.values().filter(|qs| qs.len() >= 2).count();
        assert!(
            shared >= 20,
            "expected many shared interior subexpressions, found {shared}"
        );
        // And at least one subexpression shared by 5+ queries (top-10
        // selection material).
        let hot = seen.values().map(|qs| qs.len()).max().unwrap_or(0);
        assert!(
            hot >= 5,
            "hottest subexpression only shared by {hot} queries"
        );
    }

    #[test]
    fn scale_changes_row_counts() {
        let small = schema::generate_table(TpcdsTable::StoreSales, 0.01, 1);
        let big = schema::generate_table(TpcdsTable::StoreSales, 0.1, 1);
        assert!(big.num_rows() > small.num_rows() * 5);
    }
}
