//! The TPC-DS schema (24 tables) and deterministic data generation.
//!
//! Column lists are the subset the 99 translated queries touch; key
//! relationships (surrogate keys, foreign keys into `date_dim`, `item`,
//! `customer`, ...) are generated valid so joins actually match.

use rand::Rng;
use scope_common::hash::sip64;
use scope_common::ids::DatasetId;
use scope_engine::data::Table;
use scope_plan::{DataType, Schema, Value};

use crate::dists::rng_for;

/// The 24 TPC-DS tables.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TpcdsTable {
    /// Store channel fact.
    StoreSales,
    /// Store channel returns fact.
    StoreReturns,
    /// Catalog channel fact.
    CatalogSales,
    /// Catalog channel returns fact.
    CatalogReturns,
    /// Web channel fact.
    WebSales,
    /// Web channel returns fact.
    WebReturns,
    /// Warehouse inventory fact.
    Inventory,
    /// Stores dimension.
    Store,
    /// Call centers dimension.
    CallCenter,
    /// Catalog pages dimension.
    CatalogPage,
    /// Web sites dimension.
    WebSite,
    /// Web pages dimension.
    WebPage,
    /// Warehouses dimension.
    Warehouse,
    /// Customers dimension.
    Customer,
    /// Customer addresses dimension.
    CustomerAddress,
    /// Customer demographics dimension.
    CustomerDemographics,
    /// Household demographics dimension.
    HouseholdDemographics,
    /// Items dimension.
    Item,
    /// Income bands dimension.
    IncomeBand,
    /// Promotions dimension.
    Promotion,
    /// Return reasons dimension.
    Reason,
    /// Ship modes dimension.
    ShipMode,
    /// Time-of-day dimension.
    TimeDim,
    /// Calendar dimension.
    DateDim,
}

/// All 24 tables.
pub const ALL_TABLES: [TpcdsTable; 24] = [
    TpcdsTable::StoreSales,
    TpcdsTable::StoreReturns,
    TpcdsTable::CatalogSales,
    TpcdsTable::CatalogReturns,
    TpcdsTable::WebSales,
    TpcdsTable::WebReturns,
    TpcdsTable::Inventory,
    TpcdsTable::Store,
    TpcdsTable::CallCenter,
    TpcdsTable::CatalogPage,
    TpcdsTable::WebSite,
    TpcdsTable::WebPage,
    TpcdsTable::Warehouse,
    TpcdsTable::Customer,
    TpcdsTable::CustomerAddress,
    TpcdsTable::CustomerDemographics,
    TpcdsTable::HouseholdDemographics,
    TpcdsTable::Item,
    TpcdsTable::IncomeBand,
    TpcdsTable::Promotion,
    TpcdsTable::Reason,
    TpcdsTable::ShipMode,
    TpcdsTable::TimeDim,
    TpcdsTable::DateDim,
];

impl TpcdsTable {
    /// The table's stream name in the store (stable; TPC-DS data is static,
    /// so the "recurring GUID" never changes — the paper's "static
    /// computations" case).
    pub fn stream_name(self) -> &'static str {
        match self {
            TpcdsTable::StoreSales => "tpcds/store_sales.ss",
            TpcdsTable::StoreReturns => "tpcds/store_returns.ss",
            TpcdsTable::CatalogSales => "tpcds/catalog_sales.ss",
            TpcdsTable::CatalogReturns => "tpcds/catalog_returns.ss",
            TpcdsTable::WebSales => "tpcds/web_sales.ss",
            TpcdsTable::WebReturns => "tpcds/web_returns.ss",
            TpcdsTable::Inventory => "tpcds/inventory.ss",
            TpcdsTable::Store => "tpcds/store.ss",
            TpcdsTable::CallCenter => "tpcds/call_center.ss",
            TpcdsTable::CatalogPage => "tpcds/catalog_page.ss",
            TpcdsTable::WebSite => "tpcds/web_site.ss",
            TpcdsTable::WebPage => "tpcds/web_page.ss",
            TpcdsTable::Warehouse => "tpcds/warehouse.ss",
            TpcdsTable::Customer => "tpcds/customer.ss",
            TpcdsTable::CustomerAddress => "tpcds/customer_address.ss",
            TpcdsTable::CustomerDemographics => "tpcds/customer_demographics.ss",
            TpcdsTable::HouseholdDemographics => "tpcds/household_demographics.ss",
            TpcdsTable::Item => "tpcds/item.ss",
            TpcdsTable::IncomeBand => "tpcds/income_band.ss",
            TpcdsTable::Promotion => "tpcds/promotion.ss",
            TpcdsTable::Reason => "tpcds/reason.ss",
            TpcdsTable::ShipMode => "tpcds/ship_mode.ss",
            TpcdsTable::TimeDim => "tpcds/time_dim.ss",
            TpcdsTable::DateDim => "tpcds/date_dim.ss",
        }
    }

    /// Base row count at scale 1.0.
    pub fn base_rows(self) -> u64 {
        match self {
            TpcdsTable::StoreSales => 24_000,
            TpcdsTable::StoreReturns => 2_400,
            TpcdsTable::CatalogSales => 14_000,
            TpcdsTable::CatalogReturns => 1_400,
            TpcdsTable::WebSales => 7_000,
            TpcdsTable::WebReturns => 700,
            TpcdsTable::Inventory => 6_000,
            TpcdsTable::Store => 12,
            TpcdsTable::CallCenter => 6,
            TpcdsTable::CatalogPage => 60,
            TpcdsTable::WebSite => 6,
            TpcdsTable::WebPage => 20,
            TpcdsTable::Warehouse => 5,
            TpcdsTable::Customer => 2_000,
            TpcdsTable::CustomerAddress => 1_000,
            TpcdsTable::CustomerDemographics => 400,
            TpcdsTable::HouseholdDemographics => 144,
            TpcdsTable::Item => 600,
            TpcdsTable::IncomeBand => 20,
            TpcdsTable::Promotion => 30,
            TpcdsTable::Reason => 10,
            TpcdsTable::ShipMode => 8,
            TpcdsTable::TimeDim => 288,
            TpcdsTable::DateDim => 1_461, // 4 years, 1998-01-01..2001-12-31
        }
    }

    /// Dimensions never scale below their base (joins must keep matching).
    fn scaled_rows(self, scale: f64) -> u64 {
        match self {
            TpcdsTable::StoreSales
            | TpcdsTable::StoreReturns
            | TpcdsTable::CatalogSales
            | TpcdsTable::CatalogReturns
            | TpcdsTable::WebSales
            | TpcdsTable::WebReturns
            | TpcdsTable::Inventory => ((self.base_rows() as f64 * scale).round() as u64).max(50),
            _ => self.base_rows(),
        }
    }
}

/// Stable dataset GUID for a table (static data ⇒ static GUID).
pub fn dataset_id(table: TpcdsTable) -> DatasetId {
    DatasetId::new(sip64(table.stream_name().as_bytes()))
}

/// Schema of one table.
pub fn table_schema(table: TpcdsTable) -> Schema {
    use DataType::*;
    let cols: &[(&str, DataType)] = match table {
        TpcdsTable::StoreSales => &[
            ("ss_sold_date_sk", Int),
            ("ss_item_sk", Int),
            ("ss_customer_sk", Int),
            ("ss_store_sk", Int),
            ("ss_cdemo_sk", Int),
            ("ss_hdemo_sk", Int),
            ("ss_addr_sk", Int),
            ("ss_promo_sk", Int),
            ("ss_quantity", Int),
            ("ss_sales_price", Float),
            ("ss_ext_sales_price", Float),
            ("ss_net_profit", Float),
        ],
        TpcdsTable::StoreReturns => &[
            ("sr_returned_date_sk", Int),
            ("sr_item_sk", Int),
            ("sr_customer_sk", Int),
            ("sr_store_sk", Int),
            ("sr_reason_sk", Int),
            ("sr_return_quantity", Int),
            ("sr_return_amt", Float),
        ],
        TpcdsTable::CatalogSales => &[
            ("cs_sold_date_sk", Int),
            ("cs_item_sk", Int),
            ("cs_bill_customer_sk", Int),
            ("cs_call_center_sk", Int),
            ("cs_warehouse_sk", Int),
            ("cs_ship_mode_sk", Int),
            ("cs_promo_sk", Int),
            ("cs_quantity", Int),
            ("cs_sales_price", Float),
            ("cs_ext_sales_price", Float),
            ("cs_net_profit", Float),
        ],
        TpcdsTable::CatalogReturns => &[
            ("cr_returned_date_sk", Int),
            ("cr_item_sk", Int),
            ("cr_returning_customer_sk", Int),
            ("cr_call_center_sk", Int),
            ("cr_reason_sk", Int),
            ("cr_return_quantity", Int),
            ("cr_return_amount", Float),
        ],
        TpcdsTable::WebSales => &[
            ("ws_sold_date_sk", Int),
            ("ws_item_sk", Int),
            ("ws_bill_customer_sk", Int),
            ("ws_web_site_sk", Int),
            ("ws_web_page_sk", Int),
            ("ws_ship_mode_sk", Int),
            ("ws_promo_sk", Int),
            ("ws_quantity", Int),
            ("ws_sales_price", Float),
            ("ws_ext_sales_price", Float),
            ("ws_net_profit", Float),
        ],
        TpcdsTable::WebReturns => &[
            ("wr_returned_date_sk", Int),
            ("wr_item_sk", Int),
            ("wr_returning_customer_sk", Int),
            ("wr_web_page_sk", Int),
            ("wr_reason_sk", Int),
            ("wr_return_quantity", Int),
            ("wr_return_amt", Float),
        ],
        TpcdsTable::Inventory => &[
            ("inv_date_sk", Int),
            ("inv_item_sk", Int),
            ("inv_warehouse_sk", Int),
            ("inv_quantity_on_hand", Int),
        ],
        TpcdsTable::Store => &[
            ("s_store_sk", Int),
            ("s_store_name", Str),
            ("s_county", Str),
            ("s_state", Str),
        ],
        TpcdsTable::CallCenter => &[
            ("cc_call_center_sk", Int),
            ("cc_name", Str),
            ("cc_county", Str),
        ],
        TpcdsTable::CatalogPage => &[("cp_catalog_page_sk", Int), ("cp_catalog_page_number", Int)],
        TpcdsTable::WebSite => &[("web_site_sk", Int), ("web_name", Str)],
        TpcdsTable::WebPage => &[("wp_web_page_sk", Int), ("wp_char_count", Int)],
        TpcdsTable::Warehouse => &[
            ("w_warehouse_sk", Int),
            ("w_warehouse_name", Str),
            ("w_state", Str),
        ],
        TpcdsTable::Customer => &[
            ("c_customer_sk", Int),
            ("c_current_addr_sk", Int),
            ("c_current_cdemo_sk", Int),
            ("c_current_hdemo_sk", Int),
            ("c_birth_year", Int),
        ],
        TpcdsTable::CustomerAddress => &[
            ("ca_address_sk", Int),
            ("ca_city", Str),
            ("ca_state", Str),
            ("ca_country", Str),
            ("ca_gmt_offset", Int),
        ],
        TpcdsTable::CustomerDemographics => &[
            ("cd_demo_sk", Int),
            ("cd_gender", Str),
            ("cd_marital_status", Str),
            ("cd_education_status", Str),
        ],
        TpcdsTable::HouseholdDemographics => &[
            ("hd_demo_sk", Int),
            ("hd_income_band_sk", Int),
            ("hd_dep_count", Int),
            ("hd_buy_potential", Str),
        ],
        TpcdsTable::Item => &[
            ("i_item_sk", Int),
            ("i_brand_id", Int),
            ("i_class", Str),
            ("i_category", Str),
            ("i_manufact_id", Int),
            ("i_current_price", Float),
        ],
        TpcdsTable::IncomeBand => &[
            ("ib_income_band_sk", Int),
            ("ib_lower_bound", Int),
            ("ib_upper_bound", Int),
        ],
        TpcdsTable::Promotion => &[
            ("p_promo_sk", Int),
            ("p_channel_email", Str),
            ("p_channel_event", Str),
        ],
        TpcdsTable::Reason => &[("r_reason_sk", Int), ("r_reason_desc", Str)],
        TpcdsTable::ShipMode => &[("sm_ship_mode_sk", Int), ("sm_type", Str)],
        TpcdsTable::TimeDim => &[("t_time_sk", Int), ("t_hour", Int), ("t_minute", Int)],
        TpcdsTable::DateDim => &[
            ("d_date_sk", Int),
            ("d_year", Int),
            ("d_moy", Int),
            ("d_dom", Int),
            ("d_qoy", Int),
            ("d_day_name", Str),
        ],
    };
    Schema::from_pairs(cols)
}

const CATEGORIES: [&str; 6] = ["Books", "Electronics", "Home", "Jewelry", "Music", "Sports"];
const CLASSES: [&str; 5] = ["accent", "classic", "estate", "pop", "field"];
const STATES: [&str; 8] = ["CA", "GA", "IL", "NY", "OH", "TX", "WA", "TN"];
const GENDERS: [&str; 2] = ["M", "F"];
const MARITAL: [&str; 5] = ["S", "M", "D", "W", "U"];
const EDUCATION: [&str; 4] = ["Primary", "College", "2 yr Degree", "Advanced Degree"];
const BUY_POTENTIAL: [&str; 4] = [">10000", "5001-10000", "1001-5000", "0-500"];
const DAY_NAMES: [&str; 7] = [
    "Sunday",
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
];

/// Generates one table deterministically at the given scale.
pub fn generate_table(table: TpcdsTable, scale: f64, seed: u64) -> Table {
    let rows = table.scaled_rows(scale);
    let mut rng = rng_for(seed, table.stream_name());
    let n_item = TpcdsTable::Item.base_rows() as i64;
    let n_cust = TpcdsTable::Customer.base_rows() as i64;
    let n_date = TpcdsTable::DateDim.base_rows() as i64;
    let n_store = TpcdsTable::Store.base_rows() as i64;
    let n_cdemo = TpcdsTable::CustomerDemographics.base_rows() as i64;
    let n_hdemo = TpcdsTable::HouseholdDemographics.base_rows() as i64;
    let n_addr = TpcdsTable::CustomerAddress.base_rows() as i64;
    let n_promo = TpcdsTable::Promotion.base_rows() as i64;
    let n_wh = TpcdsTable::Warehouse.base_rows() as i64;
    let n_cc = TpcdsTable::CallCenter.base_rows() as i64;
    let n_site = TpcdsTable::WebSite.base_rows() as i64;
    let n_page = TpcdsTable::WebPage.base_rows() as i64;
    let n_ship = TpcdsTable::ShipMode.base_rows() as i64;
    let n_reason = TpcdsTable::Reason.base_rows() as i64;

    let mut data: Vec<Vec<Value>> = Vec::with_capacity(rows as usize);
    for i in 0..rows as i64 {
        let row: Vec<Value> = match table {
            TpcdsTable::StoreSales => {
                let qty = rng.gen_range(1..100);
                let price = rng.gen_range(1.0_f64..100.0);
                vec![
                    Value::Int(rng.gen_range(0..n_date)),
                    Value::Int(rng.gen_range(0..n_item)),
                    Value::Int(rng.gen_range(0..n_cust)),
                    Value::Int(rng.gen_range(0..n_store)),
                    Value::Int(rng.gen_range(0..n_cdemo)),
                    Value::Int(rng.gen_range(0..n_hdemo)),
                    Value::Int(rng.gen_range(0..n_addr)),
                    Value::Int(rng.gen_range(0..n_promo)),
                    Value::Int(qty),
                    Value::Float(price),
                    Value::Float(price * qty as f64),
                    Value::Float(rng.gen_range(-20.0_f64..80.0)),
                ]
            }
            TpcdsTable::StoreReturns => vec![
                Value::Int(rng.gen_range(0..n_date)),
                Value::Int(rng.gen_range(0..n_item)),
                Value::Int(rng.gen_range(0..n_cust)),
                Value::Int(rng.gen_range(0..n_store)),
                Value::Int(rng.gen_range(0..n_reason)),
                Value::Int(rng.gen_range(1..20)),
                Value::Float(rng.gen_range(1.0_f64..500.0)),
            ],
            TpcdsTable::CatalogSales => {
                let qty = rng.gen_range(1..100);
                let price = rng.gen_range(1.0_f64..100.0);
                vec![
                    Value::Int(rng.gen_range(0..n_date)),
                    Value::Int(rng.gen_range(0..n_item)),
                    Value::Int(rng.gen_range(0..n_cust)),
                    Value::Int(rng.gen_range(0..n_cc)),
                    Value::Int(rng.gen_range(0..n_wh)),
                    Value::Int(rng.gen_range(0..n_ship)),
                    Value::Int(rng.gen_range(0..n_promo)),
                    Value::Int(qty),
                    Value::Float(price),
                    Value::Float(price * qty as f64),
                    Value::Float(rng.gen_range(-20.0_f64..80.0)),
                ]
            }
            TpcdsTable::CatalogReturns => vec![
                Value::Int(rng.gen_range(0..n_date)),
                Value::Int(rng.gen_range(0..n_item)),
                Value::Int(rng.gen_range(0..n_cust)),
                Value::Int(rng.gen_range(0..n_cc)),
                Value::Int(rng.gen_range(0..n_reason)),
                Value::Int(rng.gen_range(1..20)),
                Value::Float(rng.gen_range(1.0_f64..500.0)),
            ],
            TpcdsTable::WebSales => {
                let qty = rng.gen_range(1..100);
                let price = rng.gen_range(1.0_f64..100.0);
                vec![
                    Value::Int(rng.gen_range(0..n_date)),
                    Value::Int(rng.gen_range(0..n_item)),
                    Value::Int(rng.gen_range(0..n_cust)),
                    Value::Int(rng.gen_range(0..n_site)),
                    Value::Int(rng.gen_range(0..n_page)),
                    Value::Int(rng.gen_range(0..n_ship)),
                    Value::Int(rng.gen_range(0..n_promo)),
                    Value::Int(qty),
                    Value::Float(price),
                    Value::Float(price * qty as f64),
                    Value::Float(rng.gen_range(-20.0_f64..80.0)),
                ]
            }
            TpcdsTable::WebReturns => vec![
                Value::Int(rng.gen_range(0..n_date)),
                Value::Int(rng.gen_range(0..n_item)),
                Value::Int(rng.gen_range(0..n_cust)),
                Value::Int(rng.gen_range(0..n_page)),
                Value::Int(rng.gen_range(0..n_reason)),
                Value::Int(rng.gen_range(1..20)),
                Value::Float(rng.gen_range(1.0_f64..500.0)),
            ],
            TpcdsTable::Inventory => vec![
                Value::Int(rng.gen_range(0..n_date)),
                Value::Int(rng.gen_range(0..n_item)),
                Value::Int(rng.gen_range(0..n_wh)),
                Value::Int(rng.gen_range(0..1000)),
            ],
            TpcdsTable::Store => vec![
                Value::Int(i),
                Value::Str(format!("store_{i}")),
                Value::Str(format!("county_{}", i % 5)),
                Value::Str(STATES[i as usize % STATES.len()].into()),
            ],
            TpcdsTable::CallCenter => vec![
                Value::Int(i),
                Value::Str(format!("cc_{i}")),
                Value::Str(format!("county_{}", i % 3)),
            ],
            TpcdsTable::CatalogPage => vec![Value::Int(i), Value::Int(i % 12)],
            TpcdsTable::WebSite => vec![Value::Int(i), Value::Str(format!("site_{i}"))],
            TpcdsTable::WebPage => vec![Value::Int(i), Value::Int(rng.gen_range(100..8000))],
            TpcdsTable::Warehouse => vec![
                Value::Int(i),
                Value::Str(format!("wh_{i}")),
                Value::Str(STATES[i as usize % STATES.len()].into()),
            ],
            TpcdsTable::Customer => vec![
                Value::Int(i),
                Value::Int(rng.gen_range(0..n_addr)),
                Value::Int(rng.gen_range(0..n_cdemo)),
                Value::Int(rng.gen_range(0..n_hdemo)),
                Value::Int(rng.gen_range(1930..1995)),
            ],
            TpcdsTable::CustomerAddress => vec![
                Value::Int(i),
                Value::Str(format!("city_{}", i % 40)),
                Value::Str(STATES[i as usize % STATES.len()].into()),
                Value::Str("United States".into()),
                Value::Int(-(rng.gen_range(5..9))),
            ],
            TpcdsTable::CustomerDemographics => vec![
                Value::Int(i),
                Value::Str(GENDERS[i as usize % 2].into()),
                Value::Str(MARITAL[i as usize % MARITAL.len()].into()),
                Value::Str(EDUCATION[i as usize % EDUCATION.len()].into()),
            ],
            TpcdsTable::HouseholdDemographics => vec![
                Value::Int(i),
                Value::Int(i % TpcdsTable::IncomeBand.base_rows() as i64),
                Value::Int(i % 10),
                Value::Str(BUY_POTENTIAL[i as usize % BUY_POTENTIAL.len()].into()),
            ],
            TpcdsTable::Item => vec![
                Value::Int(i),
                Value::Int(1_000_000 + (i % 50) * 1000),
                Value::Str(CLASSES[i as usize % CLASSES.len()].into()),
                Value::Str(CATEGORIES[i as usize % CATEGORIES.len()].into()),
                Value::Int(i % 100),
                Value::Float(rng.gen_range(0.5_f64..300.0)),
            ],
            TpcdsTable::IncomeBand => vec![
                Value::Int(i),
                Value::Int(i * 10_000),
                Value::Int((i + 1) * 10_000),
            ],
            TpcdsTable::Promotion => vec![
                Value::Int(i),
                Value::Str(if i % 2 == 0 { "Y" } else { "N" }.into()),
                Value::Str(if i % 3 == 0 { "Y" } else { "N" }.into()),
            ],
            TpcdsTable::Reason => vec![Value::Int(i), Value::Str(format!("reason_{i}"))],
            TpcdsTable::ShipMode => vec![
                Value::Int(i),
                Value::Str(["EXPRESS", "OVERNIGHT", "REGULAR", "LIBRARY"][i as usize % 4].into()),
            ],
            TpcdsTable::TimeDim => {
                vec![Value::Int(i), Value::Int(i / 12), Value::Int((i % 12) * 5)]
            }
            TpcdsTable::DateDim => {
                // 1461 days starting 1998-01-01; simplified calendar.
                let year = 1998 + i / 365;
                let doy = i % 365;
                vec![
                    Value::Int(i),
                    Value::Int(year),
                    Value::Int(doy / 31 + 1),
                    Value::Int(doy % 31 + 1),
                    Value::Int(doy / 92 + 1),
                    Value::Str(DAY_NAMES[i as usize % 7].into()),
                ]
            }
        };
        data.push(row);
    }
    Table::single(table_schema(table), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_have_unique_prefixed_names() {
        for t in ALL_TABLES {
            let s = table_schema(t);
            assert!(s.len() >= 2, "{t:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_table(TpcdsTable::StoreSales, 0.01, 7);
        let b = generate_table(TpcdsTable::StoreSales, 0.01, 7);
        assert_eq!(
            scope_engine::data::multiset_checksum(&a),
            scope_engine::data::multiset_checksum(&b)
        );
        let c = generate_table(TpcdsTable::StoreSales, 0.01, 8);
        assert_ne!(
            scope_engine::data::multiset_checksum(&a),
            scope_engine::data::multiset_checksum(&c)
        );
    }

    #[test]
    fn foreign_keys_in_range() {
        let ss = generate_table(TpcdsTable::StoreSales, 0.02, 1);
        let n_date = TpcdsTable::DateDim.base_rows() as i64;
        let n_item = TpcdsTable::Item.base_rows() as i64;
        for row in ss.iter_rows() {
            let d = row[0].as_i64().unwrap();
            let it = row[1].as_i64().unwrap();
            assert!((0..n_date).contains(&d));
            assert!((0..n_item).contains(&it));
        }
    }

    #[test]
    fn date_dim_years_span_1998_2001() {
        let dd = generate_table(TpcdsTable::DateDim, 1.0, 1);
        let years: std::collections::HashSet<i64> =
            dd.iter_rows().map(|r| r[1].as_i64().unwrap()).collect();
        assert!(years.contains(&1998) && years.contains(&2001));
        let moys: std::collections::HashSet<i64> =
            dd.iter_rows().map(|r| r[2].as_i64().unwrap()).collect();
        assert!(moys.iter().all(|m| (1..=12).contains(m)));
    }

    #[test]
    fn dims_do_not_scale_down() {
        let item_small = generate_table(TpcdsTable::Item, 0.001, 1);
        assert_eq!(item_small.num_rows() as u64, TpcdsTable::Item.base_rows());
    }

    #[test]
    fn dataset_ids_distinct() {
        let mut ids: Vec<_> = ALL_TABLES.iter().map(|t| dataset_id(*t)).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), ALL_TABLES.len());
    }

    #[test]
    fn rows_match_schema_width() {
        for t in ALL_TABLES {
            let table = generate_table(t, 0.01, 1);
            let w = table.schema.len();
            for row in table.iter_rows().take(5) {
                assert_eq!(row.len(), w, "{t:?}");
            }
        }
    }
}
