//! Workload generation for the CloudViews reproduction.
//!
//! Two families of workloads drive the paper's evaluation:
//!
//! * [`recurring`] — SCOPE-style recurring enterprise workloads: clusters of
//!   virtual clusters, users who clone and extend each other's scripts, and
//!   producer/consumer data pipelines. The generator is *calibrated* to the
//!   published distributions of the paper's Section 2 (overlap fractions per
//!   cluster/VC, heavy-tailed overlap frequencies, runtime/size skew) but
//!   creates overlap through the same *mechanisms* the paper names —
//!   fragment cloning and shared post-processing — so the analyzer has to
//!   genuinely detect the overlap via signatures; nothing is labeled.
//! * [`tpcds`] — the TPC-DS benchmark of Section 7.2: the full 24-table
//!   schema, deterministic scaled data generation with valid foreign keys,
//!   and all 99 queries translated to plan builders. The translation
//!   preserves which queries share which scan/join/aggregate subexpressions
//!   — the property Figure 13 measures.
//!
//! [`dists`] holds the deterministic samplers (Zipf, log-normal) both use.

pub mod dists;
pub mod recurring;
pub mod tpcds;

pub use recurring::{BusinessUnitSpec, ClusterSpec, RecurringWorkload, WorkloadConfig};
pub use tpcds::{TpcdsQuery, TpcdsWorkload};
