//! Deterministic samplers used by the workload generators.
//!
//! Everything is seeded; the same seed always produces the same workload,
//! tables, and therefore the same signatures — a requirement for the
//! regression tests and for reproducing the figures.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_common::hash::sip64;

/// A seeded RNG derived from a textual scope, so independent generator
/// components get independent, reproducible streams.
pub fn rng_for(seed: u64, scope: &str) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ sip64(scope.as_bytes()))
}

/// Zipf sampler over `{0, 1, ..., n-1}` with exponent `s`.
///
/// Rank 0 is the most popular element. Used to make a few plan fragments
/// wildly shared (the paper's overlap-frequency skew: median 2 but p99 36
/// and maxima in the thousands).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler; `n` must be ≥ 1 and `s` ≥ 0.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf over empty support");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Zipf { cdf: weights }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Log-normal-ish sampler for dataset sizes and runtimes: exp(N(mu, sigma)),
/// clamped to `[lo, hi]`. Implemented with a Box–Muller transform so we do
/// not need the `rand_distr` crate.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Std-dev of the underlying normal.
    pub sigma: f64,
    /// Lower clamp.
    pub lo: f64,
    /// Upper clamp.
    pub hi: f64,
}

impl LogNormal {
    /// Builds a sampler.
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64) -> LogNormal {
        assert!(lo <= hi && sigma >= 0.0);
        LogNormal { mu, sigma, lo, hi }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SmallRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp().clamp(self.lo, self.hi)
    }
}

/// Bernoulli draw.
pub fn coin(rng: &mut SmallRng, p: f64) -> bool {
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_scoped() {
        let a: u64 = rng_for(7, "x").gen();
        let b: u64 = rng_for(7, "x").gen();
        let c: u64 = rng_for(7, "y").gen();
        let d: u64 = rng_for(8, "x").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 1.2);
        let mut rng = rng_for(1, "zipf");
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < 100);
            counts[k] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 0 should dominate noticeably under s=1.2.
        assert!(counts[0] as f64 / 20_000.0 > 0.15);
    }

    #[test]
    fn zipf_degenerate_single_element() {
        let z = Zipf::new(1, 1.0);
        let mut rng = rng_for(1, "z1");
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rng_for(2, "z0");
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 50_000.0;
            assert!((frac - 0.1).abs() < 0.02, "{frac}");
        }
    }

    #[test]
    fn lognormal_respects_clamps() {
        let d = LogNormal::new(5.0, 2.0, 10.0, 1000.0);
        let mut rng = rng_for(3, "ln");
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=1000.0).contains(&x));
        }
    }

    #[test]
    fn lognormal_is_right_skewed() {
        let d = LogNormal::new(3.0, 1.0, 0.0, f64::INFINITY);
        let mut rng = rng_for(4, "skew");
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            mean > median,
            "log-normal mean {mean} must exceed median {median}"
        );
    }

    #[test]
    fn coin_probability() {
        let mut rng = rng_for(5, "coin");
        let heads = (0..10_000).filter(|_| coin(&mut rng, 0.3)).count();
        assert!((heads as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }
}
