//! Generational WAL directory: `wal.N` log files paired with `snap.N`
//! snapshots (see [`crate::snapshot`]).
//!
//! Invariant: `snap.N` is the state after fully applying `wal.1..=N`.
//! Recovery therefore loads the newest valid snapshot (generation `S`)
//! and replays `wal.(S+1)..` in ascending order. If any replayed
//! generation ends in a torn tail, replay stops at that clean boundary
//! and *skips all later generations* — a consistent prefix beats a state
//! with a hole in its history.
//!
//! Snapshotting is split into two halves so the caller never exports
//! state while holding the log lock (services append to the WAL while
//! holding their own shard locks, so holding the log lock across a state
//! export would invert that order and deadlock):
//!
//! 1. [`LogDir::rotate`] — under the log lock: seal the current `wal.N`,
//!    open a fresh `wal.N+1`, return `N`.
//! 2. caller exports its in-memory state with no log lock held; events
//!    appended meanwhile land in `wal.N+1` and may *also* be reflected in
//!    the export — safe because all logged events are idempotent at their
//!    pinned times, so at-least-once replay converges.
//! 3. [`LogDir::seal_snapshot`] — under the log lock again: write
//!    `snap.N` atomically, prune `wal.<=N` and older snapshots.

use std::path::{Path, PathBuf};

use crate::snapshot::{latest_snapshot, numbered_files, write_snapshot};
use crate::wal::Wal;
use crate::Result;

/// What [`LogDir::open`] recovered from disk.
pub struct Recovered {
    /// Payload of the newest valid snapshot, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Generation of that snapshot (0 when none).
    pub snapshot_gen: u64,
    /// WAL record payloads from every generation after the snapshot, in
    /// append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes dropped from the first torn generation (later generations,
    /// if any, are skipped entirely and not counted here).
    pub dropped_bytes: u64,
    /// Number of replayed tail records (equals `records.len()`).
    pub tail_records: usize,
}

/// A directory of generational WAL files and snapshots.
pub struct LogDir {
    dir: PathBuf,
    gen: u64,
    wal: Wal,
    tail_bytes: u64,
}

impl LogDir {
    fn wal_path(dir: &Path, gen: u64) -> PathBuf {
        dir.join(format!("wal.{gen}"))
    }

    /// Opens `dir` (creating it if needed), recovering snapshot + tail.
    pub fn open(dir: &Path) -> Result<(LogDir, Recovered)> {
        std::fs::create_dir_all(dir)?;
        let (snapshot_gen, snapshot) = match latest_snapshot(dir)? {
            Some((gen, payload)) => (gen, Some(payload)),
            None => (0, None),
        };
        let wals = numbered_files(dir, "wal")?;
        let mut records = Vec::new();
        let mut dropped_bytes = 0u64;
        let mut tail_bytes = 0u64;
        let mut top_gen = snapshot_gen;
        for (gen, path) in &wals {
            if *gen <= snapshot_gen {
                continue; // already folded into the snapshot
            }
            if dropped_bytes > 0 {
                // A torn earlier generation: later generations would leave
                // a hole in history, so they are not replayed.
                break;
            }
            let (_, recs, report) = Wal::open(path)?;
            records.extend(recs);
            tail_bytes += report.clean_len;
            dropped_bytes += report.dropped_bytes;
            top_gen = *gen;
        }
        // Append into the highest replayed generation (already truncated to
        // its clean boundary by `Wal::open`), or start a fresh one.
        let gen = if top_gen > snapshot_gen {
            top_gen
        } else {
            snapshot_gen + 1
        };
        let (wal, _, _) = Wal::open(&Self::wal_path(dir, gen))?;
        let tail_records = records.len();
        Ok((
            LogDir {
                dir: dir.to_path_buf(),
                gen,
                wal,
                tail_bytes,
            },
            Recovered {
                snapshot,
                snapshot_gen,
                records,
                dropped_bytes,
                tail_records,
            },
        ))
    }

    /// Appends one record to the current generation.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        self.wal.append(payload)?;
        self.tail_bytes += (crate::wal::RECORD_HEADER + payload.len()) as u64;
        Ok(())
    }

    /// Bytes of log records not yet folded into a snapshot (across all
    /// generations since the last snapshot). The compaction trigger.
    pub fn tail_bytes(&self) -> u64 {
        self.tail_bytes
    }

    /// Current generation number (the file appends go to).
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// Seals the current generation and opens the next one; returns the
    /// sealed generation number to pass to [`LogDir::seal_snapshot`] after
    /// the caller has exported its state *without holding the log lock*.
    pub fn rotate(&mut self) -> Result<u64> {
        self.wal.sync()?;
        let sealed = self.gen;
        self.gen += 1;
        let (wal, _, _) = Wal::open(&Self::wal_path(&self.dir, self.gen))?;
        self.wal = wal;
        Ok(sealed)
    }

    /// Writes `payload` as the snapshot for `sealed_gen` and prunes every
    /// log generation and snapshot it supersedes.
    pub fn seal_snapshot(&mut self, sealed_gen: u64, payload: &[u8]) -> Result<()> {
        write_snapshot(&self.dir, sealed_gen, payload)?;
        for (gen, path) in numbered_files(&self.dir, "wal")? {
            if gen <= sealed_gen {
                let _ = std::fs::remove_file(path);
            }
        }
        for (gen, path) in numbered_files(&self.dir, "snap")? {
            if gen < sealed_gen {
                let _ = std::fs::remove_file(path);
            }
        }
        // Only the live generation's bytes remain unsnapshotted.
        self.tail_bytes = self.wal.len_bytes();
        Ok(())
    }

    /// Forces buffered appends to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// True when `dir` holds any snapshot or WAL generation (i.e. a previous
/// process left durable state to recover).
pub fn has_state(dir: &Path) -> bool {
    numbered_files(dir, "snap")
        .map(|v| !v.is_empty())
        .unwrap_or(false)
        || numbered_files(dir, "wal")
            .map(|v| !v.is_empty())
            .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scope-store-log-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_dir_starts_at_gen_one() {
        let dir = tmp("fresh");
        let (log, rec) = LogDir::open(&dir).unwrap();
        assert_eq!(log.gen(), 1);
        assert!(rec.snapshot.is_none());
        assert!(rec.records.is_empty());
        assert_eq!(rec.dropped_bytes, 0);
    }

    #[test]
    fn records_survive_reopen() {
        let dir = tmp("reopen");
        let (mut log, _) = LogDir::open(&dir).unwrap();
        log.append(b"a").unwrap();
        log.append(b"b").unwrap();
        drop(log);
        let (log, rec) = LogDir::open(&dir).unwrap();
        assert_eq!(rec.records, vec![b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(log.gen(), 1);
        assert!(log.tail_bytes() > 0);
    }

    #[test]
    fn snapshot_compacts_and_tail_replays_after_it() {
        let dir = tmp("compact");
        let (mut log, _) = LogDir::open(&dir).unwrap();
        log.append(b"pre-1").unwrap();
        log.append(b"pre-2").unwrap();
        let sealed = log.rotate().unwrap();
        // (caller exports state here, lock-free)
        log.append(b"post").unwrap();
        log.seal_snapshot(sealed, b"STATE").unwrap();
        assert_eq!(log.gen(), 2);
        drop(log);
        let (log, rec) = LogDir::open(&dir).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(b"STATE".as_slice()));
        assert_eq!(rec.snapshot_gen, 1);
        assert_eq!(rec.records, vec![b"post".to_vec()]);
        assert_eq!(log.gen(), 2);
        // wal.1 was pruned.
        assert!(!LogDir::wal_path(&dir, 1).exists());
    }

    #[test]
    fn torn_generation_skips_later_generations() {
        let dir = tmp("torn-gen");
        let (mut log, _) = LogDir::open(&dir).unwrap();
        log.append(b"one").unwrap();
        log.rotate().unwrap(); // seals wal.1, opens wal.2; no snapshot sealed
        log.append(b"two").unwrap();
        drop(log);
        // Tear the tail of wal.1: wal.2 must then be skipped entirely.
        let p1 = LogDir::wal_path(&dir, 1);
        let bytes = std::fs::read(&p1).unwrap();
        std::fs::write(&p1, &bytes[..bytes.len() - 1]).unwrap();
        let (_, rec) = LogDir::open(&dir).unwrap();
        assert!(rec.records.is_empty());
        assert!(rec.dropped_bytes > 0);
    }

    #[test]
    fn tail_bytes_reset_by_snapshot() {
        let dir = tmp("tailbytes");
        let (mut log, _) = LogDir::open(&dir).unwrap();
        log.append(&[0u8; 100]).unwrap();
        let before = log.tail_bytes();
        assert!(before >= 100);
        let sealed = log.rotate().unwrap();
        log.seal_snapshot(sealed, b"s").unwrap();
        assert_eq!(log.tail_bytes(), 0);
    }

    #[test]
    fn has_state_detects_prior_runs() {
        let dir = tmp("hasstate");
        assert!(!has_state(&dir));
        let (mut log, _) = LogDir::open(&dir).unwrap();
        log.append(b"x").unwrap();
        drop(log);
        assert!(has_state(&dir));
    }
}
