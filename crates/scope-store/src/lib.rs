//! Durable state for the CloudViews services (DESIGN.md §16).
//!
//! Three layers, bottom to top:
//!
//! * [`wal`] — an append-only write-ahead log of length-prefixed,
//!   checksummed records (`[u32 len][u64 sip64][payload]`, all
//!   little-endian). Torn or truncated tail records are detected by
//!   checksum and dropped at a clean record boundary, never panicking.
//! * [`snapshot`] — atomically-written (`tmp` + fsync + rename),
//!   checksummed, generation-numbered state snapshots, plus [`log::LogDir`]
//!   which pairs generational WAL files with snapshots: `snap.N` is the
//!   state after fully applying `wal.1..=N`, so recovery is "load the
//!   newest valid snapshot, replay every later log generation".
//! * [`segment`] — a log-structured key-value store (MemTable → WAL →
//!   sorted, bloom-filtered segment files) for bulk append-mostly data:
//!   the workload repository's job records and published view files.
//!
//! The crate is deliberately value-agnostic: everything stored is `&[u8]`
//! payloads produced by the hand-rolled codec in `scope_common::codec` /
//! `cloudviews::codec`. No serde, no external dependencies.

pub mod log;
pub mod segment;
pub mod snapshot;
pub mod wal;

use std::fmt;

/// Everything that can go wrong below the codec layer.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// A file failed structural validation (bad magic, checksum mismatch).
    /// Torn WAL *tails* are not errors — they are truncated silently and
    /// reported via [`wal::TailReport`]; `Corrupt` is reserved for files
    /// that are written atomically and therefore should never be torn.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store file: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
