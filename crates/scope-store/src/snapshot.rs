//! Atomically-written, checksummed, generation-numbered snapshots.
//!
//! File format: `b"SNP1"` magic, `u64` sip64 checksum of the payload
//! (little-endian), payload bytes. A snapshot is written to
//! `snap.<gen>.tmp`, fsynced, then renamed over `snap.<gen>` — so a
//! crash mid-write leaves at worst an ignorable `.tmp` file, never a
//! half-visible snapshot. [`latest_snapshot`] skips any snapshot that
//! fails validation and falls back to the next older generation, keeping
//! recovery total even if a rename raced a power cut.

use std::path::{Path, PathBuf};

use scope_common::hash::sip64;

use crate::{Result, StoreError};

const MAGIC: &[u8; 4] = b"SNP1";

/// Path of generation `gen`'s snapshot inside `dir`.
pub fn snapshot_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snap.{gen}"))
}

/// Writes `payload` as generation `gen`'s snapshot, atomically.
pub fn write_snapshot(dir: &Path, gen: u64, payload: &[u8]) -> Result<()> {
    let final_path = snapshot_path(dir, gen);
    let tmp_path = dir.join(format!("snap.{gen}.tmp"));
    let mut bytes = Vec::with_capacity(12 + payload.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&sip64(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    Ok(())
}

/// Reads and validates one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 12 || &bytes[..4] != MAGIC {
        return Err(StoreError::Corrupt(format!(
            "{}: bad snapshot header",
            path.display()
        )));
    }
    let checksum = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
    let payload = &bytes[12..];
    if sip64(payload) != checksum {
        return Err(StoreError::Corrupt(format!(
            "{}: snapshot checksum mismatch",
            path.display()
        )));
    }
    Ok(payload.to_vec())
}

/// Numbered files named `<prefix>.<N>` in `dir` (no other suffix), sorted
/// ascending by `N`. Shared by snapshot and WAL generation discovery.
pub fn numbered_files(dir: &Path, prefix: &str) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(num) = name.strip_prefix(prefix).and_then(|s| s.strip_prefix('.')) else {
            continue;
        };
        if let Ok(gen) = num.parse::<u64>() {
            out.push((gen, entry.path()));
        }
    }
    out.sort_by_key(|(gen, _)| *gen);
    Ok(out)
}

/// Loads the newest snapshot in `dir` that validates, if any. A corrupt
/// newest snapshot falls back to the next older one instead of failing.
pub fn latest_snapshot(dir: &Path) -> Result<Option<(u64, Vec<u8>)>> {
    let mut snaps = numbered_files(dir, "snap")?;
    while let Some((gen, path)) = snaps.pop() {
        match read_snapshot(&path) {
            Ok(payload) => return Ok(Some((gen, payload))),
            Err(StoreError::Corrupt(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scope-store-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_latest_round_trips() {
        let dir = tmp("rt");
        write_snapshot(&dir, 1, b"one").unwrap();
        write_snapshot(&dir, 2, b"two").unwrap();
        let (gen, payload) = latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!((gen, payload.as_slice()), (2, b"two".as_slice()));
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmp("fallback");
        write_snapshot(&dir, 3, b"good").unwrap();
        write_snapshot(&dir, 4, b"bad").unwrap();
        // Damage generation 4's payload in place.
        let p = snapshot_path(&dir, 4);
        let mut bytes = std::fs::read(&p).unwrap();
        let idx = bytes.len() - 1;
        bytes[idx] ^= 1;
        std::fs::write(&p, &bytes).unwrap();
        let (gen, payload) = latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!((gen, payload.as_slice()), (3, b"good".as_slice()));
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = tmp("empty");
        assert!(latest_snapshot(&dir).unwrap().is_none());
        // Leftover tmp files from a crashed writer are invisible.
        std::fs::write(dir.join("snap.9.tmp"), b"partial").unwrap();
        assert!(latest_snapshot(&dir).unwrap().is_none());
    }
}
