//! Log-structured key-value store: MemTable → WAL → sorted segment files,
//! per the classic LSM layering.
//!
//! Writes go to an in-memory `BTreeMap` (the MemTable) *after* being
//! appended to `kv.wal`; when the MemTable exceeds its flush threshold it
//! is written out as an immutable, sorted, bloom-filtered segment file
//! `seg.N` (atomically: tmp + checksum + rename) and the WAL is reset.
//! Deletes are tombstones so a delete in a newer layer shadows a put in
//! an older one. Reads check the MemTable, then segments newest-first,
//! each gated by its bloom filter.
//!
//! Segment file format (little-endian, `b"SEG1"` magic, `u64` sip64
//! checksum of everything after it):
//!
//! | field        | encoding                                        |
//! |--------------|-------------------------------------------------|
//! | bloom        | `u32` k, `u64` nbits, `u32` words, `u64` × words|
//! | entry count  | `u32`                                           |
//! | entries      | `u32` klen, key, `u8` tombstone, `u32` vlen, val|
//!
//! Entries are sorted by key. Decoded segments are kept resident (this
//! simulation's stand-in for the page cache), so `get` is a bloom check
//! plus a binary search — the on-disk format still matters because it is
//! what recovery reads and what the checksum guards.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use scope_common::hash::{sip128, sip64};

use crate::snapshot::numbered_files;
use crate::wal::Wal;
use crate::{Result, StoreError};

const MAGIC: &[u8; 4] = b"SEG1";
const BITS_PER_KEY: u64 = 10;
const NUM_HASHES: u32 = 6;

/// A blocked bloom filter with double hashing: `bit_i = h1 + i*h2`.
#[derive(Clone, Debug)]
pub struct Bloom {
    bits: Vec<u64>,
    nbits: u64,
    k: u32,
}

impl Bloom {
    /// Sizes the filter at ~10 bits per expected key, 6 probes.
    pub fn with_capacity(keys: usize) -> Bloom {
        let nbits = (keys as u64 * BITS_PER_KEY).max(64);
        let words = nbits.div_ceil(64) as usize;
        Bloom {
            bits: vec![0u64; words],
            nbits: words as u64 * 64,
            k: NUM_HASHES,
        }
    }

    fn probes(&self, key: &[u8]) -> (u64, u64) {
        let h1 = sip64(key);
        // An odd second hash guarantees it is coprime with the power-of-two
        // word span, so the k probes never collapse onto one bit.
        let h2 = sip128(key).lo | 1;
        (h1, h2)
    }

    /// Marks `key` present.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = self.probes(key);
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// False means definitely absent; true means probably present.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = self.probes(key);
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.nbits.to_le_bytes());
        out.extend_from_slice(&(self.bits.len() as u32).to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Bloom> {
        let k = r.u32()?;
        let nbits = r.u64()?;
        let words = r.u32()? as usize;
        if k == 0 || k > 64 || nbits != words as u64 * 64 || words > (1 << 26) {
            return Err(StoreError::Corrupt("bad bloom header".into()));
        }
        let mut bits = Vec::with_capacity(words);
        for _ in 0..words {
            bits.push(r.u64()?);
        }
        Ok(Bloom { bits, nbits, k })
    }
}

/// Minimal bounds-checked reader for segment decoding (the generic codec
/// lives in `scope_common`; this stays dependency-light on purpose).
struct SliceReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(StoreError::Corrupt("segment truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// One immutable, sorted, bloom-filtered on-disk segment, held resident.
pub struct Segment {
    bloom: Bloom,
    /// Sorted by key; `None` value is a tombstone.
    entries: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

impl Segment {
    /// Builds and atomically writes a segment from sorted entries.
    fn write(path: &Path, entries: Vec<(Vec<u8>, Option<Vec<u8>>)>) -> Result<Segment> {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let mut bloom = Bloom::with_capacity(entries.len());
        for (k, _) in &entries {
            bloom.insert(k);
        }
        let mut payload = Vec::new();
        bloom.encode(&mut payload);
        payload.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (k, v) in &entries {
            payload.extend_from_slice(&(k.len() as u32).to_le_bytes());
            payload.extend_from_slice(k);
            match v {
                Some(v) => {
                    payload.push(0);
                    payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    payload.extend_from_slice(v);
                }
                None => {
                    payload.push(1);
                    payload.extend_from_slice(&0u32.to_le_bytes());
                }
            }
        }
        let mut bytes = Vec::with_capacity(12 + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&sip64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(Segment { bloom, entries })
    }

    /// Reads and validates a segment file.
    fn read(path: &Path) -> Result<Segment> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < 12 || &bytes[..4] != MAGIC {
            return Err(StoreError::Corrupt(format!(
                "{}: bad segment header",
                path.display()
            )));
        }
        let checksum = u64::from_le_bytes(bytes[4..12].try_into().expect("8"));
        let payload = &bytes[12..];
        if sip64(payload) != checksum {
            return Err(StoreError::Corrupt(format!(
                "{}: segment checksum mismatch",
                path.display()
            )));
        }
        let mut r = SliceReader {
            buf: payload,
            pos: 0,
        };
        let bloom = Bloom::decode(&mut r)?;
        let count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let klen = r.u32()? as usize;
            let key = r.take(klen)?.to_vec();
            let tomb = r.u8()? != 0;
            let vlen = r.u32()? as usize;
            let val = r.take(vlen)?.to_vec();
            entries.push((key, if tomb { None } else { Some(val) }));
        }
        Ok(Segment { bloom, entries })
    }

    /// Point lookup: `None` = key absent here, `Some(None)` = tombstoned.
    fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        if !self.bloom.may_contain(key) {
            return None;
        }
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| self.entries[i].1.as_deref())
    }
}

/// The store: MemTable over a WAL over sorted segment files.
pub struct SegmentStore {
    dir: PathBuf,
    /// MemTable; `None` value is a tombstone awaiting flush.
    mem: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    mem_bytes: u64,
    wal: Wal,
    /// Resident segments, ascending by number (oldest first).
    segments: Vec<(u64, Segment)>,
    next_seg: u64,
    flush_threshold: u64,
}

impl SegmentStore {
    /// Opens `dir`, loading every valid segment and replaying `kv.wal`
    /// into the MemTable. `flush_threshold` bounds MemTable bytes before
    /// an automatic flush.
    pub fn open(dir: &Path, flush_threshold: u64) -> Result<SegmentStore> {
        std::fs::create_dir_all(dir)?;
        let mut segments = Vec::new();
        let mut next_seg = 1u64;
        for (num, path) in numbered_files(dir, "seg")? {
            // A corrupt segment would have had to tear an atomic rename;
            // surface it rather than silently dropping committed data.
            segments.push((num, Segment::read(&path)?));
            next_seg = num + 1;
        }
        let (wal, records, _report) = Wal::open(&dir.join("kv.wal"))?;
        let mut store = SegmentStore {
            dir: dir.to_path_buf(),
            mem: BTreeMap::new(),
            mem_bytes: 0,
            wal,
            segments,
            next_seg,
            flush_threshold,
        };
        for rec in records {
            if let Some((key, val)) = decode_kv_record(&rec) {
                store.apply_mem(key, val);
            }
        }
        Ok(store)
    }

    fn apply_mem(&mut self, key: Vec<u8>, val: Option<Vec<u8>>) {
        self.mem_bytes += (key.len() + val.as_ref().map_or(0, |v| v.len()) + 16) as u64;
        self.mem.insert(key, val);
    }

    fn log_and_apply(&mut self, key: &[u8], val: Option<&[u8]>) -> Result<()> {
        self.wal.append(&encode_kv_record(key, val))?;
        self.apply_mem(key.to_vec(), val.map(|v| v.to_vec()));
        if self.mem_bytes >= self.flush_threshold {
            self.flush()?;
        }
        Ok(())
    }

    /// Durably inserts or replaces `key`.
    pub fn put(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        self.log_and_apply(key, Some(val))
    }

    /// Durably deletes `key` (a tombstone shadows older segments).
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.log_and_apply(key, None)
    }

    /// Point lookup across MemTable and segments (newest layer wins).
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(v) = self.mem.get(key) {
            return v.clone();
        }
        for (_, seg) in self.segments.iter().rev() {
            if let Some(v) = seg.get(key) {
                return v.map(|v| v.to_vec());
            }
        }
        None
    }

    /// All live entries, sorted by key, tombstones resolved.
    pub fn scan(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (_, seg) in &self.segments {
            for (k, v) in &seg.entries {
                merged.insert(k.clone(), v.clone());
            }
        }
        for (k, v) in &self.mem {
            merged.insert(k.clone(), v.clone());
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }

    /// Writes the MemTable out as the next segment and resets the WAL.
    /// No-op when the MemTable is empty.
    pub fn flush(&mut self) -> Result<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        let entries: Vec<_> = std::mem::take(&mut self.mem).into_iter().collect();
        let num = self.next_seg;
        let seg = Segment::write(&self.dir.join(format!("seg.{num}")), entries)?;
        self.segments.push((num, seg));
        self.next_seg += 1;
        self.mem_bytes = 0;
        self.wal.reset()?;
        Ok(())
    }

    /// Number of on-disk segments (for tests and telemetry).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Entries currently buffered in the MemTable.
    pub fn mem_entries(&self) -> usize {
        self.mem.len()
    }
}

fn encode_kv_record(key: &[u8], val: Option<&[u8]>) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + key.len() + val.map_or(0, |v| v.len()));
    out.push(if val.is_some() { 0 } else { 1 });
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    if let Some(v) = val {
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(v);
    }
    out
}

fn decode_kv_record(rec: &[u8]) -> Option<(Vec<u8>, Option<Vec<u8>>)> {
    let mut r = SliceReader { buf: rec, pos: 0 };
    let tomb = r.u8().ok()? != 0;
    let klen = r.u32().ok()? as usize;
    let key = r.take(klen).ok()?.to_vec();
    if tomb {
        return Some((key, None));
    }
    let vlen = r.u32().ok()? as usize;
    let val = r.take(vlen).ok()?.to_vec();
    Some((key, Some(val)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scope-store-seg-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..500u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let mut b = Bloom::with_capacity(keys.len());
        for k in &keys {
            b.insert(k);
        }
        for k in &keys {
            assert!(b.may_contain(k));
        }
        // False positives stay rare at 10 bits/key.
        let fp = (1000..3000u32)
            .filter(|i| b.may_contain(&i.to_le_bytes()))
            .count();
        assert!(fp < 60, "false positive rate too high: {fp}/2000");
    }

    #[test]
    fn put_get_delete_round_trip() {
        let dir = tmp("pgd");
        let mut s = SegmentStore::open(&dir, 1 << 20).unwrap();
        s.put(b"k1", b"v1").unwrap();
        s.put(b"k2", b"v2").unwrap();
        s.delete(b"k1").unwrap();
        assert_eq!(s.get(b"k1"), None);
        assert_eq!(s.get(b"k2"), Some(b"v2".to_vec()));
        assert_eq!(s.scan(), vec![(b"k2".to_vec(), b"v2".to_vec())]);
    }

    #[test]
    fn wal_replay_recovers_unflushed_writes() {
        let dir = tmp("replay");
        let mut s = SegmentStore::open(&dir, 1 << 20).unwrap();
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
        drop(s); // never flushed — everything lives in kv.wal
        let s = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(s.num_segments(), 0);
        assert_eq!(s.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(s.get(b"b"), Some(b"2".to_vec()));
    }

    #[test]
    fn flush_writes_segment_and_resets_wal() {
        let dir = tmp("flush");
        let mut s = SegmentStore::open(&dir, 1 << 20).unwrap();
        for i in 0..100u32 {
            s.put(&i.to_le_bytes(), &(i * 2).to_le_bytes()).unwrap();
        }
        s.flush().unwrap();
        assert_eq!(s.num_segments(), 1);
        assert_eq!(s.mem_entries(), 0);
        drop(s);
        let s = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(s.num_segments(), 1);
        for i in 0..100u32 {
            assert_eq!(
                s.get(&i.to_le_bytes()),
                Some((i * 2).to_le_bytes().to_vec())
            );
        }
    }

    #[test]
    fn tombstone_in_newer_layer_shadows_older_segment() {
        let dir = tmp("shadow");
        let mut s = SegmentStore::open(&dir, 1 << 20).unwrap();
        s.put(b"doomed", b"old").unwrap();
        s.flush().unwrap();
        s.delete(b"doomed").unwrap();
        assert_eq!(s.get(b"doomed"), None);
        drop(s);
        let mut s = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(s.get(b"doomed"), None);
        s.flush().unwrap(); // tombstone flushed into its own segment
        drop(s);
        let s = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(s.get(b"doomed"), None);
        assert!(s.scan().is_empty());
    }

    #[test]
    fn auto_flush_past_threshold() {
        let dir = tmp("auto");
        let mut s = SegmentStore::open(&dir, 256).unwrap();
        for i in 0..64u32 {
            s.put(&i.to_le_bytes(), &[0u8; 16]).unwrap();
        }
        assert!(s.num_segments() >= 1, "threshold never triggered a flush");
        for i in 0..64u32 {
            assert_eq!(s.get(&i.to_le_bytes()), Some(vec![0u8; 16]));
        }
    }

    #[test]
    fn torn_kv_wal_tail_drops_only_last_write() {
        let dir = tmp("torn");
        let mut s = SegmentStore::open(&dir, 1 << 20).unwrap();
        s.put(b"safe", b"1").unwrap();
        s.put(b"torn", b"2").unwrap();
        drop(s);
        let wal_path = dir.join("kv.wal");
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 1]).unwrap();
        let s = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(s.get(b"safe"), Some(b"1".to_vec()));
        assert_eq!(s.get(b"torn"), None);
    }
}
