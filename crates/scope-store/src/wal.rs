//! Append-only write-ahead log.
//!
//! Record framing (everything little-endian, mirroring the `scope-net`
//! frame idiom):
//!
//! | offset | size | field                              |
//! |--------|------|------------------------------------|
//! | 0      | 4    | payload length                     |
//! | 4      | 8    | `sip64` checksum of the payload    |
//! | 12     | n    | payload bytes                      |
//!
//! A crash can leave the file ending in a partial record (torn header,
//! short payload) or a record whose bytes were only partially flushed
//! (checksum mismatch). [`scan_records`] stops at the first such record:
//! everything before it is a *clean prefix* and everything from it on is
//! dropped — [`Wal::open`] additionally truncates the file back to the
//! clean boundary so subsequent appends start from consistent state.
//! Corruption never panics and never yields a partial record.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use scope_common::hash::sip64;

use crate::Result;

/// Fixed per-record framing overhead.
pub const RECORD_HEADER: usize = 12;

/// Hard ceiling on a single record payload (64 MiB). A longer length prefix
/// is treated as tail corruption, bounding what a damaged file can make
/// recovery allocate.
pub const MAX_RECORD: u32 = 64 * 1024 * 1024;

/// What scanning a log file found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TailReport {
    /// Intact records in the clean prefix.
    pub records: usize,
    /// Byte length of the clean prefix (the truncation target).
    pub clean_len: u64,
    /// Bytes past the last clean record boundary (0 for a healthy file).
    pub dropped_bytes: u64,
}

impl TailReport {
    /// True when the file ended in a torn or corrupt record.
    pub fn torn(&self) -> bool {
        self.dropped_bytes > 0
    }
}

/// Scans raw log bytes into payloads, stopping at the first torn or
/// corrupt record. Infallible by construction: any malformed suffix is
/// reported, not propagated.
pub fn scan_records(bytes: &[u8]) -> (Vec<Vec<u8>>, TailReport) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + RECORD_HEADER <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            break;
        }
        let end = pos + RECORD_HEADER + len as usize;
        if end > bytes.len() {
            break;
        }
        let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let payload = &bytes[pos + RECORD_HEADER..end];
        if sip64(payload) != checksum {
            break;
        }
        records.push(payload.to_vec());
        pos = end;
    }
    let report = TailReport {
        records: records.len(),
        clean_len: pos as u64,
        dropped_bytes: (bytes.len() - pos) as u64,
    };
    (records, report)
}

/// Frames one payload for appending.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&sip64(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// An open write-ahead log file positioned for appending.
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replaying its clean
    /// prefix and truncating any torn tail back to a record boundary.
    pub fn open(path: &Path) -> Result<(Wal, Vec<Vec<u8>>, TailReport)> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let (records, report) = scan_records(&bytes);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        if report.torn() || file.metadata()?.len() != report.clean_len {
            file.set_len(report.clean_len)?;
        }
        let mut wal = Wal {
            file,
            path: path.to_path_buf(),
            bytes: report.clean_len,
        };
        // Position at the clean end for appending (no O_APPEND: truncation
        // and appends must agree on the same offset).
        use std::io::{Seek, SeekFrom};
        wal.file.seek(SeekFrom::Start(report.clean_len))?;
        Ok((wal, records, report))
    }

    /// Appends one record (length + checksum + payload) as a single write.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let frame = frame_record(payload);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Forces written records to stable storage (called before a snapshot
    /// seals a generation; individual appends rely on the OS page cache,
    /// which survives process death — the kill-replay CI gate — if not
    /// machine death).
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Bytes of clean records currently in the file.
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }

    /// Truncates the log to empty (after its contents were made durable
    /// elsewhere, e.g. flushed into a segment file).
    pub fn reset(&mut self) -> Result<()> {
        use std::io::{Seek, SeekFrom};
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.bytes = 0;
        Ok(())
    }

    /// The file path this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scope-store-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal")
    }

    #[test]
    fn round_trips_records() {
        let path = tmp("rt");
        let (mut wal, recs, report) = Wal::open(&path).unwrap();
        assert!(recs.is_empty() && !report.torn());
        wal.append(b"alpha").unwrap();
        wal.append(b"").unwrap();
        wal.append(&[0xAB; 1000]).unwrap();
        drop(wal);
        let (_, recs, report) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![b"alpha".to_vec(), Vec::new(), vec![0xAB; 1000]]);
        assert!(!report.torn());
        assert_eq!(report.records, 3);
    }

    #[test]
    fn torn_tail_dropped_at_every_truncation_point() {
        let path = tmp("torn");
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"second-record").unwrap();
        drop(wal);
        let healthy = std::fs::read(&path).unwrap();
        let first_len = RECORD_HEADER as u64 + 5;
        // Truncate at every byte offset inside the second record: the
        // first record must always survive, the second must always drop.
        for cut in first_len..healthy.len() as u64 {
            std::fs::write(&path, &healthy[..cut as usize]).unwrap();
            let (_, recs, report) = Wal::open(&path).unwrap();
            assert_eq!(recs.len(), 1, "cut at {cut}");
            assert_eq!(recs[0], b"first");
            assert_eq!(report.dropped_bytes, cut - first_len, "cut at {cut}");
            assert_eq!(std::fs::metadata(&path).unwrap().len(), first_len);
        }
    }

    #[test]
    fn corrupt_byte_invalidates_suffix() {
        let path = tmp("flip");
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(b"aaaa").unwrap();
        wal.append(b"bbbb").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the second record.
        let idx = bytes.len() - 1;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, recs, report) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![b"aaaa".to_vec()]);
        assert!(report.torn());
    }

    #[test]
    fn absurd_length_prefix_is_tail_corruption() {
        let path = tmp("len");
        let mut bytes = frame_record(b"ok");
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &bytes).unwrap();
        let (_, recs, report) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![b"ok".to_vec()]);
        assert!(report.torn());
    }

    #[test]
    fn append_after_truncated_open_continues_cleanly() {
        let path = tmp("resume");
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(b"keep").unwrap();
        wal.append(b"torn").unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let (mut wal, recs, _) = Wal::open(&path).unwrap();
        assert_eq!(recs.len(), 1);
        wal.append(b"next").unwrap();
        drop(wal);
        let (_, recs, report) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![b"keep".to_vec(), b"next".to_vec()]);
        assert!(!report.torn());
    }
}
