//! In-flight work sharing: a window coordinator in front of `run_many`.
//!
//! The paper's runtime only reuses *materialized* views, so the daily
//! analyzer loop is structurally too late for bursty, overlapping arrivals:
//! every job in a wave recomputes the common subgraph because the view it
//! would reuse does not exist yet (and, since PR 7, a job pinned at its
//! submission time can never see a view published mid-wave). The Oracle
//! "Real-Time Analytics by Coordinating Reuse and Work Sharing" observation
//! is that coordinating the *concurrent* jobs themselves captures this
//! reuse; GEqO's staged-filter discipline keeps the coordination cheap.
//!
//! [`CloudViews::run_windowed`] batches arrivals into fixed admission
//! windows. Within one window the coordinator:
//!
//! 1. **groups** every job's enumerated subgraphs by normalized signature
//!    (the cheap structural filter), then by precise signature (byte-equal
//!    results) — only groups spanning at least [`SharingConfig::min_group`]
//!    distinct jobs survive;
//! 2. **elects exactly one producer** per surviving subgraph — always the
//!    *earliest* job in submission order, so every wait edge points from a
//!    later follower to an earlier producer and the waits-for graph is
//!    acyclic by construction;
//! 3. **synthesizes window annotations** so the ordinary optimizer hooks do
//!    the rest: the producer's annotation drives a follow-up
//!    materialization (real metadata propose, pinned at the shared
//!    submission time), and each follower's tier-1 reuse is served from the
//!    window's own publish channel — the metadata service stays pinned and
//!    never has to "see into the future";
//! 4. **publishes or aborts** every entry: a producer that completes
//!    without publishing (panic, injected crash, degraded fallback, reuse
//!    of a pre-existing view) aborts its pending entries, waking every
//!    waiter to fall back to recompute. There are no timeouts anywhere on
//!    this path.
//!
//! All jobs in one window share a single pinned submission time (the
//! window's close), so the PR-6/PR-7 visibility discipline holds verbatim:
//! lookups, proposes, and reports are all judged at that one instant.
//!
//! Scheduling is readiness-gated: a follower is not dispatched to the pool
//! until every entry it awaits is resolved (published or aborted), so a
//! blocked follower can never occupy a worker the producer needs. Progress
//! is guaranteed because the earliest undispatched job only ever awaits
//! entries owned by strictly earlier jobs, all of which are already
//! dispatched.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use scope_common::hash::Sig128;
use scope_common::time::{SimDuration, SimTime};
use scope_common::Result;
use scope_engine::job::JobSpec;
use scope_engine::optimizer::{Annotation, AvailableView};
use scope_plan::OpKind;
use scope_signature::CompiledJob;

use crate::pipeline::PipelineOptions;
use crate::runtime::{CloudViews, JobRunReport, RunMode};

/// One job plus its arrival offset within a [`CloudViews::run_windowed`]
/// batch (relative to the batch's simulated start).
#[derive(Debug)]
pub struct JobArrival {
    /// The job to run.
    pub spec: JobSpec,
    /// Arrival offset from the batch start; decides the admission window.
    pub offset: SimDuration,
}

/// Configuration of the sharing coordinator.
#[derive(Clone, Debug)]
pub struct SharingConfig {
    /// Master switch; when false, `run_windowed` still batches arrivals
    /// into windows (same pinned submission times) but never coordinates —
    /// the views-only baseline for apples-to-apples comparison.
    pub enabled: bool,
    /// Admission window length. Jobs arriving within the same window share
    /// one pinned submission time: the window's close.
    pub window: SimDuration,
    /// Minimum distinct jobs that must contain a subgraph before it is
    /// worth electing a producer (GEqO's survivor threshold).
    pub min_group: usize,
    /// TTL stamped on views materialized through window annotations (the
    /// analyzer's mined TTL is not available for never-before-seen
    /// templates).
    pub view_ttl: SimDuration,
    /// Recompute-cost estimate used in synthesized annotations until the
    /// producer publishes its measured subgraph CPU.
    pub assumed_recompute_cpu: SimDuration,
}

impl Default for SharingConfig {
    fn default() -> SharingConfig {
        SharingConfig {
            enabled: true,
            window: SimDuration::from_secs(30),
            min_group: 2,
            view_ttl: SimDuration::from_secs(86_400),
            assumed_recompute_cpu: SimDuration::from_secs(30),
        }
    }
}

/// Lifecycle of one shared subgraph within a window. Publish-or-abort:
/// every entry reaches `Published` or `Aborted` before its window's last
/// job completes — waiters never depend on a timeout.
enum ShareState {
    /// Producer elected, output not available yet.
    Pending,
    /// The producer's early-materialized view is readable.
    Published {
        view: AvailableView,
        available_at: SimTime,
        /// The producer's *measured* CPU of computing the subgraph — the
        /// honest recompute proxy for followers' cost-based reuse gates.
        recompute_cpu: SimDuration,
    },
    /// The producer finished without publishing (crash, fallback, reuse of
    /// a pre-existing view); followers recompute.
    Aborted,
}

/// One elected shared subgraph.
pub(crate) struct SharedEntry {
    /// Slot (submission-order index within the window) of the producer.
    pub producer: usize,
    /// Normalized signature (the synthesized annotation's key).
    pub normalized: Sig128,
    /// Delivered physical properties at the subgraph root (the mined-design
    /// stand-in for the synthesized annotation).
    pub props: std::sync::Arc<scope_plan::PhysicalProps>,
    /// Distinct jobs containing the subgraph.
    pub group_jobs: usize,
    /// Nodes in the subgraph (reporting).
    pub num_nodes: usize,
}

/// What the window knows about a precise signature a job is probing.
pub(crate) enum SharedView {
    /// Not a window entry (or not visible to this slot): use the pinned
    /// metadata service as usual.
    NotShared,
    /// This slot is the entry's elected producer: fall through to the
    /// pinned metadata service so the ordinary propose/build path runs.
    ProducerSelf,
    /// The producer published; the view is readable now (the simulated
    /// wait for its availability is charged by
    /// [`WindowContext::note_optimized`], not here).
    Ready { view: AvailableView },
    /// The entry was aborted: recompute (pinned metadata may still serve a
    /// pre-existing view).
    Fallback,
}

/// The per-window coordinator state. Built once per admission window by
/// [`WindowContext::plan`]; shared read-only by the window's workers, with
/// entry lifecycles behind one mutex.
pub(crate) struct WindowContext {
    submitted_at: SimTime,
    view_ttl: SimDuration,
    assumed_recompute_cpu: SimDuration,
    entries: HashMap<Sig128, SharedEntry>,
    /// Per slot: entries this job awaits (it is a follower).
    follows: Vec<Vec<Sig128>>,
    /// Per slot: entries this job must publish-or-abort (it is producer).
    produces: Vec<Vec<Sig128>>,
    states: Mutex<HashMap<Sig128, ShareState>>,
    /// Wakes followers blocked on a `Pending` entry (the safety net; the
    /// readiness gate makes this wait unreachable in the pooled path).
    state_changed: Condvar,
    /// Undispatched slots, in submission order.
    dispatch: Mutex<Vec<usize>>,
    /// Wakes workers parked in [`WindowContext::next_ready`].
    dispatch_ready: Condvar,
    /// One accounting pass per slot (builder-crash restarts re-run the
    /// optimize stage; only the first pass counts).
    noted: Vec<AtomicBool>,
    follower_hits: AtomicU64,
    follower_fallbacks: AtomicU64,
    waits: Mutex<Vec<SimDuration>>,
}

impl WindowContext {
    /// Plans one window: group → elect → wire the wait edges. Returns
    /// `None` when nothing is shareable (the window then runs exactly like
    /// a plain `run_many` batch).
    ///
    /// `compiled[slot]` is `None` for jobs whose plan failed to compile;
    /// they run (and fail) normally but never participate in sharing.
    pub(crate) fn plan(
        specs: &[JobSpec],
        compiled: &[Option<CompiledJob>],
        cfg: &SharingConfig,
        max_elect_per_job: usize,
        submitted_at: SimTime,
    ) -> Option<WindowContext> {
        let n = specs.len();
        let min_group = cfg.min_group.max(2);

        // Stage 1 (cheap): group candidate subgraphs by normalized
        // signature; only templates spanning enough distinct jobs survive.
        let eligible = |kind: OpKind, num_nodes: usize| {
            num_nodes >= 2 && !matches!(kind, OpKind::Output | OpKind::Write)
        };
        let mut by_normalized: HashMap<Sig128, BTreeSet<usize>> = HashMap::new();
        for (slot, c) in compiled.iter().enumerate() {
            let Some(c) = c else { continue };
            for info in &c.infos {
                if eligible(info.root_kind, info.num_nodes) {
                    by_normalized
                        .entry(info.normalized)
                        .or_default()
                        .insert(slot);
                }
            }
        }
        by_normalized.retain(|_, slots| slots.len() >= min_group);
        if by_normalized.is_empty() {
            return None;
        }

        // Stage 2 (exact): within the surviving templates, group by precise
        // signature — sharing requires byte-identical results.
        let mut by_precise: BTreeMap<Sig128, BTreeSet<usize>> = BTreeMap::new();
        let mut shape: HashMap<Sig128, (Sig128, std::sync::Arc<scope_plan::PhysicalProps>, usize)> =
            HashMap::new();
        for (slot, c) in compiled.iter().enumerate() {
            let Some(c) = c else { continue };
            for info in &c.infos {
                if eligible(info.root_kind, info.num_nodes)
                    && by_normalized.contains_key(&info.normalized)
                {
                    by_precise.entry(info.precise).or_default().insert(slot);
                    shape
                        .entry(info.precise)
                        .or_insert_with(|| (info.normalized, info.props.clone(), info.num_nodes));
                }
            }
        }
        by_precise.retain(|_, slots| slots.len() >= min_group);
        if by_precise.is_empty() {
            return None;
        }

        // Per job, keep only *maximal* shared subgraphs: a shared root
        // contained in another shared root of the same plan is served
        // transitively by the larger one.
        let mut candidates: Vec<Vec<Sig128>> = vec![Vec::new(); n];
        for (slot, c) in compiled.iter().enumerate() {
            let Some(c) = c else { continue };
            let roots: Vec<_> = c
                .infos
                .iter()
                .filter(|i| by_precise.contains_key(&i.precise))
                .map(|i| (i.root, i.precise))
                .collect();
            for &(root, precise) in &roots {
                let contained = roots.iter().any(|&(other, _)| {
                    other != root
                        && specs[slot]
                            .graph
                            .subgraph_nodes(other)
                            .map(|nodes| nodes.contains(&root))
                            .unwrap_or(false)
                });
                if !contained && !candidates[slot].contains(&precise) {
                    candidates[slot].push(precise);
                }
            }
        }

        // Regroup from the maximal candidates and elect producers, biggest
        // subgraphs first (deterministic: BTreeMap order breaks ties).
        let mut groups: BTreeMap<Sig128, BTreeSet<usize>> = BTreeMap::new();
        for (slot, sigs) in candidates.iter().enumerate() {
            for sig in sigs {
                groups.entry(*sig).or_default().insert(slot);
            }
        }
        groups.retain(|_, slots| slots.len() >= min_group);
        let mut order: Vec<(&Sig128, &BTreeSet<usize>)> = groups.iter().collect();
        order.sort_by_key(|(sig, _)| (std::cmp::Reverse(shape[sig].2), **sig));

        let cap = max_elect_per_job.max(1);
        let mut entries: HashMap<Sig128, SharedEntry> = HashMap::new();
        let mut follows: Vec<Vec<Sig128>> = vec![Vec::new(); n];
        let mut produces: Vec<Vec<Sig128>> = vec![Vec::new(); n];
        for (sig, slots) in order {
            // The earliest containing job produces; electing anyone later
            // would point a wait edge backwards and risk a cycle.
            let producer = *slots.first().expect("non-empty group");
            if produces[producer].len() >= cap {
                continue;
            }
            let (normalized, props, num_nodes) = shape[sig].clone();
            produces[producer].push(*sig);
            for &slot in slots.iter().skip(1) {
                follows[slot].push(*sig);
            }
            entries.insert(
                *sig,
                SharedEntry {
                    producer,
                    normalized,
                    props,
                    group_jobs: slots.len(),
                    num_nodes,
                },
            );
        }
        if entries.is_empty() {
            return None;
        }

        let states = entries
            .keys()
            .map(|sig| (*sig, ShareState::Pending))
            .collect();
        Some(WindowContext {
            submitted_at,
            view_ttl: cfg.view_ttl,
            assumed_recompute_cpu: cfg.assumed_recompute_cpu,
            entries,
            follows,
            produces,
            states: Mutex::new(states),
            state_changed: Condvar::new(),
            dispatch: Mutex::new((0..n).collect()),
            dispatch_ready: Condvar::new(),
            noted: (0..n).map(|_| AtomicBool::new(false)).collect(),
            follower_hits: AtomicU64::new(0),
            follower_fallbacks: AtomicU64::new(0),
            waits: Mutex::new(Vec::new()),
        })
    }

    /// Number of elected shared subgraphs.
    pub(crate) fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// The elected entries (reporting).
    pub(crate) fn entries(&self) -> impl Iterator<Item = (&Sig128, &SharedEntry)> {
        self.entries.iter()
    }

    /// Entry-state mutex, with the same poison-recovery discipline as the
    /// pool's admission semaphore: the guarded sections cannot themselves
    /// panic, so a panicking job unwinding through the pool must not take
    /// the whole window down with it.
    fn lock_states(&self) -> MutexGuard<'_, HashMap<Sig128, ShareState>> {
        self.states
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_dispatch(&self) -> MutexGuard<'_, Vec<usize>> {
        self.dispatch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Appends synthesized window annotations for every entry `slot`
    /// produces or follows whose normalized signature the metadata lookup
    /// did not already cover. A published entry carries the producer's
    /// measured recompute CPU and stored size; a pending/aborted one falls
    /// back to the configured estimate.
    pub(crate) fn extend_annotations(&self, slot: usize, annotations: &mut Vec<Annotation>) {
        let states = self.lock_states();
        for sig in self.produces[slot].iter().chain(&self.follows[slot]) {
            let entry = &self.entries[sig];
            if annotations.iter().any(|a| a.normalized == entry.normalized) {
                continue;
            }
            let (avg_cpu, avg_rows, avg_bytes) = match states.get(sig) {
                Some(ShareState::Published {
                    view,
                    recompute_cpu,
                    ..
                }) => (*recompute_cpu, view.rows, view.bytes),
                _ => (self.assumed_recompute_cpu, 0, 0),
            };
            annotations.push(Annotation {
                normalized: entry.normalized,
                props: (*entry.props).clone(),
                ttl: self.view_ttl,
                avg_cpu,
                avg_rows,
                avg_bytes,
            });
        }
    }

    /// The window-side view oracle consulted before the pinned metadata
    /// service. A registered follower finding its entry still `Pending`
    /// blocks on the publish-or-abort signal (never a timeout); any other
    /// slot gets `Fallback` immediately — only registered followers have
    /// the readiness guarantee that makes blocking safe.
    pub(crate) fn lookup_view(&self, slot: usize, precise: Sig128) -> SharedView {
        let Some(entry) = self.entries.get(&precise) else {
            return SharedView::NotShared;
        };
        if entry.producer == slot {
            return SharedView::ProducerSelf;
        }
        let mut states = self.lock_states();
        loop {
            match states.get(&precise) {
                Some(ShareState::Published { view, .. }) => {
                    return SharedView::Ready { view: view.clone() }
                }
                Some(ShareState::Aborted) | None => return SharedView::Fallback,
                Some(ShareState::Pending) => {
                    if !self.follows[slot].contains(&precise) {
                        return SharedView::Fallback;
                    }
                    states = self
                        .state_changed
                        .wait(states)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
        }
    }

    /// True when `slot` must not propose to build `precise`: the entry has
    /// an elected producer and it is someone else. Followers never compete
    /// for the build lock, even after an abort — the subgraph can be built
    /// in a later window instead.
    pub(crate) fn deny_propose(&self, slot: usize, precise: Sig128) -> bool {
        self.entries
            .get(&precise)
            .is_some_and(|e| e.producer != slot)
    }

    /// True when `slot` is the elected producer of `precise`.
    pub(crate) fn is_producer(&self, slot: usize, precise: Sig128) -> bool {
        self.entries
            .get(&precise)
            .is_some_and(|e| e.producer == slot)
    }

    /// Entries `slot` was elected to produce (the optimizer's
    /// materialization cap is raised by this much so window builds never
    /// crowd out the job's own analyzer-mined builds).
    pub(crate) fn produces_count(&self, slot: usize) -> usize {
        self.produces[slot].len()
    }

    /// Producer publish: transitions `Pending → Published` and wakes every
    /// waiter. Idempotent (a builder-crash restart that already published a
    /// view before dying must not regress the state).
    pub(crate) fn publish(
        &self,
        slot: usize,
        precise: Sig128,
        view: AvailableView,
        available_at: SimTime,
        recompute_cpu: SimDuration,
    ) {
        if !self.is_producer(slot, precise) {
            return;
        }
        {
            let mut states = self.lock_states();
            if matches!(states.get(&precise), Some(ShareState::Pending)) {
                states.insert(
                    precise,
                    ShareState::Published {
                        view,
                        available_at,
                        recompute_cpu,
                    },
                );
                self.state_changed.notify_all();
            }
        }
        self.poke_dispatch();
    }

    /// Job-completion hook — called for *every* terminal outcome (success,
    /// error, caught panic). Any entry this slot still owes is aborted so
    /// its waiters wake and fall back to recompute. This is the
    /// publish-or-abort guarantee: no follower can outlive its producer in
    /// a blocked state.
    pub(crate) fn resolve_job(&self, slot: usize) {
        {
            let mut states = self.lock_states();
            let mut changed = false;
            for sig in &self.produces[slot] {
                if matches!(states.get(sig), Some(ShareState::Pending)) {
                    states.insert(*sig, ShareState::Aborted);
                    changed = true;
                }
            }
            if changed {
                self.state_changed.notify_all();
            }
        }
        self.poke_dispatch();
    }

    /// Serializes with the check-then-wait in [`WindowContext::next_ready`]
    /// (lock, drop, notify), so a state change can never slip between a
    /// parked worker's readiness scan and its wait.
    fn poke_dispatch(&self) {
        drop(self.lock_dispatch());
        self.dispatch_ready.notify_all();
    }

    /// Pops the next dispatchable slot, blocking while every undispatched
    /// job still awaits a pending entry. Returns `None` when the window is
    /// fully dispatched.
    ///
    /// Deadlock-freedom: the earliest undispatched slot only follows
    /// entries produced by strictly earlier slots (producers are always the
    /// earliest job of their group), and those are all dispatched; each
    /// dispatched job terminates (panic-isolated) and resolves its entries,
    /// which pokes this condvar.
    pub(crate) fn next_ready(&self) -> Option<usize> {
        let mut queue = self.lock_dispatch();
        loop {
            if queue.is_empty() {
                return None;
            }
            let pos = {
                let states = self.lock_states();
                queue.iter().position(|&slot| {
                    self.follows[slot]
                        .iter()
                        .all(|sig| !matches!(states.get(sig), Some(ShareState::Pending)))
                })
            };
            if let Some(pos) = pos {
                return Some(queue.remove(pos));
            }
            queue = self
                .dispatch_ready
                .wait(queue)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Accounting after a slot's optimize stage: counts follower reuse hits
    /// vs. fallbacks and returns the simulated wait to charge this attempt
    /// (time from the shared submission instant until the last reused entry
    /// became available). Hit/fallback counters and the wait histogram are
    /// recorded once per slot; the latency charge applies to every attempt
    /// (a restarted follower re-waits in simulated time).
    pub(crate) fn note_optimized(&self, slot: usize, reused: &[Sig128]) -> SimDuration {
        let first = !self.noted[slot].swap(true, Ordering::Relaxed);
        let mut wait_total = SimDuration::ZERO;
        let states = self.lock_states();
        for sig in &self.follows[slot] {
            if reused.contains(sig) {
                if let Some(ShareState::Published { available_at, .. }) = states.get(sig) {
                    if *available_at > self.submitted_at {
                        wait_total = wait_total.max(*available_at - self.submitted_at);
                    }
                }
                if first {
                    self.follower_hits.fetch_add(1, Ordering::Relaxed);
                }
            } else if first {
                self.follower_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(states);
        if first && wait_total > SimDuration::ZERO {
            self.waits
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push(wait_total);
        }
        wait_total
    }

    /// Terminal tallies: (published, aborted) entry counts.
    fn final_counts(&self) -> (usize, usize) {
        let states = self.lock_states();
        let published = states
            .values()
            .filter(|s| matches!(s, ShareState::Published { .. }))
            .count();
        let aborted = states
            .values()
            .filter(|s| matches!(s, ShareState::Aborted))
            .count();
        (published, aborted)
    }
}

/// Aggregate coordinator outcome across every window of one
/// [`CloudViews::run_windowed`] call.
#[derive(Clone, Debug, Default)]
pub struct SharingSummary {
    /// Windows in which the coordinator was active (elected ≥ 1 entry).
    pub windows: usize,
    /// Jobs that ran inside coordinated windows.
    pub jobs: usize,
    /// Shared subgraphs elected (one producer each).
    pub shared_subgraphs: usize,
    /// Total plan nodes covered by the elected shared subgraphs (a size
    /// proxy: electing three 5-node aggregations shares more work than
    /// three 2-node filters).
    pub shared_nodes: usize,
    /// Entries whose producer published an early-materialized view.
    pub published: usize,
    /// Entries aborted (producer crashed, degraded, or reused elsewhere).
    pub aborted: usize,
    /// Follower attempts that reused a window entry.
    pub follower_reuses: u64,
    /// Follower attempts that fell back to recompute.
    pub follower_fallbacks: u64,
    /// Per-follower simulated waits for a producer's publication.
    pub waits: Vec<SimDuration>,
}

impl SharingSummary {
    /// p99 of the recorded follower waits (zero when none were recorded).
    pub fn wait_p99(&self) -> SimDuration {
        if self.waits.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = self.waits.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

/// The result of one windowed batch: per-job reports in input order plus
/// the coordinator's aggregate summary.
#[derive(Debug)]
pub struct WindowOutcome {
    /// One result per input arrival, in input order.
    pub reports: Vec<Result<JobRunReport>>,
    /// What the coordinator did across all windows.
    pub sharing: SharingSummary,
}

impl CloudViews {
    /// Runs a batch of arrivals through fixed admission windows with the
    /// in-flight sharing coordinator in front of the worker pool.
    ///
    /// Jobs arriving within the same [`SharingConfig::window`] are batched
    /// and submitted together at the window's close — one shared pinned
    /// submission time, exactly like a `run_many` wave. With sharing
    /// enabled (and `mode == CloudViews`), common subgraphs across the
    /// window's jobs get exactly one producer; the other jobs await its
    /// early-materialized output and reuse it, falling back to recompute
    /// if the producer fails. Outputs are byte-identical to an uncoordinated
    /// run either way.
    pub fn run_windowed(
        &self,
        arrivals: Vec<JobArrival>,
        mode: RunMode,
        options: PipelineOptions,
        cfg: &SharingConfig,
    ) -> WindowOutcome {
        let n = arrivals.len();
        let mut summary = SharingSummary::default();
        if n == 0 {
            return WindowOutcome {
                reports: Vec::new(),
                sharing: summary,
            };
        }
        let window_len = SimDuration::from_micros(cfg.window.micros().max(1));
        let base = self.clock.now();

        // Bucket arrivals into admission windows, preserving input order
        // within each bucket.
        let mut buckets: BTreeMap<u64, Vec<(usize, JobSpec)>> = BTreeMap::new();
        for (idx, arrival) in arrivals.into_iter().enumerate() {
            let k = arrival.offset.micros() / window_len.micros();
            buckets.entry(k).or_default().push((idx, arrival.spec));
        }

        let mut slots: Vec<Option<Result<JobRunReport>>> = (0..n).map(|_| None).collect();
        for (k, batch) in buckets {
            // Every job in the bucket is submitted at the window's close —
            // the single pinned instant all its metadata traffic is judged
            // at.
            let submit = base + SimDuration::from_micros(window_len.micros().saturating_mul(k + 1));
            let (idxs, specs): (Vec<usize>, Vec<JobSpec>) = batch.into_iter().unzip();

            let window = if cfg.enabled && mode == RunMode::CloudViews && specs.len() >= 2 {
                let compiled: Vec<Option<CompiledJob>> = specs
                    .iter()
                    .map(|s| self.templates.compile(&s.graph).ok())
                    .collect();
                WindowContext::plan(&specs, &compiled, cfg, self.max_materialize_per_job, submit)
            } else {
                None
            };

            if let Some(w) = &window {
                let m = self.sharing_metrics();
                m.windows.inc();
                m.window_jobs.add(specs.len() as u64);
                m.window_size.record(specs.len() as u64);
                m.shared_subgraphs.add(w.num_entries() as u64);
                for (_, entry) in w.entries() {
                    m.group_size.record(entry.group_jobs as u64);
                    summary.shared_nodes += entry.num_nodes;
                }
                summary.windows += 1;
                summary.jobs += specs.len();
                summary.shared_subgraphs += w.num_entries();
            }

            let results = self.run_many_inner(specs, mode, options, submit, window.as_ref());

            if let Some(w) = &window {
                let m = self.sharing_metrics();
                let (published, aborted) = w.final_counts();
                m.published.add(published as u64);
                m.aborts.add(aborted as u64);
                let hits = w.follower_hits.load(Ordering::Relaxed);
                let fallbacks = w.follower_fallbacks.load(Ordering::Relaxed);
                m.follower_reuses.add(hits);
                m.follower_fallbacks.add(fallbacks);
                summary.published += published;
                summary.aborted += aborted;
                summary.follower_reuses += hits;
                summary.follower_fallbacks += fallbacks;
                let waits = w
                    .waits
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                for wait in waits.iter() {
                    m.wait.record(wait.micros());
                }
                summary.waits.extend(waits.iter().copied());
            }

            for (idx, result) in idxs.into_iter().zip(results) {
                slots[idx] = Some(result);
            }
        }

        WindowOutcome {
            reports: slots
                .into_iter()
                .map(|r| r.expect("every arrival produced a result"))
                .collect(),
            sharing: summary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::ids::{ClusterId, DatasetId, JobId, TemplateId, UserId, VcId};
    use scope_plan::expr::AggFunc;
    use scope_plan::{AggExpr, DataType, Expr, PlanBuilder, Schema};
    use scope_signature::TemplateCache;

    fn kv_schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
    }

    fn spec(id: u64, graph: scope_plan::QueryGraph) -> JobSpec {
        JobSpec {
            id: JobId::new(id),
            cluster: ClusterId::new(1),
            vc: VcId::new(1),
            user: UserId::new(1),
            template: TemplateId::new(id),
            instance: 0,
            graph,
        }
    }

    /// scan → filter → agg → output over one shared stream; identical
    /// across calls, so the precise signatures match job to job.
    fn shared_job(id: u64, out: &str) -> JobSpec {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(7), "shared/2024-01-01/x.ss", kv_schema());
        let f = b.filter(s, Expr::col(1).ge(Expr::lit(5i64)));
        let a = b.aggregate(f, vec![0], vec![AggExpr::new("n", AggFunc::Count, 1)]);
        spec(id, b.output(a, out).build().unwrap())
    }

    fn distinct_job(id: u64) -> JobSpec {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(
            DatasetId::new(100 + id),
            format!("solo/{id}/y.ss"),
            kv_schema(),
        );
        let f = b.filter(s, Expr::col(1).ge(Expr::lit(id as i64)));
        spec(id, b.output(f, format!("solo-{id}")).build().unwrap())
    }

    fn compile_all(specs: &[JobSpec]) -> Vec<Option<CompiledJob>> {
        let cache = TemplateCache::new();
        specs.iter().map(|s| cache.compile(&s.graph).ok()).collect()
    }

    #[test]
    fn plan_elects_earliest_producer_per_shared_subgraph() {
        let specs = vec![
            distinct_job(1),
            shared_job(2, "b"),
            shared_job(3, "c"),
            shared_job(4, "d"),
        ];
        let compiled = compile_all(&specs);
        let cfg = SharingConfig::default();
        let w = WindowContext::plan(&specs, &compiled, &cfg, 1, SimTime::ZERO).expect("shareable");
        // One maximal shared subgraph (the aggregate); producer is slot 1
        // (the earliest shared job), slots 2 and 3 follow.
        assert_eq!(w.num_entries(), 1);
        let (sig, entry) = w.entries().next().unwrap();
        assert_eq!(entry.producer, 1);
        assert_eq!(entry.group_jobs, 3);
        assert!(w.produces[1].contains(sig));
        assert!(w.follows[2].contains(sig) && w.follows[3].contains(sig));
        assert!(w.follows[0].is_empty() && w.produces[0].is_empty());
        // The entry is the *maximal* shared root: its subgraph spans scan +
        // filter + aggregate, not the smaller filter subgraph.
        assert_eq!(entry.num_nodes, 3);
    }

    #[test]
    fn plan_returns_none_without_overlap() {
        let specs = vec![distinct_job(1), distinct_job(2), distinct_job(3)];
        let compiled = compile_all(&specs);
        let cfg = SharingConfig::default();
        assert!(WindowContext::plan(&specs, &compiled, &cfg, 1, SimTime::ZERO).is_none());
    }

    #[test]
    fn abort_wakes_pending_lookup_and_readiness_gate() {
        let specs = vec![shared_job(1, "a"), shared_job(2, "b")];
        let compiled = compile_all(&specs);
        let cfg = SharingConfig::default();
        let w = WindowContext::plan(&specs, &compiled, &cfg, 1, SimTime::ZERO).unwrap();
        let sig = *w.entries().next().unwrap().0;
        // Producer dispatches immediately; the follower is gated.
        assert_eq!(w.next_ready(), Some(0));
        // Abort (producer "dies"); the follower becomes ready and its view
        // lookup reports the fallback instead of blocking.
        w.resolve_job(0);
        assert_eq!(w.next_ready(), Some(1));
        assert!(matches!(w.lookup_view(1, sig), SharedView::Fallback));
        assert!(w.next_ready().is_none());
    }

    #[test]
    fn publish_serves_followers_and_charges_wait() {
        let specs = vec![shared_job(1, "a"), shared_job(2, "b")];
        let compiled = compile_all(&specs);
        let cfg = SharingConfig::default();
        let w = WindowContext::plan(&specs, &compiled, &cfg, 1, SimTime::ZERO).unwrap();
        let sig = *w.entries().next().unwrap().0;
        let view = AvailableView {
            precise: sig,
            rows: 10,
            bytes: 100,
            props: scope_plan::PhysicalProps::any(),
        };
        let at = SimTime::ZERO + SimDuration::from_secs(3);
        // A non-producer publish is ignored (the producer check rejects
        // it); the producer's own publish lands.
        w.publish(1, sig, view.clone(), at, SimDuration::from_secs(9));
        w.publish(0, sig, view, at, SimDuration::from_secs(9));
        match w.lookup_view(1, sig) {
            SharedView::Ready { view } => assert_eq!(view.rows, 10),
            _ => panic!("published entry must be ready"),
        }
        // The synthesized annotation now carries the measured recompute.
        let mut annotations = Vec::new();
        w.extend_annotations(1, &mut annotations);
        assert_eq!(annotations.len(), 1);
        assert_eq!(annotations[0].avg_cpu, SimDuration::from_secs(9));
        // Reusing the entry charges the publish wait exactly once in the
        // histogram but on every accounting call.
        let wait = w.note_optimized(1, &[sig]);
        assert_eq!(wait, SimDuration::from_secs(3));
        assert_eq!(w.follower_hits.load(Ordering::Relaxed), 1);
        let again = w.note_optimized(1, &[sig]);
        assert_eq!(again, wait);
        assert_eq!(w.follower_hits.load(Ordering::Relaxed), 1);
        assert_eq!(w.waits.lock().unwrap().len(), 1);
    }

    #[test]
    fn propose_denied_for_followers_only() {
        let specs = vec![shared_job(1, "a"), shared_job(2, "b")];
        let compiled = compile_all(&specs);
        let cfg = SharingConfig::default();
        let w = WindowContext::plan(&specs, &compiled, &cfg, 1, SimTime::ZERO).unwrap();
        let sig = *w.entries().next().unwrap().0;
        assert!(!w.deny_propose(0, sig));
        assert!(w.deny_propose(1, sig));
        assert!(!w.deny_propose(1, Sig128::new(1, 2)));
    }
}
