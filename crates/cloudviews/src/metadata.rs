//! The CloudViews metadata service (paper Section 6.1, Figure 9).
//!
//! The service is the coordination point of the online runtime:
//!
//! 1. the **compiler** makes *one* request per job, sending the job's
//!    normalized tags; the service answers from a tag-inverted index with
//!    every annotation that might be relevant (false positives allowed —
//!    the optimizer re-checks signatures);
//! 2. the **optimizer** proposes view materializations; the service hands
//!    out *exclusive build locks* whose expiry is derived from the mined
//!    average runtime of the subgraph, making builds fault-tolerant (a
//!    crashed builder's lock lapses and another job retries);
//! 3. the **job manager** reports successful materializations, releasing
//!    the lock and making the view visible to future lookups.
//!
//! The production system backs this with AzureSQL; here it is an in-process
//! thread-safe service (see DESIGN.md substitution table). Lookup latency is
//! modeled after the paper's measurements (19 ms single-threaded, 14.3 ms
//! with 5 service threads) via a calibrated base + per-thread service term.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use scope_common::hash::Sig128;
use scope_common::ids::JobId;
use scope_common::time::{SimClock, SimDuration, SimTime};
use scope_engine::optimizer::{Annotation, AvailableView, ViewServices};

use crate::analyzer::SelectedView;

/// Result of a materialization proposal (Figure 9, step 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// Exclusive lock granted: the proposing job builds the view.
    Acquired,
    /// Another job holds an unexpired build lock.
    AlreadyLocked,
    /// The view already exists; nothing to build.
    AlreadyMaterialized,
}

/// A registered, currently materialized view.
#[derive(Clone, Debug)]
struct RegisteredView {
    view: AvailableView,
    producer: JobId,
    created_at: SimTime,
    expires_at: SimTime,
}

#[derive(Clone, Debug)]
struct BuildLock {
    holder: JobId,
    expires_at: SimTime,
}

/// Service counters (reporting requirement 7 of Section 4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetadataStats {
    /// Per-job annotation lookups served.
    pub lookups: u64,
    /// Total annotations returned across lookups.
    pub annotations_returned: u64,
    /// Build locks granted.
    pub locks_granted: u64,
    /// Proposals rejected because another job held the lock.
    pub lock_conflicts: u64,
    /// Proposals rejected because the view already existed.
    pub already_materialized: u64,
    /// Successful materializations reported.
    pub views_registered: u64,
}

/// The metadata service.
pub struct MetadataService {
    /// Annotations by normalized signature.
    annotations: RwLock<HashMap<Sig128, Annotation>>,
    /// Inverted index: normalized tag → normalized signatures.
    inverted: RwLock<HashMap<String, HashSet<Sig128>>>,
    /// Exclusive build locks by precise signature.
    locks: Mutex<HashMap<Sig128, BuildLock>>,
    /// Registered materialized views by precise signature.
    views: RwLock<HashMap<Sig128, RegisteredView>>,
    /// Shared simulated clock.
    clock: Arc<SimClock>,
    /// Number of service threads (affects modeled lookup latency).
    service_threads: usize,
    stats: Mutex<MetadataStats>,
}

impl MetadataService {
    /// A service with the given clock and thread count.
    pub fn new(clock: Arc<SimClock>, service_threads: usize) -> Self {
        MetadataService {
            annotations: RwLock::new(HashMap::new()),
            inverted: RwLock::new(HashMap::new()),
            locks: Mutex::new(HashMap::new()),
            views: RwLock::new(HashMap::new()),
            clock,
            service_threads: service_threads.max(1),
            stats: Mutex::new(MetadataStats::default()),
        }
    }

    /// Loads (replacing) the analyzer's selected views as annotations and
    /// rebuilds the inverted index ("the metadata service periodically
    /// polls for the output of the CloudViews analyzer").
    pub fn load_annotations(&self, selected: &[SelectedView]) {
        let mut annotations = self.annotations.write();
        let mut inverted = self.inverted.write();
        annotations.clear();
        inverted.clear();
        for s in selected {
            annotations.insert(s.annotation.normalized, s.annotation.clone());
            for tag in &s.input_tags {
                inverted
                    .entry(tag.clone())
                    .or_default()
                    .insert(s.annotation.normalized);
            }
        }
    }

    /// Figure 9 steps 1/2: one lookup per job. Returns every annotation
    /// whose tags intersect the job's tags (an over-approximation the
    /// optimizer narrows by matching actual signatures), plus the modeled
    /// service latency for the request.
    pub fn relevant_views_for(&self, job_tags: &[String]) -> (Vec<Annotation>, SimDuration) {
        let inverted = self.inverted.read();
        let annotations = self.annotations.read();
        let mut sigs: HashSet<Sig128> = HashSet::new();
        for tag in job_tags {
            if let Some(set) = inverted.get(tag) {
                sigs.extend(set.iter().copied());
            }
        }
        let result: Vec<Annotation> =
            sigs.iter().filter_map(|s| annotations.get(s).cloned()).collect();
        let mut stats = self.stats.lock();
        stats.lookups += 1;
        stats.annotations_returned += result.len() as u64;
        (result, self.lookup_latency())
    }

    /// Modeled lookup latency: a fixed network+query base plus a service
    /// term that parallelizes across service threads. Calibrated to the
    /// paper's 19 ms (1 thread) and 14.3 ms (5 threads).
    pub fn lookup_latency(&self) -> SimDuration {
        let ms = 13.12 + 5.88 / self.service_threads as f64;
        SimDuration::from_secs_f64(ms / 1e3)
    }

    /// Figure 9 steps 3/4: propose to materialize `precise`. Grants an
    /// exclusive lock expiring after `lock_ttl` (mined from the subgraph's
    /// average runtime) unless the view exists or the lock is taken.
    pub fn propose(
        &self,
        precise: Sig128,
        job: JobId,
        lock_ttl: SimDuration,
    ) -> LockOutcome {
        let now = self.clock.now();
        if self.lookup_view(precise, now).is_some() {
            self.stats.lock().already_materialized += 1;
            return LockOutcome::AlreadyMaterialized;
        }
        let mut locks = self.locks.lock();
        match locks.get(&precise) {
            Some(lock) if lock.expires_at > now && lock.holder != job => {
                self.stats.lock().lock_conflicts += 1;
                LockOutcome::AlreadyLocked
            }
            _ => {
                locks.insert(precise, BuildLock { holder: job, expires_at: now + lock_ttl });
                self.stats.lock().locks_granted += 1;
                LockOutcome::Acquired
            }
        }
    }

    /// Figure 9 steps 5/6: the job manager reports a successful
    /// materialization; the lock is released and the view becomes visible
    /// to future lookups from `available_at` (early materialization may
    /// pre-date job completion).
    pub fn report_materialized(
        &self,
        view: AvailableView,
        producer: JobId,
        available_at: SimTime,
        expires_at: SimTime,
    ) {
        let precise = view.precise;
        self.views.write().entry(precise).or_insert(RegisteredView {
            view,
            producer,
            created_at: available_at,
            expires_at,
        });
        self.locks.lock().remove(&precise);
        self.stats.lock().views_registered += 1;
    }

    /// View lookup as of an explicit time (used by the runtime to pin a
    /// job's visibility to its submission time under overlapped arrivals).
    pub fn view_available_at(&self, precise: Sig128, now: SimTime) -> Option<AvailableView> {
        self.lookup_view(precise, now)
    }

    fn lookup_view(&self, precise: Sig128, now: SimTime) -> Option<AvailableView> {
        let views = self.views.read();
        views
            .get(&precise)
            .filter(|v| v.created_at <= now && v.expires_at > now)
            .map(|v| v.view.clone())
    }

    /// Producer job of a registered view (provenance, requirement 6).
    pub fn view_producer(&self, precise: Sig128) -> Option<JobId> {
        self.views.read().get(&precise).map(|v| v.producer)
    }

    /// Drops expired views and lapsed locks; returns how many views were
    /// purged. The storage manager purges the corresponding files.
    pub fn purge_expired(&self) -> usize {
        let now = self.clock.now();
        let mut views = self.views.write();
        let before = views.len();
        views.retain(|_, v| v.expires_at > now);
        let purged = before - views.len();
        self.locks.lock().retain(|_, l| l.expires_at > now);
        purged
    }

    /// Unregisters specific views (admin space reclamation, Section 5.4:
    /// "cleaning the views from the metadata service first before deleting
    /// any of the physical files").
    pub fn unregister_views(&self, precise: &[Sig128]) {
        let mut views = self.views.write();
        for p in precise {
            views.remove(p);
        }
    }

    /// Registered (non-expired) view count.
    pub fn num_views(&self) -> usize {
        self.views.read().len()
    }

    /// Loaded annotation count.
    pub fn num_annotations(&self) -> usize {
        self.annotations.read().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MetadataStats {
        *self.stats.lock()
    }

    /// The shared clock (used by the runtime to time operations).
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }
}

impl ViewServices for MetadataService {
    fn view_available(&self, precise: Sig128) -> Option<AvailableView> {
        self.lookup_view(precise, self.clock.now())
    }

    fn propose_materialize(
        &self,
        precise: Sig128,
        _normalized: Sig128,
        job: JobId,
        lock_ttl: SimDuration,
    ) -> bool {
        self.propose(precise, job, lock_ttl) == LockOutcome::Acquired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::sip128;
    use scope_plan::PhysicalProps;

    fn selected(normalized: Sig128, tags: &[&str]) -> SelectedView {
        SelectedView {
            annotation: Annotation {
                normalized,
                props: PhysicalProps::any(),
                ttl: SimDuration::from_secs(3600),
                avg_cpu: SimDuration::from_secs(10),
                avg_rows: 100,
                avg_bytes: 1000,
            },
            input_tags: tags.iter().map(|s| s.to_string()).collect(),
            utility: SimDuration::from_secs(30),
            frequency: 3,
            precise_last_seen: Sig128::ZERO,
        }
    }

    fn service() -> MetadataService {
        MetadataService::new(Arc::new(SimClock::new()), 1)
    }

    fn a_view(precise: Sig128) -> AvailableView {
        AvailableView { precise, rows: 10, bytes: 100, props: PhysicalProps::any() }
    }

    #[test]
    fn inverted_index_lookup() {
        let m = service();
        let n1 = sip128(b"n1");
        let n2 = sip128(b"n2");
        m.load_annotations(&[
            selected(n1, &["in/a.ss", "in/b.ss"]),
            selected(n2, &["in/c.ss"]),
        ]);
        assert_eq!(m.num_annotations(), 2);
        let (hits, latency) = m.relevant_views_for(&["in/b.ss".into()]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].normalized, n1);
        assert!(latency > SimDuration::ZERO);
        // Multi-tag job gets the union.
        let (hits, _) = m.relevant_views_for(&["in/a.ss".into(), "in/c.ss".into()]);
        assert_eq!(hits.len(), 2);
        // Unknown tags: empty.
        let (hits, _) = m.relevant_views_for(&["in/zzz.ss".into()]);
        assert!(hits.is_empty());
        assert_eq!(m.stats().lookups, 3);
    }

    #[test]
    fn reload_replaces_annotations() {
        let m = service();
        m.load_annotations(&[selected(sip128(b"old"), &["t"])]);
        m.load_annotations(&[selected(sip128(b"new"), &["t"])]);
        let (hits, _) = m.relevant_views_for(&["t".into()]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].normalized, sip128(b"new"));
    }

    #[test]
    fn exclusive_lock_protocol() {
        let m = service();
        let p = sip128(b"view");
        let ttl = SimDuration::from_secs(60);
        assert_eq!(m.propose(p, JobId::new(1), ttl), LockOutcome::Acquired);
        // Second job is refused.
        assert_eq!(m.propose(p, JobId::new(2), ttl), LockOutcome::AlreadyLocked);
        // The holder itself may re-propose (idempotent re-acquire).
        assert_eq!(m.propose(p, JobId::new(1), ttl), LockOutcome::Acquired);
        // After the build is reported, proposals see AlreadyMaterialized.
        m.report_materialized(a_view(p), JobId::new(1), SimTime::ZERO, SimTime::MAX);
        assert_eq!(m.propose(p, JobId::new(3), ttl), LockOutcome::AlreadyMaterialized);
        let stats = m.stats();
        assert_eq!(stats.lock_conflicts, 1);
        assert_eq!(stats.views_registered, 1);
    }

    #[test]
    fn lock_expiry_is_fault_tolerant() {
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::new(Arc::clone(&clock), 1);
        let p = sip128(b"crashy");
        assert_eq!(
            m.propose(p, JobId::new(1), SimDuration::from_secs(10)),
            LockOutcome::Acquired
        );
        // Builder "crashes"; 11 seconds later another job may take over.
        clock.advance(SimDuration::from_secs(11));
        assert_eq!(
            m.propose(p, JobId::new(2), SimDuration::from_secs(10)),
            LockOutcome::Acquired
        );
    }

    #[test]
    fn views_respect_availability_window() {
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::new(Arc::clone(&clock), 1);
        let p = sip128(b"early");
        // Published with created_at in the future (early materialization
        // by a job that started later than now).
        m.report_materialized(a_view(p), JobId::new(1), SimTime(5_000_000), SimTime(10_000_000));
        assert!(m.view_available(p).is_none(), "not yet available");
        clock.advance(SimDuration::from_secs(6));
        assert!(m.view_available(p).is_some());
        clock.advance(SimDuration::from_secs(10));
        assert!(m.view_available(p).is_none(), "expired");
        assert_eq!(m.purge_expired(), 1);
        assert_eq!(m.num_views(), 0);
    }

    #[test]
    fn unregister_clears_metadata_first() {
        let m = service();
        let p = sip128(b"gone");
        m.report_materialized(a_view(p), JobId::new(1), SimTime::ZERO, SimTime::MAX);
        m.unregister_views(&[p]);
        assert!(m.view_available(p).is_none());
    }

    #[test]
    fn lookup_latency_matches_paper_calibration() {
        let single = MetadataService::new(Arc::new(SimClock::new()), 1);
        let five = MetadataService::new(Arc::new(SimClock::new()), 5);
        let l1 = single.lookup_latency().as_secs_f64() * 1e3;
        let l5 = five.lookup_latency().as_secs_f64() * 1e3;
        assert!((l1 - 19.0).abs() < 0.1, "{l1}");
        assert!((l5 - 14.3).abs() < 0.1, "{l5}");
    }

    #[test]
    fn concurrent_proposals_single_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let m = Arc::new(service());
        let p = sip128(b"contended");
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let m = Arc::clone(&m);
                let wins = Arc::clone(&wins);
                std::thread::spawn(move || {
                    if m.propose(p, JobId::new(i), SimDuration::from_secs(60))
                        == LockOutcome::Acquired
                    {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one job builds");
    }

    #[test]
    fn view_producer_provenance() {
        let m = service();
        let p = sip128(b"prov");
        m.report_materialized(a_view(p), JobId::new(42), SimTime::ZERO, SimTime::MAX);
        assert_eq!(m.view_producer(p), Some(JobId::new(42)));
        assert_eq!(m.view_producer(sip128(b"other")), None);
    }

    #[test]
    fn first_report_wins() {
        let m = service();
        let p = sip128(b"dup");
        m.report_materialized(a_view(p), JobId::new(1), SimTime::ZERO, SimTime::MAX);
        m.report_materialized(a_view(p), JobId::new(2), SimTime::ZERO, SimTime::MAX);
        assert_eq!(m.view_producer(p), Some(JobId::new(1)));
        assert_eq!(m.num_views(), 1);
    }
}
