//! The CloudViews metadata service (paper Section 6.1, Figure 9).
//!
//! The service is the coordination point of the online runtime:
//!
//! 1. the **compiler** makes *one* request per job, sending the job's
//!    normalized tags; the service answers from a tag-inverted index with
//!    every annotation that might be relevant (false positives allowed —
//!    the optimizer re-checks signatures);
//! 2. the **optimizer** proposes view materializations; the service hands
//!    out *exclusive build locks* whose expiry is derived from the mined
//!    average runtime of the subgraph, making builds fault-tolerant (a
//!    crashed builder's lock lapses and another job retries);
//! 3. the **job manager** reports successful materializations, releasing
//!    the lock and making the view visible to future lookups.
//!
//! The production system backs this with AzureSQL; here it is an in-process
//! thread-safe service (see DESIGN.md substitution table). Lookup latency is
//! modeled after the paper's measurements (19 ms single-threaded, 14.3 ms
//! with 5 service threads) via a calibrated base + per-thread service term.
//!
//! ## Sharding (DESIGN.md §10)
//!
//! All four hot maps — annotations, the inverted index, registered views,
//! and build locks — are split over a power-of-two number of
//! signature-keyed [`Sharded`] shards (16 by default, the same pattern the
//! metrics registry uses). A lookup takes only *read* locks, each shard's
//! at most once per request: one probe per tag bucket, then one pass per
//! annotation shard with the candidate signatures grouped by shard. The
//! lock protocol is shard-local to the precise signature, so proposals on
//! different views never contend. Purging is incremental: a janitor sweeps
//! one shard at a time ([`MetadataService::purge_next_shard`]), dropping
//! expired views *and* the annotation/inverted-index entries they strand in
//! one consistent pass; [`MetadataService::purge_expired`] is a full sweep
//! of every shard. Service counters are plain atomics — the old global
//! stats mutex serialized every lookup even when the maps themselves were
//! sharded.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use scope_common::hash::Sig128;
use scope_common::ids::JobId;
use scope_common::intern::Symbol;
use scope_common::shard::Sharded;
use scope_common::telemetry::{Counter, Gauge, Histogram, MetricUnit, Telemetry};
use scope_common::time::{SimClock, SimDuration, SimTime};
use scope_common::{Result, ScopeError};
use scope_engine::optimizer::{Annotation, AvailableView, SubsumedView, ViewServices};
use scope_signature::SubsumeDescriptor;

use crate::analyzer::SelectedView;
use crate::api::{LookupRequest, ProposeRequest, ReportRequest};
use crate::codec::{
    get_annotation, get_available_view, get_descriptor, get_sig, get_sigs, get_symbols, get_time,
    put_annotation, put_available_view, put_descriptor, put_sig, put_sigs, put_symbols, put_time,
};
use crate::faults::{FaultInjector, FaultSite};
use crate::store::{DurableStore, WalEvent};
use scope_common::codec::{CodecError, Dec, Enc};
use scope_common::hash::sip128;

/// Default shard count, matching the metrics registry's 16-way split.
const DEFAULT_SHARDS: usize = 16;

/// Result of a materialization proposal (Figure 9, step 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// Exclusive lock granted: the proposing job builds the view.
    Acquired,
    /// Another job holds an unexpired build lock.
    AlreadyLocked,
    /// The view already exists; nothing to build.
    AlreadyMaterialized,
}

/// Typed result of the per-job annotation lookup (replaces the old
/// `(Vec<Annotation>, SimDuration)` tuple).
#[derive(Clone, Debug, Default)]
pub struct LookupResponse {
    /// Annotations whose tags intersect the job's tags (an
    /// over-approximation the optimizer narrows by matching signatures).
    pub annotations: Vec<Annotation>,
    /// Tier-2 subsumption candidates: views live at the pinned lookup time
    /// whose feature vectors passed the cheap compatibility gate against
    /// the job's probes (the optimizer runs the full subsumption check).
    pub tier2: Vec<SubsumedView>,
    /// Modeled service latency for the request.
    pub latency: SimDuration,
    /// Number of the job's tags that hit the inverted index.
    pub hit_count: usize,
}

/// What one purge pass reclaimed (a single shard for the incremental
/// janitor, or every shard for [`MetadataService::purge_expired`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PurgeSweep {
    /// Expired views dropped.
    pub views_purged: usize,
    /// Annotation entries (with their inverted-index postings) swept
    /// because their views died and their GC horizon lapsed.
    pub annotations_purged: usize,
}

impl PurgeSweep {
    fn absorb(&mut self, other: PurgeSweep) {
        self.views_purged += other.views_purged;
        self.annotations_purged += other.annotations_purged;
    }
}

/// Cached telemetry handles for the service's hot paths: resolved once at
/// [`MetadataService::set_telemetry`], then one atomic op per event.
struct MetadataMetrics {
    sink: Arc<Telemetry>,
    lookups: Counter,
    lookup_annotations: Counter,
    lookup_tag_hits: Counter,
    lookup_misses: Counter,
    lookup_faults: Counter,
    lookup_sim_micros: Histogram,
    lookup_wall_micros: Histogram,
    tier2_hits: Counter,
    tier2_rejects: Counter,
    lookup_tier1_sim_micros: Histogram,
    lookup_tier2_sim_micros: Histogram,
    proposes: Counter,
    locks_granted: Counter,
    lock_conflicts: Counter,
    already_materialized: Counter,
    expired_takeovers: Counter,
    propose_faults: Counter,
    report_faults: Counter,
    views_registered: Counter,
    purged_annotations: Counter,
    build_locks: Gauge,
    registered_views: Gauge,
}

impl MetadataMetrics {
    fn new(sink: Arc<Telemetry>) -> MetadataMetrics {
        let m = &sink.metrics;
        MetadataMetrics {
            lookups: m.counter("cv_metadata_lookups_total"),
            lookup_annotations: m.counter("cv_metadata_lookup_annotations_total"),
            lookup_tag_hits: m.counter("cv_metadata_lookup_tag_hits_total"),
            lookup_misses: m.counter("cv_metadata_lookup_misses_total"),
            lookup_faults: m.counter("cv_metadata_lookup_faults_total"),
            lookup_sim_micros: m.histogram("cv_metadata_lookup_sim_micros", MetricUnit::SimMicros),
            lookup_wall_micros: m
                .histogram("cv_metadata_lookup_wall_micros", MetricUnit::WallMicros),
            tier2_hits: m.counter("cv_metadata_tier2_hits_total"),
            tier2_rejects: m.counter("cv_metadata_tier2_rejects_total"),
            lookup_tier1_sim_micros: m
                .histogram("cv_metadata_lookup_tier1_sim_micros", MetricUnit::SimMicros),
            lookup_tier2_sim_micros: m
                .histogram("cv_metadata_lookup_tier2_sim_micros", MetricUnit::SimMicros),
            proposes: m.counter("cv_metadata_proposes_total"),
            locks_granted: m.counter("cv_metadata_locks_granted_total"),
            lock_conflicts: m.counter("cv_metadata_lock_conflicts_total"),
            already_materialized: m.counter("cv_metadata_already_materialized_total"),
            expired_takeovers: m.counter("cv_metadata_expired_takeovers_total"),
            propose_faults: m.counter("cv_metadata_propose_faults_total"),
            report_faults: m.counter("cv_metadata_report_faults_total"),
            views_registered: m.counter("cv_metadata_views_registered_total"),
            purged_annotations: m.counter("cv_metadata_purged_annotations_total"),
            build_locks: m.gauge("cv_metadata_build_locks"),
            registered_views: m.gauge("cv_metadata_registered_views"),
            sink,
        }
    }

    fn enabled(&self) -> bool {
        self.sink.is_enabled()
    }
}

/// A registered, currently materialized view. `normalized` links the view
/// back to its driving annotation so that purging a dead view can clean the
/// annotation and inverted-index entries in the same pass (without the link,
/// those entries leaked and kept matching future lookups forever).
#[derive(Clone, Debug)]
struct RegisteredView {
    view: AvailableView,
    normalized: Sig128,
    producer: JobId,
    created_at: SimTime,
    expires_at: SimTime,
    /// Subsumption descriptor of the materialized root, when the view's
    /// subgraph is tier-2 eligible (unary Filter/Project/Aggregate with an
    /// extractable feature vector). `None` keeps the view tier-1-only.
    descriptor: Option<SubsumeDescriptor>,
}

/// An installed annotation plus the bookkeeping the janitor needs to sweep
/// it consistently with the views it produced.
#[derive(Clone, Debug)]
struct AnnotationEntry {
    annotation: Annotation,
    /// The tags indexing this entry, kept so removal can drain the exact
    /// inverted-index buckets without a full index scan.
    tags: Vec<Symbol>,
    /// GC horizon. Starts at install time + TTL and is *renewed* to
    /// `view_expiry + TTL` by every registration for this normalized
    /// signature: a build proves the annotation still matches the live
    /// workload, and the grace period keeps recurring templates alive
    /// across the gap between one instance's view expiring and the next
    /// instance building. Once the workload changes and builds stop, the
    /// entry lapses one TTL after its last view expired.
    keep_until: SimTime,
    /// Precise signatures of the currently registered views built from
    /// this annotation (pruned as those views are purged/unregistered).
    precise_views: Vec<Sig128>,
}

#[derive(Clone, Debug)]
struct BuildLock {
    holder: JobId,
    expires_at: SimTime,
}

/// Service counters (reporting requirement 7 of Section 4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetadataStats {
    /// Per-job annotation lookups served.
    pub lookups: u64,
    /// Total annotations returned across lookups.
    pub annotations_returned: u64,
    /// Build locks granted.
    pub locks_granted: u64,
    /// Proposals rejected because another job held the lock.
    pub lock_conflicts: u64,
    /// Proposals rejected because the view already existed.
    pub already_materialized: u64,
    /// Successful materializations reported.
    pub views_registered: u64,
    /// Locks granted by taking over a different holder's *expired* lock
    /// (the paper's crashed-builder recovery path).
    pub expired_takeovers: u64,
    /// Lookup calls failed by the fault injector.
    pub failed_lookups: u64,
    /// Propose calls failed by the fault injector.
    pub failed_proposals: u64,
    /// Report calls failed by the fault injector.
    pub failed_reports: u64,
    /// Annotation entries swept (with their inverted-index entries) because
    /// their views died and their GC horizon lapsed.
    pub purged_annotations: u64,
    /// Tier-2 candidate views that passed the feature-vector gate and were
    /// returned to the optimizer.
    pub tier2_hits: u64,
    /// Tier-2 candidate views rejected by the feature-vector gate (or
    /// lacking a descriptor / liveness at the pinned lookup time).
    pub tier2_rejects: u64,
}

/// Lock-free service counters. The pre-shard service funneled every lookup
/// through one `Mutex<MetadataStats>`, which serialized the read path even
/// after the maps were sharded; each cell here is an independent relaxed
/// atomic (the snapshot is monotonic per counter, not a consistent cut —
/// exactly what a stats endpoint needs).
#[derive(Default)]
struct StatCells {
    lookups: AtomicU64,
    annotations_returned: AtomicU64,
    locks_granted: AtomicU64,
    lock_conflicts: AtomicU64,
    already_materialized: AtomicU64,
    views_registered: AtomicU64,
    expired_takeovers: AtomicU64,
    failed_lookups: AtomicU64,
    failed_proposals: AtomicU64,
    failed_reports: AtomicU64,
    purged_annotations: AtomicU64,
    tier2_hits: AtomicU64,
    tier2_rejects: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> MetadataStats {
        MetadataStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            annotations_returned: self.annotations_returned.load(Ordering::Relaxed),
            locks_granted: self.locks_granted.load(Ordering::Relaxed),
            lock_conflicts: self.lock_conflicts.load(Ordering::Relaxed),
            already_materialized: self.already_materialized.load(Ordering::Relaxed),
            views_registered: self.views_registered.load(Ordering::Relaxed),
            expired_takeovers: self.expired_takeovers.load(Ordering::Relaxed),
            failed_lookups: self.failed_lookups.load(Ordering::Relaxed),
            failed_proposals: self.failed_proposals.load(Ordering::Relaxed),
            failed_reports: self.failed_reports.load(Ordering::Relaxed),
            purged_annotations: self.purged_annotations.load(Ordering::Relaxed),
            tier2_hits: self.tier2_hits.load(Ordering::Relaxed),
            tier2_rejects: self.tier2_rejects.load(Ordering::Relaxed),
        }
    }
}

/// One shard of the service state. The four maps are keyed independently —
/// annotations by normalized signature, views and locks by precise
/// signature, the inverted index by tag symbol — so one logical operation
/// may touch maps in *different* shards; every method acquires at most one
/// write lock at a time (collect-then-act) except the documented nested
/// `annotations → views` read in the sweep.
#[derive(Default)]
struct MetadataShard {
    /// Annotations by normalized signature.
    annotations: RwLock<HashMap<Sig128, AnnotationEntry>>,
    /// Inverted index: normalized tag → normalized signatures. Keys are
    /// interned symbols, so a lookup probe is integer hashing.
    inverted: RwLock<HashMap<Symbol, HashSet<Sig128>>>,
    /// Registered materialized views by precise signature.
    views: RwLock<HashMap<Sig128, RegisteredView>>,
    /// Exclusive build locks by precise signature.
    locks: Mutex<HashMap<Sig128, BuildLock>>,
}

/// The metadata service.
pub struct MetadataService {
    shards: Sharded<MetadataShard>,
    /// Shared simulated clock.
    clock: Arc<SimClock>,
    /// Number of service threads (affects modeled lookup latency); clamped
    /// to at least 1 at construction — the latency model divides by it.
    service_threads: usize,
    stats: StatCells,
    /// Round-robin cursor for [`MetadataService::purge_next_shard`].
    janitor_cursor: AtomicUsize,
    /// Optional fault injector consulted by the fallible entrypoints.
    faults: RwLock<Option<Arc<FaultInjector>>>,
    /// Optional telemetry sink with pre-resolved handles.
    telemetry: RwLock<Option<MetadataMetrics>>,
    /// Optional durability hook: every state-changing entrypoint appends
    /// its [`WalEvent`] here *before* mutating in-memory state. `None`
    /// (the default) keeps the service purely in-memory.
    durable: RwLock<Option<Arc<DurableStore>>>,
}

impl MetadataService {
    /// A service with the given clock and thread count and the default
    /// 16-way sharding.
    pub fn new(clock: Arc<SimClock>, service_threads: usize) -> Self {
        MetadataService::with_shards(clock, service_threads, DEFAULT_SHARDS)
    }

    /// A service with an explicit shard count (clamped to a power of two;
    /// `1` gives the global-lock layout, useful as a contention baseline).
    pub fn with_shards(clock: Arc<SimClock>, service_threads: usize, shards: usize) -> Self {
        MetadataService {
            shards: Sharded::new(shards, |_| MetadataShard::default()),
            clock,
            service_threads: service_threads.max(1),
            stats: StatCells::default(),
            janitor_cursor: AtomicUsize::new(0),
            faults: RwLock::new(None),
            telemetry: RwLock::new(None),
            durable: RwLock::new(None),
        }
    }

    /// Installs (or clears) the durable store. Attach it *after* replaying
    /// recovered state — [`MetadataService::apply_event`] and
    /// [`MetadataService::import_state`] never log, but the live
    /// entrypoints do, and re-logging a replay would double the WAL.
    pub fn set_durable(&self, store: Option<Arc<DurableStore>>) {
        *self.durable.write() = store;
    }

    /// Appends `ev` to the WAL when durability is on. Called *before* the
    /// corresponding in-memory mutation (write-ahead), sometimes while a
    /// shard lock is held — the store's log mutex is a leaf, so that is
    /// safe by the documented lock order.
    fn log_event(&self, ev: &WalEvent) {
        if let Some(store) = self.durable.read().as_ref() {
            store.append_event(ev);
        }
    }

    /// Number of shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard owning a signature-keyed entry (annotations by normalized,
    /// views/locks by precise). Sip output is uniform, but it still goes
    /// through the sharder's mixer — harmless, and keeps one code path.
    fn sig_shard(&self, sig: Sig128) -> &MetadataShard {
        self.shards.for_key(sig.lo ^ sig.hi)
    }

    fn sig_shard_index(&self, sig: Sig128) -> usize {
        self.shards.index_for(sig.lo ^ sig.hi)
    }

    /// Shard owning a tag's inverted-index bucket. Interned symbols are
    /// sequential integers; the sharder's mixer spreads them.
    fn tag_shard_index(&self, tag: Symbol) -> usize {
        self.shards.index_for(tag.raw() as u64)
    }

    /// Installs (or clears) the fault injector consulted by the fallible
    /// entrypoints. Without one, every call succeeds.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.faults.write() = injector;
    }

    /// Installs (or clears) the telemetry sink. Handles are resolved once
    /// here so per-call recording is a handful of atomic operations.
    pub fn set_telemetry(&self, sink: Option<Arc<Telemetry>>) {
        *self.telemetry.write() = sink.map(MetadataMetrics::new);
    }

    fn injected_failure(&self, site: FaultSite, job: JobId) -> bool {
        match self.faults.read().as_ref() {
            Some(inj) => inj.should_fail(site, job),
            None => false,
        }
    }

    /// Loads (replacing) the analyzer's selected views as annotations and
    /// rebuilds the inverted index ("the metadata service periodically
    /// polls for the output of the CloudViews analyzer").
    pub fn load_annotations(&self, selected: &[SelectedView]) {
        self.load_annotations_at(selected, self.clock.now());
    }

    /// [`MetadataService::load_annotations`] at an explicit pinned time
    /// (the time drives each annotation's `keep_until`, so a WAL replay
    /// must reuse the recorded instant, not the live clock).
    pub fn load_annotations_at(&self, selected: &[SelectedView], now: SimTime) {
        self.log_event(&WalEvent::LoadAnnotations {
            selected: selected.to_vec(),
            now,
        });
        self.apply_load_annotations(selected, now);
    }

    /// Mutation core of annotation loading; never logs (shared by the live
    /// path and WAL replay).
    fn apply_load_annotations(&self, selected: &[SelectedView], now: SimTime) {
        for shard in &self.shards {
            shard.annotations.write().clear();
            shard.inverted.write().clear();
        }
        for s in selected {
            self.sig_shard(s.annotation.normalized)
                .annotations
                .write()
                .insert(
                    s.annotation.normalized,
                    AnnotationEntry {
                        keep_until: now + s.annotation.ttl,
                        annotation: s.annotation.clone(),
                        tags: s.input_tags.clone(),
                        precise_views: Vec::new(),
                    },
                );
            for &tag in &s.input_tags {
                self.shards
                    .at(self.tag_shard_index(tag))
                    .inverted
                    .write()
                    .entry(tag)
                    .or_default()
                    .insert(s.annotation.normalized);
            }
        }
    }

    /// Figure 9 steps 1/2: one lookup per job, attributed to `job` so the
    /// fault injector can fail it deterministically. Returns every
    /// annotation whose tags intersect the job's tags (an
    /// over-approximation the optimizer narrows by matching actual
    /// signatures), plus the modeled service latency for the request.
    ///
    /// The read path is a single pass over per-shard *read* locks: one
    /// inverted-bucket probe per tag, then the candidate signatures grouped
    /// by annotation shard so each shard's lock is taken at most once. No
    /// two locks are ever held together.
    ///
    /// **Fault-injection contract:** when the installed injector fires
    /// [`FaultSite::MetadataLookup`] for `job`, the call returns
    /// `ServiceUnavailable` and the index is never consulted. The runtime
    /// retries with backoff and then falls back to the baseline plan
    /// (DESIGN.md "Fault tolerance & degradation").
    pub fn relevant_views_for(&self, job: JobId, job_tags: &[Symbol]) -> Result<LookupResponse> {
        self.lookup(&LookupRequest::new(job, job_tags, self.clock.now()))
    }

    /// The single pinned-time cascade lookup:
    /// [`MetadataService::relevant_views_for`] plus the tier-2 candidate
    /// scan, judged at the request's pinned submission time (`req.at`).
    ///
    /// Tier-1 is unchanged — every tag-matching annotation is returned with
    /// no time filtering (annotation GC is the janitor's job, and the
    /// optimizer still has to rebuild views whose files expired). Tier-2
    /// walks the matched annotations' registered-view backrefs and returns
    /// each view that (a) is live at `req.at` — **the caller's pinned
    /// clock, not the service's** — so a job pinned to its submission time
    /// never sees a view that expired mid-flight or was published after it
    /// started; (b) carries a subsumption descriptor; and (c) passes the
    /// cheap feature-vector gate against at least one of the request's
    /// `probes`. Everything else is counted as a tier-2 reject and never
    /// reaches plan inspection.
    pub fn lookup(&self, req: &LookupRequest) -> Result<LookupResponse> {
        let (job, job_tags, probes, at) = (req.job, &req.tags, &req.probes, req.at);
        if self.injected_failure(FaultSite::MetadataLookup, job) {
            self.stats.failed_lookups.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.telemetry.read().as_ref() {
                t.lookup_faults.inc();
            }
            return Err(ScopeError::ServiceUnavailable(format!(
                "metadata lookup for {job} timed out"
            )));
        }
        let wall_start = Instant::now();
        // One flat candidate buffer, sorted by owning shard, instead of a
        // Vec-per-shard: candidate sets are small (a handful of tag hits),
        // so one allocation + a tiny sort beats up to `shards` inner-Vec
        // allocations per request on the uncontended path.
        let mut candidates: Vec<(usize, Sig128)> = Vec::new();
        let mut seen: HashSet<Sig128> = HashSet::new();
        let mut hit_count = 0usize;
        for tag in job_tags {
            let inverted = self.shards.at(self.tag_shard_index(*tag)).inverted.read();
            if let Some(set) = inverted.get(tag) {
                hit_count += 1;
                for &sig in set {
                    if seen.insert(sig) {
                        candidates.push((self.sig_shard_index(sig), sig));
                    }
                }
            }
        }
        candidates.sort_unstable_by_key(|&(shard, _)| shard);
        let mut result: Vec<Annotation> = Vec::with_capacity(candidates.len());
        // Tier-2 raw material, collected under the same annotation guards:
        // each matched annotation's registered-view backrefs plus its mined
        // recompute cost. The view shards are probed only after every
        // annotations guard has dropped (strict one-lock-at-a-time).
        let mut backrefs: Vec<(Sig128, SimDuration, Vec<Sig128>)> = Vec::new();
        let mut rest = candidates.as_slice();
        while let Some(&(index, _)) = rest.first() {
            let run = rest.partition_point(|&(s, _)| s == index);
            let annotations = self.shards.at(index).annotations.read();
            for (_, s) in &rest[..run] {
                if let Some(e) = annotations.get(s) {
                    result.push(e.annotation.clone());
                    if !probes.is_empty() && !e.precise_views.is_empty() {
                        backrefs.push((
                            e.annotation.normalized,
                            e.annotation.avg_cpu,
                            e.precise_views.clone(),
                        ));
                    }
                }
            }
            rest = &rest[run..];
        }
        // Tier-2 candidate scan: feature-vector gate only, no plan
        // inspection. Rejects never leave the service.
        let mut tier2: Vec<SubsumedView> = Vec::new();
        let mut probed = 0usize;
        let mut rejects = 0u64;
        for (normalized, avg_cpu, precise_views) in backrefs {
            for precise in precise_views {
                probed += 1;
                let cand = {
                    let views = self.sig_shard(precise).views.read();
                    views
                        .get(&precise)
                        .filter(|v| v.created_at <= at && v.expires_at > at)
                        .and_then(|v| v.descriptor.as_ref().map(|d| (v.view.clone(), d.clone())))
                };
                match cand {
                    Some((view, descriptor))
                        if probes
                            .iter()
                            .any(|p| SubsumeDescriptor::quick_compat(p, &descriptor)) =>
                    {
                        tier2.push(SubsumedView {
                            view,
                            normalized,
                            descriptor,
                            avg_cpu,
                        });
                    }
                    _ => rejects += 1,
                }
            }
        }
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        self.stats
            .annotations_returned
            .fetch_add(result.len() as u64, Ordering::Relaxed);
        self.stats
            .tier2_hits
            .fetch_add(tier2.len() as u64, Ordering::Relaxed);
        self.stats
            .tier2_rejects
            .fetch_add(rejects, Ordering::Relaxed);
        let tier1_latency = self.lookup_latency();
        let tier2_latency = Self::tier2_scan_latency(probes.len(), probed);
        let latency = tier1_latency + tier2_latency;
        if let Some(t) = self.telemetry.read().as_ref() {
            t.lookups.inc();
            t.lookup_annotations.add(result.len() as u64);
            t.lookup_tag_hits.add(hit_count as u64);
            t.tier2_hits.add(tier2.len() as u64);
            t.tier2_rejects.add(rejects);
            if result.is_empty() {
                t.lookup_misses.inc();
            }
            if t.enabled() {
                t.lookup_sim_micros.record(latency.micros());
                t.lookup_tier1_sim_micros.record(tier1_latency.micros());
                t.lookup_tier2_sim_micros.record(tier2_latency.micros());
                t.lookup_wall_micros
                    .record(wall_start.elapsed().as_micros() as u64);
            }
        }
        Ok(LookupResponse {
            annotations: result,
            tier2,
            latency,
            hit_count,
        })
    }

    /// Modeled cost of the tier-2 candidate scan: a fixed probe-marshalling
    /// term plus a per-candidate bitset comparison. Both are tiny next to
    /// the 13–19 ms tier-1 base (the acceptance bar keeps cascade p99
    /// within 10% of exact-only), and zero when the job sends no probes.
    fn tier2_scan_latency(probes: usize, probed_views: usize) -> SimDuration {
        if probes == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(150 + 40 * probed_views as u64)
    }

    /// Modeled lookup latency: a fixed network+query base plus a service
    /// term that parallelizes across service threads. Calibrated to the
    /// paper's 19 ms (1 thread) and 14.3 ms (5 threads). `service_threads`
    /// is clamped to ≥ 1 at construction, so the division is always sound.
    pub fn lookup_latency(&self) -> SimDuration {
        let ms = 13.12 + 5.88 / self.service_threads as f64;
        SimDuration::from_secs_f64(ms / 1e3)
    }

    /// Thin default-now wrapper over [`MetadataService::propose`]: a
    /// proposal pinned at the service clock's current reading, for callers
    /// outside a submission wave (admin tooling, single-job tests).
    pub fn propose_now(
        &self,
        precise: Sig128,
        job: JobId,
        lock_ttl: SimDuration,
    ) -> Result<LockOutcome> {
        self.propose(&ProposeRequest::new(
            precise,
            job,
            lock_ttl,
            self.clock.now(),
        ))
    }

    /// Figure 9 steps 3/4: propose to materialize `req.precise`. Grants an
    /// exclusive lock expiring after `req.lock_ttl` (mined from the
    /// subgraph's average runtime) unless the view exists or the lock is
    /// taken. The protocol is entirely local to the shard owning the
    /// precise signature.
    ///
    /// The request is judged against its *pinned* clock (`req.at`, the
    /// job's submission time), mirroring [`MetadataService::lookup`].
    /// Judging lock expiry by the service's live clock is wrong under
    /// overlapped arrivals: peer jobs completing mid-wave advance the
    /// shared clock, which could lapse a still-running builder's lock and
    /// hand the same view to a second "takeover" winner. With every job in
    /// a wave proposing at its own submission time, a lock granted within
    /// the wave is never expired for the wave's peers, so each view has
    /// exactly one builder.
    ///
    /// **Fault-injection contract:** when the injector fires
    /// [`FaultSite::Propose`] for `req.job`, the proposal is lost: no lock
    /// is granted, the call returns `ServiceUnavailable`, and the caller
    /// simply skips materializing (the view stays buildable by a later
    /// job).
    pub fn propose(&self, req: &ProposeRequest) -> Result<LockOutcome> {
        let (precise, job, lock_ttl, at) = (req.precise, req.job, req.lock_ttl, req.at);
        if self.injected_failure(FaultSite::Propose, job) {
            self.stats.failed_proposals.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.telemetry.read().as_ref() {
                t.propose_faults.inc();
            }
            return Err(ScopeError::ServiceUnavailable(format!(
                "propose({precise}) by {job} timed out"
            )));
        }
        let outcome = self.propose_locked(precise, job, lock_ttl, at);
        if let Some(t) = self.telemetry.read().as_ref() {
            t.proposes.inc();
            match outcome {
                LockOutcome::Acquired => t.locks_granted.inc(),
                LockOutcome::AlreadyLocked => t.lock_conflicts.inc(),
                LockOutcome::AlreadyMaterialized => t.already_materialized.inc(),
            }
            t.build_locks.set(self.num_locks() as i64);
        }
        Ok(outcome)
    }

    /// The lock-protocol core, always infallible (fault checks and
    /// telemetry happen in [`MetadataService::propose`]).
    fn propose_locked(
        &self,
        precise: Sig128,
        job: JobId,
        lock_ttl: SimDuration,
        now: SimTime,
    ) -> LockOutcome {
        // Build dedup is an *existence* check, not a visibility check:
        // `view_live` ignores `created_at`, because a winner registering its
        // view with an `available_at` later than this job's pinned `now`
        // (early materialization offsets always land past the submission
        // time) has still built it — granting a second lock here would
        // duplicate the build. Only an *expired* view is rebuildable.
        if self.view_live(precise, now) {
            self.stats
                .already_materialized
                .fetch_add(1, Ordering::Relaxed);
            return LockOutcome::AlreadyMaterialized;
        }
        let shard = self.sig_shard(precise);
        let mut locks = shard.locks.lock();
        // Double-check under the shard's lock-table mutex: a concurrent
        // report_materialized may have registered the view (and released
        // its lock) between the unlocked check above and acquiring the
        // mutex; without the re-check this job would be granted a lock for
        // a view that already exists and duplicate the build.
        if self.view_live(precise, now) {
            self.stats
                .already_materialized
                .fetch_add(1, Ordering::Relaxed);
            return LockOutcome::AlreadyMaterialized;
        }
        match locks.get(&precise) {
            Some(lock) if lock.expires_at > now && lock.holder != job => {
                self.stats.lock_conflicts.fetch_add(1, Ordering::Relaxed);
                LockOutcome::AlreadyLocked
            }
            prev => {
                // The mutex serializes this whole block, so when several
                // jobs observe the same expired lock, exactly one reaches
                // this arm first and the rest see its fresh lock above.
                let takeover = matches!(
                    prev,
                    Some(lock) if lock.holder != job && lock.expires_at <= now
                );
                let expires_at = now + lock_ttl;
                // Write-ahead: the grant is logged while this shard's lock
                // mutex is held, so the WAL's grant order is exactly the
                // serialization order the mutex imposes (the log mutex is a
                // leaf — see the durable store's lock-ordering contract).
                self.log_event(&WalEvent::LockGranted {
                    precise,
                    holder: job,
                    at: now,
                    expires_at,
                });
                locks.insert(
                    precise,
                    BuildLock {
                        holder: job,
                        expires_at,
                    },
                );
                self.stats.locks_granted.fetch_add(1, Ordering::Relaxed);
                if takeover {
                    self.stats.expired_takeovers.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = self.telemetry.read().as_ref() {
                        t.expired_takeovers.inc();
                    }
                }
                LockOutcome::Acquired
            }
        }
    }

    /// Current holder and expiry of the build lock on `precise`, if any
    /// (expired locks are reported until purged — they are reclaimable, not
    /// gone).
    pub fn lock_holder(&self, precise: Sig128) -> Option<(JobId, SimTime)> {
        self.sig_shard(precise)
            .locks
            .lock()
            .get(&precise)
            .map(|l| (l.holder, l.expires_at))
    }

    /// Number of build locks that are still within their TTL at `now`. The
    /// fault-tolerance invariant is that this reaches zero once all jobs
    /// finish and the mined TTLs elapse — a crashed builder can never wedge
    /// a view signature forever.
    pub fn num_active_locks(&self, now: SimTime) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.locks
                    .lock()
                    .values()
                    .filter(|l| l.expires_at > now)
                    .count()
            })
            .sum()
    }

    /// Number of build locks present (active or lapsed-but-unpurged).
    pub fn num_locks(&self) -> usize {
        self.shards.iter().map(|s| s.locks.lock().len()).sum()
    }

    /// Figure 9 steps 5/6: the job manager reports a successful
    /// materialization; the lock is released and the view becomes visible
    /// to future lookups from `req.available_at` (early materialization
    /// may pre-date job completion). A request carrying a
    /// [`SubsumeDescriptor`] makes the view a tier-2 candidate for future
    /// cascade lookups.
    ///
    /// **Fault-injection contract:** when the injector fires
    /// [`FaultSite::ReportMaterialized`] for `req.producer`, the report is
    /// lost: the built file exists in storage but is never registered, and
    /// the builder's lock lapses at its mined expiry instead of being
    /// released.
    pub fn report(&self, req: ReportRequest) -> Result<()> {
        if self.injected_failure(FaultSite::ReportMaterialized, req.producer) {
            self.stats.failed_reports.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.telemetry.read().as_ref() {
                t.report_faults.inc();
            }
            return Err(ScopeError::ServiceUnavailable(format!(
                "report({}) by {} timed out",
                req.view.precise, req.producer
            )));
        }
        self.register(req);
        Ok(())
    }

    /// Infallible registration core: used by [`MetadataService::report`]
    /// and by tests that need to seed views without a fault plan in the
    /// way. `req.normalized` links the view to its driving annotation
    /// (pass [`Sig128::ZERO`] when there is none, e.g. in protocol-only
    /// tests).
    ///
    /// The view (precise shard), annotation renewal (normalized shard), and
    /// lock release (precise shard) are three separate acquisitions; no two
    /// locks are held together — propose() holds a shard's lock mutex while
    /// reading that shard's views (its double-check), so overlapping guards
    /// here would be an ABBA deadlock.
    pub fn register(&self, req: ReportRequest) {
        self.log_event(&WalEvent::Register(Box::new(req.clone())));
        self.register_inner(req);
    }

    /// Mutation core of registration; never logs (shared by the live path
    /// and WAL replay — replay re-runs registration, which also clears the
    /// build lock exactly as the live path does).
    fn register_inner(&self, req: ReportRequest) {
        let ReportRequest {
            view,
            normalized,
            producer,
            vc: _,
            available_at,
            expires_at,
            descriptor,
        } = req;
        let precise = view.precise;
        let shard = self.sig_shard(precise);
        let inserted = {
            let mut views = shard.views.write();
            match views.entry(precise) {
                // A live entry wins: the duplicate report from a racing
                // builder is a no-op. But an *expired* entry that the
                // janitor hasn't purged yet must not block its rebuild —
                // propose() already treats the signature as rebuildable
                // (view_live is false), so swallowing the rebuild's report
                // here while still releasing its lock below would leave the
                // signature with neither a live view nor a lock, and the
                // next proposer would win a second build of the same view.
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    if slot.get().expires_at <= available_at {
                        slot.insert(RegisteredView {
                            view,
                            normalized,
                            producer,
                            created_at: available_at,
                            expires_at,
                            descriptor,
                        });
                        true
                    } else {
                        false
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(RegisteredView {
                        view,
                        normalized,
                        producer,
                        created_at: available_at,
                        expires_at,
                        descriptor,
                    });
                    true
                }
            }
        };
        if inserted {
            // Renew the annotation's GC horizon: a successful build proves
            // the annotation still matches the workload, so it must outlive
            // the view it just produced by one more TTL (the grace window a
            // recurring template needs to rebuild next instance).
            if let Some(entry) = self
                .sig_shard(normalized)
                .annotations
                .write()
                .get_mut(&normalized)
            {
                let ttl = entry.annotation.ttl;
                entry.keep_until = entry.keep_until.max(expires_at + ttl);
                if !entry.precise_views.contains(&precise) {
                    entry.precise_views.push(precise);
                }
            }
        }
        shard.locks.lock().remove(&precise);
        self.stats.views_registered.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.telemetry.read().as_ref() {
            t.views_registered.inc();
            t.build_locks.set(self.num_locks() as i64);
            t.registered_views.set(self.num_views() as i64);
        }
    }

    /// View lookup as of an explicit time (used by the runtime to pin a
    /// job's visibility to its submission time under overlapped arrivals).
    pub fn view_available_at(&self, precise: Sig128, now: SimTime) -> Option<AvailableView> {
        self.lookup_view(precise, now)
    }

    fn lookup_view(&self, precise: Sig128, now: SimTime) -> Option<AvailableView> {
        let views = self.sig_shard(precise).views.read();
        views
            .get(&precise)
            .filter(|v| v.created_at <= now && v.expires_at > now)
            .map(|v| v.view.clone())
    }

    /// Whether a registered view is live (unexpired) at `now`.
    fn view_live(&self, precise: Sig128, now: SimTime) -> bool {
        self.sig_shard(precise)
            .views
            .read()
            .get(&precise)
            .is_some_and(|v| v.expires_at > now)
    }

    /// Producer job of a registered view (provenance, requirement 6).
    pub fn view_producer(&self, precise: Sig128) -> Option<JobId> {
        self.sig_shard(precise)
            .views
            .read()
            .get(&precise)
            .map(|v| v.producer)
    }

    /// Full sweep: drops expired views and lapsed locks from *every* shard
    /// — and, in the same pass, the annotation and inverted-index entries
    /// those dead views strand (the entries used to leak and keep matching
    /// future lookups forever). The storage manager purges the
    /// corresponding files.
    pub fn purge_expired(&self) -> PurgeSweep {
        let now = self.clock.now();
        let mut total = PurgeSweep::default();
        for index in 0..self.shards.len() {
            self.log_event(&WalEvent::PurgeShard {
                index: index as u32,
                now,
            });
            total.absorb(self.purge_shard_at(index, now));
        }
        total
    }

    /// Incremental janitor step: sweeps the next shard in round-robin
    /// order. `shards` consecutive calls cover the whole service, so the
    /// run_many pool can amortize purging across jobs instead of stopping
    /// the world (`PipelineOptions::janitor`).
    pub fn purge_next_shard(&self) -> PurgeSweep {
        let index = self.janitor_cursor.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let now = self.clock.now();
        self.log_event(&WalEvent::PurgeShard {
            index: index as u32,
            now,
        });
        self.purge_shard_at(index, now)
    }

    /// One shard's janitor pass: expire the shard's views and locks, prune
    /// the dead views' annotation backrefs (which may live in *other*
    /// shards), then sweep this shard's annotations past their GC horizon.
    /// An annotation stranded in another shard is collected when the cursor
    /// reaches that shard.
    fn purge_shard_at(&self, index: usize, now: SimTime) -> PurgeSweep {
        let shard = self.shards.at(index);
        let mut dead: Vec<(Sig128, Sig128)> = Vec::new();
        {
            let mut views = shard.views.write();
            views.retain(|p, v| {
                let keep = v.expires_at > now;
                if !keep {
                    dead.push((*p, v.normalized));
                }
                keep
            });
        }
        shard.locks.lock().retain(|_, l| l.expires_at > now);
        self.prune_backrefs(&dead);
        let annotations_purged = self.sweep_annotation_shard(index, &HashSet::new(), now);
        if let Some(t) = self.telemetry.read().as_ref() {
            t.build_locks.set(self.num_locks() as i64);
            t.registered_views.set(self.num_views() as i64);
        }
        PurgeSweep {
            views_purged: dead.len(),
            annotations_purged,
        }
    }

    /// Unregisters specific views (admin space reclamation, Section 5.4:
    /// "cleaning the views from the metadata service first before deleting
    /// any of the physical files"; also the dead-view degradation path).
    /// The annotations that drove the removed views — and their inverted-
    /// index entries — go with them unless another live view still needs
    /// them, so a reclaimed or lost view stops matching future lookups.
    pub fn unregister_views(&self, precise: &[Sig128]) {
        self.unregister_views_at(precise, self.clock.now());
    }

    /// [`MetadataService::unregister_views`] at an explicit pinned time.
    /// The time decides which *other* views still keep a swept annotation
    /// alive, so callers that pin visibility (the runtime's dead-view
    /// fallback) and WAL replay must pass the instant they observed — a
    /// live-clock read here would let replay GC annotations that were
    /// still live at the recorded timestamp.
    pub fn unregister_views_at(&self, precise: &[Sig128], now: SimTime) {
        self.log_event(&WalEvent::Unregister {
            precise: precise.to_vec(),
            now,
        });
        self.apply_unregister(precise, now);
    }

    /// Mutation core of unregistration; never logs.
    fn apply_unregister(&self, precise: &[Sig128], now: SimTime) {
        let mut dead: Vec<(Sig128, Sig128)> = Vec::new();
        for p in precise {
            if let Some(v) = self.sig_shard(*p).views.write().remove(p) {
                dead.push((*p, v.normalized));
            }
        }
        self.prune_backrefs(&dead);
        // Force-sweep the dead views' annotations (GC horizon ignored —
        // the view was deliberately removed), grouped by owning shard.
        let mut forced_by_shard: HashMap<usize, HashSet<Sig128>> = HashMap::new();
        for &(_, normalized) in &dead {
            forced_by_shard
                .entry(self.sig_shard_index(normalized))
                .or_default()
                .insert(normalized);
        }
        for (index, forced) in forced_by_shard {
            self.sweep_annotation_shard(index, &forced, now);
        }
    }

    /// Re-applies one recovered WAL event, without logging. Replay is
    /// at-least-once (the snapshot protocol may leave an event in both the
    /// snapshot and the tail), so every arm is idempotent at its pinned
    /// time: re-granting an identical lock, re-registering a view whose
    /// live entry already wins, or re-purging an already-clean shard all
    /// converge to the same state.
    ///
    /// Process-local counters ([`MetadataStats`], telemetry) are *not*
    /// reconstructed — replay may bump them differently than the original
    /// run did; only catalog state (annotations, views, locks) is part of
    /// the recovery contract and the [`MetadataService::fingerprint`].
    pub fn apply_event(&self, ev: &WalEvent) {
        match ev {
            WalEvent::LoadAnnotations { selected, now } => {
                self.apply_load_annotations(selected, *now);
            }
            WalEvent::LockGranted {
                precise,
                holder,
                at: _,
                expires_at,
            } => {
                // Conservative lock recovery: the lease is restored with
                // its original expiry, so an in-flight build that died with
                // the process simply lapses at its mined TTL and the normal
                // expired-takeover path re-runs the build exactly once.
                self.sig_shard(*precise).locks.lock().insert(
                    *precise,
                    BuildLock {
                        holder: *holder,
                        expires_at: *expires_at,
                    },
                );
            }
            WalEvent::Register(req) => self.register_inner((**req).clone()),
            WalEvent::PurgeShard { index, now } => {
                // The janitor cursor is deliberately left alone: it is a
                // scheduling hint recovered from the snapshot, and
                // re-sweeping a shard an extra time is idempotent.
                self.purge_shard_at(*index as usize, *now);
            }
            WalEvent::Unregister { precise, now } => self.apply_unregister(precise, *now),
        }
    }

    /// Serializes the catalog — annotations, registered views, and build
    /// locks, each globally sorted by signature so the encoding is
    /// canonical and independent of shard count — into `e`. This is the
    /// fingerprinted core; [`MetadataService::export_state`] appends the
    /// non-semantic extras (janitor cursor).
    fn export_core(&self, e: &mut Enc) {
        // (normalized sig, annotation, tags, keep_until, precise views).
        type AnnotationRow = (Sig128, Annotation, Vec<Symbol>, SimTime, Vec<Sig128>);
        let mut annotations: Vec<AnnotationRow> = Vec::new();
        let mut views: Vec<(Sig128, RegisteredView)> = Vec::new();
        let mut locks: Vec<(Sig128, JobId, SimTime)> = Vec::new();
        for shard in &self.shards {
            for (n, entry) in shard.annotations.read().iter() {
                annotations.push((
                    *n,
                    entry.annotation.clone(),
                    entry.tags.clone(),
                    entry.keep_until,
                    entry.precise_views.clone(),
                ));
            }
            for (p, v) in shard.views.read().iter() {
                views.push((*p, v.clone()));
            }
            for (p, l) in shard.locks.lock().iter() {
                locks.push((*p, l.holder, l.expires_at));
            }
        }
        annotations.sort_by_key(|(n, ..)| *n);
        views.sort_by_key(|(p, _)| *p);
        locks.sort_by_key(|(p, ..)| *p);

        e.put_u32(annotations.len() as u32);
        for (_, annotation, tags, keep_until, precise_views) in &annotations {
            put_annotation(e, annotation);
            put_symbols(e, tags);
            put_time(e, *keep_until);
            put_sigs(e, precise_views);
        }
        e.put_u32(views.len() as u32);
        for (_, v) in &views {
            put_available_view(e, &v.view);
            put_sig(e, v.normalized);
            e.put_u64(v.producer.raw());
            put_time(e, v.created_at);
            put_time(e, v.expires_at);
            match &v.descriptor {
                Some(desc) => {
                    e.put_bool(true);
                    put_descriptor(e, desc);
                }
                None => e.put_bool(false),
            }
        }
        e.put_u32(locks.len() as u32);
        for (p, holder, expires_at) in &locks {
            put_sig(e, *p);
            e.put_u64(holder.raw());
            put_time(e, *expires_at);
        }
    }

    /// Full snapshot payload of the service: the fingerprinted catalog
    /// core plus the janitor cursor. The inverted index is *not* exported
    /// — it is a pure function of the annotations' tags and is rebuilt by
    /// [`MetadataService::import_state`].
    pub fn export_state(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.export_core(&mut e);
        e.put_u64(self.janitor_cursor.load(Ordering::Relaxed) as u64);
        e.buf
    }

    /// Replaces the whole catalog with a previously exported snapshot.
    /// Counters and telemetry are untouched (they are process-local).
    pub fn import_state(&self, d: &mut Dec) -> std::result::Result<(), CodecError> {
        for shard in &self.shards {
            shard.annotations.write().clear();
            shard.inverted.write().clear();
            shard.views.write().clear();
            shard.locks.lock().clear();
        }
        let n = d.u32()? as usize;
        for _ in 0..n {
            let annotation = get_annotation(d)?;
            let tags = get_symbols(d)?;
            let keep_until = get_time(d)?;
            let precise_views = get_sigs(d)?;
            let normalized = annotation.normalized;
            for &tag in &tags {
                self.shards
                    .at(self.tag_shard_index(tag))
                    .inverted
                    .write()
                    .entry(tag)
                    .or_default()
                    .insert(normalized);
            }
            self.sig_shard(normalized).annotations.write().insert(
                normalized,
                AnnotationEntry {
                    annotation,
                    tags,
                    keep_until,
                    precise_views,
                },
            );
        }
        let n = d.u32()? as usize;
        for _ in 0..n {
            let view = get_available_view(d)?;
            let normalized = get_sig(d)?;
            let producer = JobId::new(d.u64()?);
            let created_at = get_time(d)?;
            let expires_at = get_time(d)?;
            let descriptor = if d.bool()? {
                Some(get_descriptor(d)?)
            } else {
                None
            };
            let precise = view.precise;
            self.sig_shard(precise).views.write().insert(
                precise,
                RegisteredView {
                    view,
                    normalized,
                    producer,
                    created_at,
                    expires_at,
                    descriptor,
                },
            );
        }
        let n = d.u32()? as usize;
        for _ in 0..n {
            let precise = get_sig(d)?;
            let holder = JobId::new(d.u64()?);
            let expires_at = get_time(d)?;
            self.sig_shard(precise)
                .locks
                .lock()
                .insert(precise, BuildLock { holder, expires_at });
        }
        self.janitor_cursor
            .store(d.u64()? as usize, Ordering::Relaxed);
        Ok(())
    }

    /// 128-bit digest of the catalog (annotations, views, locks — sorted,
    /// canonical). Two services with the same fingerprint answer every
    /// lookup/propose identically at any pinned time; the recovery CI gate
    /// asserts a restarted service matches the pre-crash one. Counters,
    /// telemetry, the inverted index (derived), and the janitor cursor (a
    /// scheduling hint) are excluded.
    pub fn fingerprint(&self) -> Sig128 {
        let mut e = Enc::new();
        self.export_core(&mut e);
        sip128(&e.buf)
    }

    /// Removes dead views' precise signatures from their annotations'
    /// backref lists (the annotations may live in any shard; each affected
    /// shard's write lock is taken once).
    fn prune_backrefs(&self, dead_views: &[(Sig128, Sig128)]) {
        let mut by_shard: HashMap<usize, Vec<(Sig128, Sig128)>> = HashMap::new();
        for &(precise, normalized) in dead_views {
            by_shard
                .entry(self.sig_shard_index(normalized))
                .or_default()
                .push((precise, normalized));
        }
        for (index, pairs) in by_shard {
            let mut annotations = self.shards.at(index).annotations.write();
            for (precise, normalized) in pairs {
                if let Some(e) = annotations.get_mut(&normalized) {
                    e.precise_views.retain(|p| *p != precise);
                }
            }
        }
    }

    /// The consistent annotation/inverted sweep shared by the janitor and
    /// [`MetadataService::unregister_views`]: removes every annotation
    /// entry in shard `index` past its GC horizon (or named in `forced`)
    /// that has no live registered view left, then drains the emptied
    /// inverted-index buckets (which may live in other shards). Returns the
    /// number of annotation entries swept.
    ///
    /// Lock discipline: this holds `annotations[index]` (write) while
    /// probing view shards (read) for liveness — safe because no path
    /// acquires an annotations lock while holding a views lock. The
    /// inverted locks are taken only after the annotations guard drops —
    /// lookups acquire `inverted` then `annotations`, so holding both here
    /// in the opposite order would be an ABBA deadlock.
    fn sweep_annotation_shard(
        &self,
        index: usize,
        forced: &HashSet<Sig128>,
        now: SimTime,
    ) -> usize {
        let removed: Vec<(Sig128, Vec<Symbol>)> = {
            let mut annotations = self.shards.at(index).annotations.write();
            let dead_entries: Vec<Sig128> = annotations
                .iter()
                .filter(|(n, e)| e.keep_until <= now || forced.contains(n))
                .filter(|(_, e)| !e.precise_views.iter().any(|p| self.view_live(*p, now)))
                .map(|(n, _)| *n)
                .collect();
            dead_entries
                .into_iter()
                .filter_map(|n| annotations.remove(&n).map(|e| (n, e.tags)))
                .collect()
        };
        if removed.is_empty() {
            return 0;
        }
        let mut by_shard: HashMap<usize, Vec<(Sig128, Symbol)>> = HashMap::new();
        for (normalized, tags) in &removed {
            for &tag in tags {
                by_shard
                    .entry(self.tag_shard_index(tag))
                    .or_default()
                    .push((*normalized, tag));
            }
        }
        for (shard_index, entries) in by_shard {
            let mut inverted = self.shards.at(shard_index).inverted.write();
            for (normalized, tag) in entries {
                if let Some(bucket) = inverted.get_mut(&tag) {
                    bucket.remove(&normalized);
                    if bucket.is_empty() {
                        inverted.remove(&tag);
                    }
                }
            }
        }
        let swept = removed.len();
        self.stats
            .purged_annotations
            .fetch_add(swept as u64, Ordering::Relaxed);
        if let Some(t) = self.telemetry.read().as_ref() {
            t.purged_annotations.add(swept as u64);
        }
        swept
    }

    /// Registered (non-expired) view count.
    pub fn num_views(&self) -> usize {
        self.shards.iter().map(|s| s.views.read().len()).sum()
    }

    /// Loaded annotation count.
    pub fn num_annotations(&self) -> usize {
        self.shards.iter().map(|s| s.annotations.read().len()).sum()
    }

    /// Total inverted-index postings (signature entries summed over every
    /// tag bucket) — the quantity that used to grow without bound.
    pub fn num_inverted_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inverted.read().values().map(HashSet::len).sum::<usize>())
            .sum()
    }

    /// Non-empty tag buckets in the inverted index.
    pub fn num_tag_buckets(&self) -> usize {
        self.shards.iter().map(|s| s.inverted.read().len()).sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MetadataStats {
        self.stats.snapshot()
    }

    /// The shared clock (used by the runtime to time operations).
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }
}

impl ViewServices for MetadataService {
    fn view_available(&self, precise: Sig128) -> Option<AvailableView> {
        self.lookup_view(precise, self.clock.now())
    }

    fn propose_materialize(
        &self,
        precise: Sig128,
        _normalized: Sig128,
        job: JobId,
        lock_ttl: SimDuration,
    ) -> bool {
        // An injected propose fault surfaces as "lock not granted": the
        // optimizer simply skips that materialization.
        matches!(
            self.propose_now(precise, job, lock_ttl),
            Ok(LockOutcome::Acquired)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::sip128;
    use scope_plan::PhysicalProps;

    fn selected(normalized: Sig128, tags: &[&str]) -> SelectedView {
        SelectedView {
            annotation: Annotation {
                normalized,
                props: PhysicalProps::any(),
                ttl: SimDuration::from_secs(3600),
                avg_cpu: SimDuration::from_secs(10),
                avg_rows: 100,
                avg_bytes: 1000,
            },
            input_tags: tags.iter().map(|s| Symbol::intern(s)).collect(),
            utility: SimDuration::from_secs(30),
            frequency: 3,
            precise_last_seen: Sig128::ZERO,
        }
    }

    fn service() -> MetadataService {
        MetadataService::new(Arc::new(SimClock::new()), 1)
    }

    fn a_view(precise: Sig128) -> AvailableView {
        AvailableView {
            precise,
            rows: 10,
            bytes: 100,
            props: PhysicalProps::any(),
        }
    }

    /// A `scan → filter(v >= bound)` plan over the shared kv table, plus
    /// the subsumption descriptor of its filter root.
    fn filter_descriptor(bound: i64) -> (Sig128, Sig128, SubsumeDescriptor) {
        use scope_common::ids::{DatasetId, NodeId};
        use scope_plan::{DataType, Expr, PlanBuilder, Schema};
        use scope_signature::sign_graph;
        let mut b = PlanBuilder::new();
        let s = b.table_scan(
            DatasetId::new(1),
            "in/a.ss",
            Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
        );
        let f = b.filter(s, Expr::col(1).ge(Expr::lit(bound)));
        let g = b.output(f, "o").build().unwrap();
        let signed = sign_graph(&g).unwrap();
        let root = NodeId::new(1);
        let desc = SubsumeDescriptor::of(&g, root, signed.of(NodeId::new(0)).precise).unwrap();
        (signed.of(root).precise, signed.of(root).normalized, desc)
    }

    #[test]
    fn cascade_lookup_gates_candidates_and_pins_time() {
        // A view filtered wide (v >= 0) should reach a query probing with a
        // tighter filter (v >= 10) — but only while the view is live at the
        // *pinned* lookup time, regardless of where the live clock sits.
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::new(Arc::clone(&clock), 1);
        let (view_precise, view_norm, view_desc) = filter_descriptor(0);
        let (_, _, probe) = filter_descriptor(10);
        m.load_annotations(&[selected(view_norm, &["in/a.ss"])]);
        let created = SimTime::ZERO + SimDuration::from_secs(10);
        let expires = SimTime::ZERO + SimDuration::from_secs(20);
        m.register(
            ReportRequest::new(
                a_view(view_precise),
                view_norm,
                JobId::new(1),
                created,
                expires,
            )
            .with_descriptor(Some(view_desc)),
        );
        let job = JobId::new(2);
        let tags = ["in/a.ss".into()];
        let probes = std::slice::from_ref(&probe);

        // Pinned before the view was published: tier-2 must stay empty even
        // though the live clock (ZERO) is irrelevant here.
        let r = m
            .lookup(
                &LookupRequest::new(job, &tags, SimTime::ZERO + SimDuration::from_secs(5))
                    .with_probes(probes.to_vec()),
            )
            .unwrap();
        assert_eq!(r.annotations.len(), 1, "tier-1 is time-agnostic");
        assert!(r.tier2.is_empty(), "view visible before its publish time");

        // Pinned inside the window while the live clock is far *past*
        // expiry: the pinned time must win (clock-skew regression).
        clock.advance(SimDuration::from_secs(3600));
        let r = m
            .lookup(
                &LookupRequest::new(job, &tags, SimTime::ZERO + SimDuration::from_secs(15))
                    .with_probes(probes.to_vec()),
            )
            .unwrap();
        assert_eq!(r.tier2.len(), 1);
        let cand = &r.tier2[0];
        assert_eq!(cand.view.precise, view_precise);
        assert_eq!(cand.normalized, view_norm);
        assert_eq!(cand.avg_cpu, SimDuration::from_secs(10));
        // Cascade latency stays within 10% of the exact-only base.
        let base = m.lookup_latency();
        assert!(r.latency > base);
        assert!(
            r.latency.as_secs_f64() <= base.as_secs_f64() * 1.10,
            "tier-2 scan must stay cheap: {:?} vs {:?}",
            r.latency,
            base
        );

        // Pinned after expiry: gone again.
        let r = m
            .lookup(
                &LookupRequest::new(job, &tags, SimTime::ZERO + SimDuration::from_secs(25))
                    .with_probes(probes.to_vec()),
            )
            .unwrap();
        assert!(r.tier2.is_empty(), "view visible after expiry");

        let stats = m.stats();
        assert_eq!(stats.tier2_hits, 1);
        assert_eq!(stats.tier2_rejects, 2);
    }

    #[test]
    fn cascade_lookup_rejects_incompatible_probes() {
        // The view is *tighter* (v >= 10) than the query (v >= 0): the
        // feature-vector gate passes (same columns) but that is fine — the
        // gate only prefilters; here we check a probe with a disjoint
        // column set is rejected at the gate and a descriptor-less view
        // never surfaces.
        let m = service();
        let (view_precise, view_norm, view_desc) = filter_descriptor(0);
        m.load_annotations(&[selected(view_norm, &["in/a.ss"])]);
        m.register(
            ReportRequest::new(
                a_view(view_precise),
                view_norm,
                JobId::new(1),
                SimTime::ZERO,
                SimTime::MAX,
            )
            .with_descriptor(Some(view_desc)),
        );
        // Probe whose child signature differs (different filter bound means
        // same child here, so craft a mismatched child by descriptor of a
        // different scan bound — use kind mismatch instead: an aggregate).
        let probe = {
            use scope_common::ids::{DatasetId, NodeId};
            use scope_plan::{AggExpr, AggFunc, DataType, PlanBuilder, Schema};
            use scope_signature::sign_graph;
            let mut b = PlanBuilder::new();
            let s = b.table_scan(
                DatasetId::new(1),
                "in/a.ss",
                Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
            );
            let a = b.aggregate(s, vec![0], vec![AggExpr::new("n", AggFunc::Count, 1)]);
            let g = b.output(a, "o").build().unwrap();
            let signed = sign_graph(&g).unwrap();
            SubsumeDescriptor::of(&g, NodeId::new(1), signed.of(NodeId::new(0)).precise).unwrap()
        };
        let r = m
            .lookup(
                &LookupRequest::new(JobId::new(2), &["in/a.ss".into()], SimTime::ZERO)
                    .with_probes(vec![probe]),
            )
            .unwrap();
        assert!(r.tier2.is_empty(), "kind-mismatched probe passed the gate");
        assert_eq!(m.stats().tier2_rejects, 1);

        // A view without a descriptor is tier-1-only: no candidates even
        // for a perfectly compatible probe.
        let m2 = service();
        let (_, _, probe2) = filter_descriptor(10);
        m2.load_annotations(&[selected(view_norm, &["in/a.ss"])]);
        m2.register(ReportRequest::new(
            a_view(view_precise),
            view_norm,
            JobId::new(1),
            SimTime::ZERO,
            SimTime::MAX,
        ));
        let r = m2
            .lookup(
                &LookupRequest::new(JobId::new(2), &["in/a.ss".into()], SimTime::ZERO)
                    .with_probes(vec![probe2]),
            )
            .unwrap();
        assert!(r.tier2.is_empty());
        assert_eq!(m2.stats().tier2_rejects, 1);
    }

    #[test]
    fn exact_only_lookup_skips_the_tier2_scan() {
        // No probes → no tier-2 work, no tier-2 latency, identical answers
        // to the pre-cascade service.
        let m = service();
        let (view_precise, view_norm, view_desc) = filter_descriptor(0);
        m.load_annotations(&[selected(view_norm, &["in/a.ss"])]);
        m.register(
            ReportRequest::new(
                a_view(view_precise),
                view_norm,
                JobId::new(1),
                SimTime::ZERO,
                SimTime::MAX,
            )
            .with_descriptor(Some(view_desc)),
        );
        let r = m
            .relevant_views_for(JobId::new(2), &["in/a.ss".into()])
            .unwrap();
        assert_eq!(r.annotations.len(), 1);
        assert!(r.tier2.is_empty());
        assert_eq!(r.latency, m.lookup_latency(), "no tier-2 latency charged");
        let stats = m.stats();
        assert_eq!((stats.tier2_hits, stats.tier2_rejects), (0, 0));
    }

    #[test]
    fn inverted_index_lookup() {
        let m = service();
        let n1 = sip128(b"n1");
        let n2 = sip128(b"n2");
        m.load_annotations(&[
            selected(n1, &["in/a.ss", "in/b.ss"]),
            selected(n2, &["in/c.ss"]),
        ]);
        assert_eq!(m.num_annotations(), 2);
        let job = JobId::new(1);
        let r = m.relevant_views_for(job, &["in/b.ss".into()]).unwrap();
        assert_eq!(r.annotations.len(), 1);
        assert_eq!(r.annotations[0].normalized, n1);
        assert_eq!(r.hit_count, 1);
        assert!(r.latency > SimDuration::ZERO);
        // Multi-tag job gets the union.
        let r = m
            .relevant_views_for(job, &["in/a.ss".into(), "in/c.ss".into()])
            .unwrap();
        assert_eq!(r.annotations.len(), 2);
        assert_eq!(r.hit_count, 2);
        // Unknown tags: empty.
        let r = m.relevant_views_for(job, &["in/zzz.ss".into()]).unwrap();
        assert!(r.annotations.is_empty());
        assert_eq!(r.hit_count, 0);
        assert_eq!(m.stats().lookups, 3);
    }

    #[test]
    fn single_shard_layout_serves_the_same_answers() {
        // shards=1 is the global-lock baseline the scale bench compares
        // against; it must be behaviorally identical to the sharded layout.
        for shards in [1usize, 4, 16] {
            let m = MetadataService::with_shards(Arc::new(SimClock::new()), 1, shards);
            assert_eq!(m.num_shards(), shards);
            let views: Vec<SelectedView> = (0..64)
                .map(|i| {
                    selected(
                        sip128(format!("norm{i}").as_bytes()),
                        &[&format!("in/s{}.ss", i % 8)],
                    )
                })
                .collect();
            m.load_annotations(&views);
            assert_eq!(m.num_annotations(), 64);
            assert_eq!(m.num_inverted_entries(), 64);
            assert_eq!(m.num_tag_buckets(), 8);
            let r = m
                .relevant_views_for(JobId::new(1), &["in/s3.ss".into()])
                .unwrap();
            assert_eq!(r.annotations.len(), 8, "shards={shards}");
        }
    }

    #[test]
    fn reload_replaces_annotations() {
        let m = service();
        m.load_annotations(&[selected(sip128(b"old"), &["t"])]);
        m.load_annotations(&[selected(sip128(b"new"), &["t"])]);
        let r = m.relevant_views_for(JobId::new(1), &["t".into()]).unwrap();
        assert_eq!(r.annotations.len(), 1);
        assert_eq!(r.annotations[0].normalized, sip128(b"new"));
    }

    #[test]
    fn exclusive_lock_protocol() {
        let m = service();
        let p = sip128(b"view");
        let ttl = SimDuration::from_secs(60);
        assert_eq!(
            m.propose_now(p, JobId::new(1), ttl).unwrap(),
            LockOutcome::Acquired
        );
        // Second job is refused.
        assert_eq!(
            m.propose_now(p, JobId::new(2), ttl).unwrap(),
            LockOutcome::AlreadyLocked
        );
        // The holder itself may re-propose (idempotent re-acquire).
        assert_eq!(
            m.propose_now(p, JobId::new(1), ttl).unwrap(),
            LockOutcome::Acquired
        );
        // After the build is reported, proposals see AlreadyMaterialized.
        m.report(ReportRequest::new(
            a_view(p),
            Sig128::ZERO,
            JobId::new(1),
            SimTime::ZERO,
            SimTime::MAX,
        ))
        .unwrap();
        assert_eq!(
            m.propose_now(p, JobId::new(3), ttl).unwrap(),
            LockOutcome::AlreadyMaterialized
        );
        let stats = m.stats();
        assert_eq!(stats.lock_conflicts, 1);
        assert_eq!(stats.views_registered, 1);
    }

    #[test]
    fn lock_expiry_is_fault_tolerant() {
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::new(Arc::clone(&clock), 1);
        let p = sip128(b"crashy");
        assert_eq!(
            m.propose_now(p, JobId::new(1), SimDuration::from_secs(10))
                .unwrap(),
            LockOutcome::Acquired
        );
        // Builder "crashes"; 11 seconds later another job may take over.
        clock.advance(SimDuration::from_secs(11));
        assert_eq!(
            m.propose_now(p, JobId::new(2), SimDuration::from_secs(10))
                .unwrap(),
            LockOutcome::Acquired
        );
    }

    #[test]
    fn views_respect_availability_window() {
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::new(Arc::clone(&clock), 1);
        let p = sip128(b"early");
        // Published with created_at in the future (early materialization
        // by a job that started later than now).
        m.report(ReportRequest::new(
            a_view(p),
            Sig128::ZERO,
            JobId::new(1),
            SimTime(5_000_000),
            SimTime(10_000_000),
        ))
        .unwrap();
        assert!(m.view_available(p).is_none(), "not yet available");
        clock.advance(SimDuration::from_secs(6));
        assert!(m.view_available(p).is_some());
        clock.advance(SimDuration::from_secs(10));
        assert!(m.view_available(p).is_none(), "expired");
        assert_eq!(m.purge_expired().views_purged, 1);
        assert_eq!(m.num_views(), 0);
    }

    #[test]
    fn unregister_clears_metadata_first() {
        let m = service();
        let p = sip128(b"gone");
        m.report(ReportRequest::new(
            a_view(p),
            Sig128::ZERO,
            JobId::new(1),
            SimTime::ZERO,
            SimTime::MAX,
        ))
        .unwrap();
        m.unregister_views(&[p]);
        assert!(m.view_available(p).is_none());
    }

    #[test]
    fn unregister_sweeps_annotation_and_inverted_entries() {
        // Regression for the dead-view index leak: unregistering a view
        // must drop its driving annotation and drain the tag buckets, or
        // the entries keep matching future lookups forever.
        let m = service();
        let n = sip128(b"norm");
        let p = sip128(b"precise");
        m.load_annotations(&[selected(n, &["in/a.ss", "in/b.ss"])]);
        m.register(ReportRequest::new(
            a_view(p),
            n,
            JobId::new(1),
            SimTime::ZERO,
            SimTime::MAX,
        ));
        assert_eq!(m.num_annotations(), 1);
        assert_eq!(m.num_inverted_entries(), 2);

        m.unregister_views(&[p]);
        assert_eq!(m.num_annotations(), 0, "annotation leaked");
        assert_eq!(m.num_inverted_entries(), 0, "inverted entries leaked");
        assert_eq!(m.num_tag_buckets(), 0, "empty tag buckets not drained");
        let r = m
            .relevant_views_for(JobId::new(2), &["in/a.ss".into()])
            .unwrap();
        assert!(r.annotations.is_empty(), "dead view still matches lookups");
        assert_eq!(m.stats().purged_annotations, 1);
    }

    #[test]
    fn unregister_keeps_annotation_while_another_view_is_live() {
        // Two recurring instances share one normalized annotation; killing
        // one instance's view must not strand the other's reuse.
        let m = service();
        let n = sip128(b"norm");
        let (p1, p2) = (sip128(b"inst1"), sip128(b"inst2"));
        m.load_annotations(&[selected(n, &["in/a.ss"])]);
        m.register(ReportRequest::new(
            a_view(p1),
            n,
            JobId::new(1),
            SimTime::ZERO,
            SimTime::MAX,
        ));
        m.register(ReportRequest::new(
            a_view(p2),
            n,
            JobId::new(2),
            SimTime::ZERO,
            SimTime::MAX,
        ));
        m.unregister_views(&[p1]);
        assert_eq!(m.num_annotations(), 1, "live view's annotation was swept");
        assert_eq!(m.num_inverted_entries(), 1);
        m.unregister_views(&[p2]);
        assert_eq!(m.num_annotations(), 0);
        assert_eq!(m.num_inverted_entries(), 0);
    }

    #[test]
    fn purge_sweeps_annotations_of_expired_views_after_grace() {
        // The headline leak: views expire and get purged, but their
        // annotation/inverted entries used to stay forever. With the fix
        // they lapse one TTL (the rebuild-grace window) after the last
        // view dies, in the same purge pass.
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::new(Arc::clone(&clock), 1);
        let n = sip128(b"norm");
        let ttl = SimDuration::from_secs(3600); // `selected` uses ttl 3600
        m.load_annotations(&[selected(n, &["in/a.ss"])]);
        let view_expiry = SimTime::ZERO + SimDuration::from_secs(100);
        m.register(ReportRequest::new(
            a_view(sip128(b"p")),
            n,
            JobId::new(1),
            SimTime::ZERO,
            view_expiry,
        ));

        // View dead, but still inside the grace window: the annotation must
        // survive so the next recurring instance can rebuild.
        clock.advance(SimDuration::from_secs(200));
        assert_eq!(m.purge_expired().views_purged, 1, "expired view purged");
        assert_eq!(m.num_annotations(), 1, "annotation swept inside grace");

        // Past view expiry + TTL with no rebuild: swept, buckets drained.
        clock.advance(ttl);
        let sweep = m.purge_expired();
        assert_eq!(sweep.views_purged, 0);
        assert_eq!(sweep.annotations_purged, 1);
        assert_eq!(m.num_annotations(), 0, "annotation leaked past grace");
        assert_eq!(m.num_inverted_entries(), 0, "inverted entries leaked");
        assert_eq!(m.num_tag_buckets(), 0);
        assert_eq!(m.stats().purged_annotations, 1);
    }

    #[test]
    fn rebuilds_renew_the_annotation_across_instances() {
        // A recurring template: each instance's build renews the GC horizon,
        // so daily purges never strand the template even though every
        // instance's view expires before the next instance runs.
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::new(Arc::clone(&clock), 1);
        let n = sip128(b"norm");
        let day = SimDuration::from_secs(3600); // == `selected` ttl
        m.load_annotations(&[selected(n, &["in/a.ss"])]);
        for instance in 0..5u64 {
            let now = clock.now();
            let p = sip128(format!("inst{instance}").as_bytes());
            m.register(ReportRequest::new(
                a_view(p),
                n,
                JobId::new(instance),
                now,
                now + day,
            ));
            clock.advance(day + SimDuration::from_secs(1));
            m.purge_expired();
            assert_eq!(
                m.num_annotations(),
                1,
                "instance {instance}: annotation swept mid-recurrence"
            );
            // Dead instances' views and backrefs stay bounded.
            assert_eq!(m.num_views(), 0);
        }
        // The workload stops: one grace TTL later the entry drains.
        clock.advance(day + day);
        m.purge_expired();
        assert_eq!(m.num_annotations(), 0);
        assert_eq!(m.num_inverted_entries(), 0);
    }

    #[test]
    fn incremental_janitor_covers_every_shard() {
        // purge_next_shard round-robins; num_shards() consecutive calls
        // must reclaim everything a full purge_expired would.
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::with_shards(Arc::clone(&clock), 1, 8);
        let views: Vec<SelectedView> = (0..40)
            .map(|i| {
                selected(
                    sip128(format!("n{i}").as_bytes()),
                    &[&format!("in/t{i}.ss")],
                )
            })
            .collect();
        m.load_annotations(&views);
        let expiry = SimTime::ZERO + SimDuration::from_secs(10);
        for i in 0..40u64 {
            let n = sip128(format!("n{i}").as_bytes());
            let p = sip128(format!("p{i}").as_bytes());
            m.register(ReportRequest::new(
                a_view(p),
                n,
                JobId::new(i),
                SimTime::ZERO,
                expiry,
            ));
        }
        assert_eq!(m.num_views(), 40);
        // Everything (views and grace horizons) lapses.
        clock.advance(SimDuration::from_secs(10 + 3600 + 1));
        let mut total = PurgeSweep::default();
        for _ in 0..m.num_shards() {
            total.absorb(m.purge_next_shard());
        }
        assert_eq!(total.views_purged, 40);
        assert_eq!(total.annotations_purged, 40);
        assert_eq!(m.num_views(), 0);
        assert_eq!(m.num_annotations(), 0);
        assert_eq!(m.num_inverted_entries(), 0);
    }

    #[test]
    fn lookup_latency_matches_paper_calibration() {
        let single = MetadataService::new(Arc::new(SimClock::new()), 1);
        let five = MetadataService::new(Arc::new(SimClock::new()), 5);
        let l1 = single.lookup_latency().as_secs_f64() * 1e3;
        let l5 = five.lookup_latency().as_secs_f64() * 1e3;
        assert!((l1 - 19.0).abs() < 0.1, "{l1}");
        assert!((l5 - 14.3).abs() < 0.1, "{l5}");
    }

    #[test]
    fn zero_service_threads_is_clamped() {
        // service_threads=0 would make the latency model divide by zero
        // (an infinite modeled latency); construction clamps to 1.
        let m = MetadataService::new(Arc::new(SimClock::new()), 0);
        let ms = m.lookup_latency().as_secs_f64() * 1e3;
        assert!(ms.is_finite() && (ms - 19.0).abs() < 0.1, "{ms}");
    }

    #[test]
    fn concurrent_proposals_single_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let m = Arc::new(service());
        let p = sip128(b"contended");
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let m = Arc::clone(&m);
                let wins = Arc::clone(&wins);
                std::thread::spawn(move || {
                    if m.propose_now(p, JobId::new(i), SimDuration::from_secs(60))
                        .unwrap()
                        == LockOutcome::Acquired
                    {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one job builds");
    }

    #[test]
    fn expired_lock_has_exactly_one_takeover_winner() {
        // Satellite of the crashed-builder story: many jobs observe the
        // same *expired* lock concurrently; the lock-table mutex must admit
        // exactly one of them as the new builder.
        let clock = Arc::new(SimClock::new());
        let m = Arc::new(MetadataService::new(Arc::clone(&clock), 1));
        let p = sip128(b"crashed-builder");
        assert_eq!(
            m.propose_now(p, JobId::new(99), SimDuration::from_secs(10))
                .unwrap(),
            LockOutcome::Acquired
        );
        clock.advance(SimDuration::from_secs(11)); // builder crashed; lock lapsed
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    m.propose_now(p, JobId::new(i), SimDuration::from_secs(60))
                        .unwrap()
                })
            })
            .collect();
        let outcomes: Vec<LockOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let wins = outcomes
            .iter()
            .filter(|&&o| o == LockOutcome::Acquired)
            .count();
        assert_eq!(
            wins, 1,
            "exactly one job takes over the expired lock: {outcomes:?}"
        );
        assert_eq!(m.stats().expired_takeovers, 1);
        assert_eq!(m.num_active_locks(clock.now()), 1);
    }

    #[test]
    fn propose_never_grants_after_registration() {
        // Regression for the propose() double-check race: the view-existence
        // check used to run before acquiring the lock-table mutex, so a
        // propose racing with report_materialized could be granted a build
        // lock for a view that already existed. The only legitimate
        // Acquired for the contender below is through that race window.
        for round in 0..50u64 {
            let m = Arc::new(service());
            let p = sip128(format!("race{round}").as_bytes());
            let ttl = SimDuration::from_secs(3600);
            // Acquire before spawning the contender so the race under test
            // is propose-vs-registration, not propose-vs-propose (under
            // load the contender could otherwise win the first propose).
            assert_eq!(
                m.propose_now(p, JobId::new(1), ttl).unwrap(),
                LockOutcome::Acquired
            );
            let builder = {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    m.report(ReportRequest::new(
                        a_view(p),
                        Sig128::ZERO,
                        JobId::new(1),
                        SimTime::ZERO,
                        SimTime::MAX,
                    ))
                    .unwrap();
                })
            };
            let contender = {
                let m = Arc::clone(&m);
                std::thread::spawn(move || loop {
                    match m.propose_now(p, JobId::new(2), ttl).unwrap() {
                        LockOutcome::Acquired => break false,
                        LockOutcome::AlreadyMaterialized => break true,
                        LockOutcome::AlreadyLocked => std::hint::spin_loop(),
                    }
                })
            };
            builder.join().unwrap();
            assert!(
                contender.join().unwrap(),
                "round {round}: contender was granted a lock for an existing view"
            );
        }
    }

    #[test]
    fn propose_dedups_against_future_visible_views() {
        // Regression: build dedup must be an existence check. A winner in a
        // concurrent wave registers its view with `available_at` *after*
        // the wave's shared submission time (early-materialization offsets
        // always land past it) and releases its lock; a peer proposing at
        // the pinned submission time used to miss the not-yet-visible view
        // AND the released lock, and was granted a second build.
        let m = service();
        let p = sip128(b"future-visible");
        let ttl = SimDuration::from_secs(60);
        m.register(ReportRequest::new(
            a_view(p),
            Sig128::ZERO,
            JobId::new(1),
            SimTime(5_000_000), // visible 5s in — after the proposer's `at`
            SimTime(10_000_000),
        ));
        assert_eq!(
            m.propose(&ProposeRequest::new(p, JobId::new(2), ttl, SimTime::ZERO))
                .unwrap(),
            LockOutcome::AlreadyMaterialized,
            "a registered-but-not-yet-visible view is still built"
        );
        // An *expired* view is legitimately rebuildable.
        assert_eq!(
            m.propose(&ProposeRequest::new(
                p,
                JobId::new(2),
                ttl,
                SimTime(10_000_001)
            ))
            .unwrap(),
            LockOutcome::Acquired
        );
    }

    #[test]
    fn pinned_propose_ignores_live_clock_advance() {
        // Regression: lock expiry is judged at the proposer's pinned
        // submission time, not the service's live clock. Peers completing
        // mid-wave advance the shared clock; that used to lapse a
        // still-running builder's lock and admit a second "takeover"
        // winner for the same view.
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::new(Arc::clone(&clock), 1);
        let p = sip128(b"slow-builder");
        let ttl = SimDuration::from_secs(10);
        assert_eq!(
            m.propose(&ProposeRequest::new(p, JobId::new(1), ttl, SimTime::ZERO))
                .unwrap(),
            LockOutcome::Acquired
        );
        // A peer job finishes and drags the live clock far past the TTL.
        clock.advance(SimDuration::from_secs(3_600));
        assert_eq!(
            m.propose(&ProposeRequest::new(p, JobId::new(2), ttl, SimTime::ZERO))
                .unwrap(),
            LockOutcome::AlreadyLocked,
            "the builder is still running at the wave's submission time"
        );
        assert_eq!(m.stats().expired_takeovers, 0);
        // A job from a genuinely later wave still takes the lapsed lock.
        assert_eq!(
            m.propose(&ProposeRequest::new(
                p,
                JobId::new(3),
                ttl,
                SimTime(11_000_000)
            ))
            .unwrap(),
            LockOutcome::Acquired
        );
        assert_eq!(m.stats().expired_takeovers, 1);
    }

    #[test]
    fn injected_lookup_propose_and_report_faults() {
        use crate::faults::{FaultPlan, ScriptedFault};
        let m = service();
        m.load_annotations(&[selected(sip128(b"n"), &["t"])]);
        let job = JobId::new(5);
        let p = sip128(b"v");
        // Script: first lookup, first propose, and first report by job 5
        // all fail; everything else passes.
        let plan = FaultPlan {
            scripted: vec![
                ScriptedFault {
                    site: FaultSite::MetadataLookup,
                    job: Some(job),
                    call_index: 0,
                },
                ScriptedFault {
                    site: FaultSite::Propose,
                    job: Some(job),
                    call_index: 0,
                },
                ScriptedFault {
                    site: FaultSite::ReportMaterialized,
                    job: Some(job),
                    call_index: 0,
                },
            ],
            ..Default::default()
        };
        m.set_fault_injector(Some(FaultInjector::new(plan)));
        let ttl = SimDuration::from_secs(60);

        let err = m.relevant_views_for(job, &["t".into()]).unwrap_err();
        assert_eq!(err.kind(), "service_unavailable");
        assert!(err.is_degradable());
        // Retry succeeds (call index 1).
        assert_eq!(
            m.relevant_views_for(job, &["t".into()])
                .unwrap()
                .annotations
                .len(),
            1
        );

        assert!(m.propose_now(p, job, ttl).is_err());
        assert_eq!(m.propose_now(p, job, ttl).unwrap(), LockOutcome::Acquired);

        assert!(m
            .report(ReportRequest::new(
                a_view(p),
                Sig128::ZERO,
                job,
                SimTime::ZERO,
                SimTime::MAX
            ))
            .is_err());
        assert_eq!(m.num_views(), 0, "failed report must not register the view");
        assert!(
            m.lock_holder(p).is_some(),
            "failed report leaves the lock to lapse"
        );
        m.report(ReportRequest::new(
            a_view(p),
            Sig128::ZERO,
            job,
            SimTime::ZERO,
            SimTime::MAX,
        ))
        .unwrap();
        assert_eq!(m.num_views(), 1);
        assert!(m.lock_holder(p).is_none());

        let stats = m.stats();
        assert_eq!(
            (
                stats.failed_lookups,
                stats.failed_proposals,
                stats.failed_reports
            ),
            (1, 1, 1)
        );
        // Other jobs are untouched by the scripted plan.
        assert!(m.relevant_views_for(JobId::new(6), &["t".into()]).is_ok());
    }

    #[test]
    fn view_producer_provenance() {
        let m = service();
        let p = sip128(b"prov");
        m.report(ReportRequest::new(
            a_view(p),
            Sig128::ZERO,
            JobId::new(42),
            SimTime::ZERO,
            SimTime::MAX,
        ))
        .unwrap();
        assert_eq!(m.view_producer(p), Some(JobId::new(42)));
        assert_eq!(m.view_producer(sip128(b"other")), None);
    }

    #[test]
    fn first_report_wins() {
        let m = service();
        let p = sip128(b"dup");
        m.report(ReportRequest::new(
            a_view(p),
            Sig128::ZERO,
            JobId::new(1),
            SimTime::ZERO,
            SimTime::MAX,
        ))
        .unwrap();
        m.report(ReportRequest::new(
            a_view(p),
            Sig128::ZERO,
            JobId::new(2),
            SimTime::ZERO,
            SimTime::MAX,
        ))
        .unwrap();
        assert_eq!(m.view_producer(p), Some(JobId::new(1)));
        assert_eq!(m.num_views(), 1);
    }
}
