//! The CloudViews metadata service (paper Section 6.1, Figure 9).
//!
//! The service is the coordination point of the online runtime:
//!
//! 1. the **compiler** makes *one* request per job, sending the job's
//!    normalized tags; the service answers from a tag-inverted index with
//!    every annotation that might be relevant (false positives allowed —
//!    the optimizer re-checks signatures);
//! 2. the **optimizer** proposes view materializations; the service hands
//!    out *exclusive build locks* whose expiry is derived from the mined
//!    average runtime of the subgraph, making builds fault-tolerant (a
//!    crashed builder's lock lapses and another job retries);
//! 3. the **job manager** reports successful materializations, releasing
//!    the lock and making the view visible to future lookups.
//!
//! The production system backs this with AzureSQL; here it is an in-process
//! thread-safe service (see DESIGN.md substitution table). Lookup latency is
//! modeled after the paper's measurements (19 ms single-threaded, 14.3 ms
//! with 5 service threads) via a calibrated base + per-thread service term.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use scope_common::hash::Sig128;
use scope_common::ids::JobId;
use scope_common::time::{SimClock, SimDuration, SimTime};
use scope_common::{Result, ScopeError};
use scope_engine::optimizer::{Annotation, AvailableView, ViewServices};

use crate::analyzer::SelectedView;
use crate::faults::{FaultInjector, FaultSite};

/// Result of a materialization proposal (Figure 9, step 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// Exclusive lock granted: the proposing job builds the view.
    Acquired,
    /// Another job holds an unexpired build lock.
    AlreadyLocked,
    /// The view already exists; nothing to build.
    AlreadyMaterialized,
}

/// A registered, currently materialized view.
#[derive(Clone, Debug)]
struct RegisteredView {
    view: AvailableView,
    producer: JobId,
    created_at: SimTime,
    expires_at: SimTime,
}

#[derive(Clone, Debug)]
struct BuildLock {
    holder: JobId,
    expires_at: SimTime,
}

/// Service counters (reporting requirement 7 of Section 4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetadataStats {
    /// Per-job annotation lookups served.
    pub lookups: u64,
    /// Total annotations returned across lookups.
    pub annotations_returned: u64,
    /// Build locks granted.
    pub locks_granted: u64,
    /// Proposals rejected because another job held the lock.
    pub lock_conflicts: u64,
    /// Proposals rejected because the view already existed.
    pub already_materialized: u64,
    /// Successful materializations reported.
    pub views_registered: u64,
    /// Locks granted by taking over a different holder's *expired* lock
    /// (the paper's crashed-builder recovery path).
    pub expired_takeovers: u64,
    /// Lookup calls failed by the fault injector.
    pub failed_lookups: u64,
    /// Propose calls failed by the fault injector.
    pub failed_proposals: u64,
    /// Report calls failed by the fault injector.
    pub failed_reports: u64,
}

/// The metadata service.
pub struct MetadataService {
    /// Annotations by normalized signature.
    annotations: RwLock<HashMap<Sig128, Annotation>>,
    /// Inverted index: normalized tag → normalized signatures.
    inverted: RwLock<HashMap<String, HashSet<Sig128>>>,
    /// Exclusive build locks by precise signature.
    locks: Mutex<HashMap<Sig128, BuildLock>>,
    /// Registered materialized views by precise signature.
    views: RwLock<HashMap<Sig128, RegisteredView>>,
    /// Shared simulated clock.
    clock: Arc<SimClock>,
    /// Number of service threads (affects modeled lookup latency).
    service_threads: usize,
    stats: Mutex<MetadataStats>,
    /// Optional fault injector consulted by the `try_*` entrypoints.
    faults: RwLock<Option<Arc<FaultInjector>>>,
}

impl MetadataService {
    /// A service with the given clock and thread count.
    pub fn new(clock: Arc<SimClock>, service_threads: usize) -> Self {
        MetadataService {
            annotations: RwLock::new(HashMap::new()),
            inverted: RwLock::new(HashMap::new()),
            locks: Mutex::new(HashMap::new()),
            views: RwLock::new(HashMap::new()),
            clock,
            service_threads: service_threads.max(1),
            stats: Mutex::new(MetadataStats::default()),
            faults: RwLock::new(None),
        }
    }

    /// Installs (or clears) the fault injector consulted by the `try_*`
    /// entrypoints. Without one, every call succeeds.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.faults.write() = injector;
    }

    fn injected_failure(&self, site: FaultSite, job: JobId) -> bool {
        match self.faults.read().as_ref() {
            Some(inj) => inj.should_fail(site, job),
            None => false,
        }
    }

    /// Loads (replacing) the analyzer's selected views as annotations and
    /// rebuilds the inverted index ("the metadata service periodically
    /// polls for the output of the CloudViews analyzer").
    pub fn load_annotations(&self, selected: &[SelectedView]) {
        let mut annotations = self.annotations.write();
        let mut inverted = self.inverted.write();
        annotations.clear();
        inverted.clear();
        for s in selected {
            annotations.insert(s.annotation.normalized, s.annotation.clone());
            for tag in &s.input_tags {
                inverted
                    .entry(tag.clone())
                    .or_default()
                    .insert(s.annotation.normalized);
            }
        }
    }

    /// Figure 9 steps 1/2: one lookup per job. Returns every annotation
    /// whose tags intersect the job's tags (an over-approximation the
    /// optimizer narrows by matching actual signatures), plus the modeled
    /// service latency for the request.
    pub fn relevant_views_for(&self, job_tags: &[String]) -> (Vec<Annotation>, SimDuration) {
        let inverted = self.inverted.read();
        let annotations = self.annotations.read();
        let mut sigs: HashSet<Sig128> = HashSet::new();
        for tag in job_tags {
            if let Some(set) = inverted.get(tag) {
                sigs.extend(set.iter().copied());
            }
        }
        let result: Vec<Annotation> = sigs
            .iter()
            .filter_map(|s| annotations.get(s).cloned())
            .collect();
        let mut stats = self.stats.lock();
        stats.lookups += 1;
        stats.annotations_returned += result.len() as u64;
        (result, self.lookup_latency())
    }

    /// Fault-aware wrapper around [`MetadataService::relevant_views_for`]:
    /// the one-per-job lookup, attributed to `job` so the fault injector can
    /// fail it deterministically. The runtime retries with backoff and then
    /// falls back to the baseline plan (DESIGN.md "Fault tolerance &
    /// degradation").
    pub fn try_relevant_views_for(
        &self,
        job: JobId,
        job_tags: &[String],
    ) -> Result<(Vec<Annotation>, SimDuration)> {
        if self.injected_failure(FaultSite::MetadataLookup, job) {
            self.stats.lock().failed_lookups += 1;
            return Err(ScopeError::ServiceUnavailable(format!(
                "metadata lookup for {job} timed out"
            )));
        }
        Ok(self.relevant_views_for(job_tags))
    }

    /// Fault-aware wrapper around [`MetadataService::propose`]. On an
    /// injected failure the proposal is lost: no lock is granted and the
    /// caller simply skips materializing (the view stays buildable by a
    /// later job).
    pub fn try_propose(
        &self,
        precise: Sig128,
        job: JobId,
        lock_ttl: SimDuration,
    ) -> Result<LockOutcome> {
        if self.injected_failure(FaultSite::Propose, job) {
            self.stats.lock().failed_proposals += 1;
            return Err(ScopeError::ServiceUnavailable(format!(
                "propose({precise}) by {job} timed out"
            )));
        }
        Ok(self.propose(precise, job, lock_ttl))
    }

    /// Fault-aware wrapper around [`MetadataService::report_materialized`].
    /// On an injected failure the report is lost: the built file exists in
    /// storage but is never registered, and the builder's lock lapses at
    /// its mined expiry instead of being released.
    pub fn try_report_materialized(
        &self,
        view: AvailableView,
        producer: JobId,
        available_at: SimTime,
        expires_at: SimTime,
    ) -> Result<()> {
        if self.injected_failure(FaultSite::ReportMaterialized, producer) {
            self.stats.lock().failed_reports += 1;
            return Err(ScopeError::ServiceUnavailable(format!(
                "report_materialized({}) by {producer} timed out",
                view.precise
            )));
        }
        self.report_materialized(view, producer, available_at, expires_at);
        Ok(())
    }

    /// Modeled lookup latency: a fixed network+query base plus a service
    /// term that parallelizes across service threads. Calibrated to the
    /// paper's 19 ms (1 thread) and 14.3 ms (5 threads).
    pub fn lookup_latency(&self) -> SimDuration {
        let ms = 13.12 + 5.88 / self.service_threads as f64;
        SimDuration::from_secs_f64(ms / 1e3)
    }

    /// Figure 9 steps 3/4: propose to materialize `precise`. Grants an
    /// exclusive lock expiring after `lock_ttl` (mined from the subgraph's
    /// average runtime) unless the view exists or the lock is taken.
    pub fn propose(&self, precise: Sig128, job: JobId, lock_ttl: SimDuration) -> LockOutcome {
        let now = self.clock.now();
        if self.lookup_view(precise, now).is_some() {
            self.stats.lock().already_materialized += 1;
            return LockOutcome::AlreadyMaterialized;
        }
        let mut locks = self.locks.lock();
        // Double-check under the lock-table mutex: a concurrent
        // report_materialized may have registered the view (and released
        // its lock) between the unlocked check above and acquiring the
        // mutex; without the re-check this job would be granted a lock for
        // a view that already exists and duplicate the build.
        if self.lookup_view(precise, now).is_some() {
            self.stats.lock().already_materialized += 1;
            return LockOutcome::AlreadyMaterialized;
        }
        match locks.get(&precise) {
            Some(lock) if lock.expires_at > now && lock.holder != job => {
                self.stats.lock().lock_conflicts += 1;
                LockOutcome::AlreadyLocked
            }
            prev => {
                // The mutex serializes this whole block, so when several
                // jobs observe the same expired lock, exactly one reaches
                // this arm first and the rest see its fresh lock above.
                let takeover = matches!(
                    prev,
                    Some(lock) if lock.holder != job && lock.expires_at <= now
                );
                locks.insert(
                    precise,
                    BuildLock {
                        holder: job,
                        expires_at: now + lock_ttl,
                    },
                );
                let mut stats = self.stats.lock();
                stats.locks_granted += 1;
                if takeover {
                    stats.expired_takeovers += 1;
                }
                LockOutcome::Acquired
            }
        }
    }

    /// Current holder and expiry of the build lock on `precise`, if any
    /// (expired locks are reported until purged — they are reclaimable, not
    /// gone).
    pub fn lock_holder(&self, precise: Sig128) -> Option<(JobId, SimTime)> {
        self.locks
            .lock()
            .get(&precise)
            .map(|l| (l.holder, l.expires_at))
    }

    /// Number of build locks that are still within their TTL at `now`. The
    /// fault-tolerance invariant is that this reaches zero once all jobs
    /// finish and the mined TTLs elapse — a crashed builder can never wedge
    /// a view signature forever.
    pub fn num_active_locks(&self, now: SimTime) -> usize {
        self.locks
            .lock()
            .values()
            .filter(|l| l.expires_at > now)
            .count()
    }

    /// Number of build locks present (active or lapsed-but-unpurged).
    pub fn num_locks(&self) -> usize {
        self.locks.lock().len()
    }

    /// Figure 9 steps 5/6: the job manager reports a successful
    /// materialization; the lock is released and the view becomes visible
    /// to future lookups from `available_at` (early materialization may
    /// pre-date job completion).
    pub fn report_materialized(
        &self,
        view: AvailableView,
        producer: JobId,
        available_at: SimTime,
        expires_at: SimTime,
    ) {
        let precise = view.precise;
        // Lock order: never hold the views guard while taking the locks
        // mutex — propose() holds the locks mutex while reading views (its
        // double-check), so overlapping the two here would be an ABBA
        // deadlock. Each guard below is a temporary dropped at the end of
        // its own statement.
        self.views.write().entry(precise).or_insert(RegisteredView {
            view,
            producer,
            created_at: available_at,
            expires_at,
        });
        self.locks.lock().remove(&precise);
        self.stats.lock().views_registered += 1;
    }

    /// View lookup as of an explicit time (used by the runtime to pin a
    /// job's visibility to its submission time under overlapped arrivals).
    pub fn view_available_at(&self, precise: Sig128, now: SimTime) -> Option<AvailableView> {
        self.lookup_view(precise, now)
    }

    fn lookup_view(&self, precise: Sig128, now: SimTime) -> Option<AvailableView> {
        let views = self.views.read();
        views
            .get(&precise)
            .filter(|v| v.created_at <= now && v.expires_at > now)
            .map(|v| v.view.clone())
    }

    /// Producer job of a registered view (provenance, requirement 6).
    pub fn view_producer(&self, precise: Sig128) -> Option<JobId> {
        self.views.read().get(&precise).map(|v| v.producer)
    }

    /// Drops expired views and lapsed locks; returns how many views were
    /// purged. The storage manager purges the corresponding files.
    pub fn purge_expired(&self) -> usize {
        let now = self.clock.now();
        let mut views = self.views.write();
        let before = views.len();
        views.retain(|_, v| v.expires_at > now);
        let purged = before - views.len();
        self.locks.lock().retain(|_, l| l.expires_at > now);
        purged
    }

    /// Unregisters specific views (admin space reclamation, Section 5.4:
    /// "cleaning the views from the metadata service first before deleting
    /// any of the physical files").
    pub fn unregister_views(&self, precise: &[Sig128]) {
        let mut views = self.views.write();
        for p in precise {
            views.remove(p);
        }
    }

    /// Registered (non-expired) view count.
    pub fn num_views(&self) -> usize {
        self.views.read().len()
    }

    /// Loaded annotation count.
    pub fn num_annotations(&self) -> usize {
        self.annotations.read().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MetadataStats {
        *self.stats.lock()
    }

    /// The shared clock (used by the runtime to time operations).
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }
}

impl ViewServices for MetadataService {
    fn view_available(&self, precise: Sig128) -> Option<AvailableView> {
        self.lookup_view(precise, self.clock.now())
    }

    fn propose_materialize(
        &self,
        precise: Sig128,
        _normalized: Sig128,
        job: JobId,
        lock_ttl: SimDuration,
    ) -> bool {
        self.propose(precise, job, lock_ttl) == LockOutcome::Acquired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::sip128;
    use scope_plan::PhysicalProps;

    fn selected(normalized: Sig128, tags: &[&str]) -> SelectedView {
        SelectedView {
            annotation: Annotation {
                normalized,
                props: PhysicalProps::any(),
                ttl: SimDuration::from_secs(3600),
                avg_cpu: SimDuration::from_secs(10),
                avg_rows: 100,
                avg_bytes: 1000,
            },
            input_tags: tags.iter().map(|s| s.to_string()).collect(),
            utility: SimDuration::from_secs(30),
            frequency: 3,
            precise_last_seen: Sig128::ZERO,
        }
    }

    fn service() -> MetadataService {
        MetadataService::new(Arc::new(SimClock::new()), 1)
    }

    fn a_view(precise: Sig128) -> AvailableView {
        AvailableView {
            precise,
            rows: 10,
            bytes: 100,
            props: PhysicalProps::any(),
        }
    }

    #[test]
    fn inverted_index_lookup() {
        let m = service();
        let n1 = sip128(b"n1");
        let n2 = sip128(b"n2");
        m.load_annotations(&[
            selected(n1, &["in/a.ss", "in/b.ss"]),
            selected(n2, &["in/c.ss"]),
        ]);
        assert_eq!(m.num_annotations(), 2);
        let (hits, latency) = m.relevant_views_for(&["in/b.ss".into()]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].normalized, n1);
        assert!(latency > SimDuration::ZERO);
        // Multi-tag job gets the union.
        let (hits, _) = m.relevant_views_for(&["in/a.ss".into(), "in/c.ss".into()]);
        assert_eq!(hits.len(), 2);
        // Unknown tags: empty.
        let (hits, _) = m.relevant_views_for(&["in/zzz.ss".into()]);
        assert!(hits.is_empty());
        assert_eq!(m.stats().lookups, 3);
    }

    #[test]
    fn reload_replaces_annotations() {
        let m = service();
        m.load_annotations(&[selected(sip128(b"old"), &["t"])]);
        m.load_annotations(&[selected(sip128(b"new"), &["t"])]);
        let (hits, _) = m.relevant_views_for(&["t".into()]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].normalized, sip128(b"new"));
    }

    #[test]
    fn exclusive_lock_protocol() {
        let m = service();
        let p = sip128(b"view");
        let ttl = SimDuration::from_secs(60);
        assert_eq!(m.propose(p, JobId::new(1), ttl), LockOutcome::Acquired);
        // Second job is refused.
        assert_eq!(m.propose(p, JobId::new(2), ttl), LockOutcome::AlreadyLocked);
        // The holder itself may re-propose (idempotent re-acquire).
        assert_eq!(m.propose(p, JobId::new(1), ttl), LockOutcome::Acquired);
        // After the build is reported, proposals see AlreadyMaterialized.
        m.report_materialized(a_view(p), JobId::new(1), SimTime::ZERO, SimTime::MAX);
        assert_eq!(
            m.propose(p, JobId::new(3), ttl),
            LockOutcome::AlreadyMaterialized
        );
        let stats = m.stats();
        assert_eq!(stats.lock_conflicts, 1);
        assert_eq!(stats.views_registered, 1);
    }

    #[test]
    fn lock_expiry_is_fault_tolerant() {
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::new(Arc::clone(&clock), 1);
        let p = sip128(b"crashy");
        assert_eq!(
            m.propose(p, JobId::new(1), SimDuration::from_secs(10)),
            LockOutcome::Acquired
        );
        // Builder "crashes"; 11 seconds later another job may take over.
        clock.advance(SimDuration::from_secs(11));
        assert_eq!(
            m.propose(p, JobId::new(2), SimDuration::from_secs(10)),
            LockOutcome::Acquired
        );
    }

    #[test]
    fn views_respect_availability_window() {
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::new(Arc::clone(&clock), 1);
        let p = sip128(b"early");
        // Published with created_at in the future (early materialization
        // by a job that started later than now).
        m.report_materialized(
            a_view(p),
            JobId::new(1),
            SimTime(5_000_000),
            SimTime(10_000_000),
        );
        assert!(m.view_available(p).is_none(), "not yet available");
        clock.advance(SimDuration::from_secs(6));
        assert!(m.view_available(p).is_some());
        clock.advance(SimDuration::from_secs(10));
        assert!(m.view_available(p).is_none(), "expired");
        assert_eq!(m.purge_expired(), 1);
        assert_eq!(m.num_views(), 0);
    }

    #[test]
    fn unregister_clears_metadata_first() {
        let m = service();
        let p = sip128(b"gone");
        m.report_materialized(a_view(p), JobId::new(1), SimTime::ZERO, SimTime::MAX);
        m.unregister_views(&[p]);
        assert!(m.view_available(p).is_none());
    }

    #[test]
    fn lookup_latency_matches_paper_calibration() {
        let single = MetadataService::new(Arc::new(SimClock::new()), 1);
        let five = MetadataService::new(Arc::new(SimClock::new()), 5);
        let l1 = single.lookup_latency().as_secs_f64() * 1e3;
        let l5 = five.lookup_latency().as_secs_f64() * 1e3;
        assert!((l1 - 19.0).abs() < 0.1, "{l1}");
        assert!((l5 - 14.3).abs() < 0.1, "{l5}");
    }

    #[test]
    fn concurrent_proposals_single_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let m = Arc::new(service());
        let p = sip128(b"contended");
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let m = Arc::clone(&m);
                let wins = Arc::clone(&wins);
                std::thread::spawn(move || {
                    if m.propose(p, JobId::new(i), SimDuration::from_secs(60))
                        == LockOutcome::Acquired
                    {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one job builds");
    }

    #[test]
    fn expired_lock_has_exactly_one_takeover_winner() {
        // Satellite of the crashed-builder story: many jobs observe the
        // same *expired* lock concurrently; the lock-table mutex must admit
        // exactly one of them as the new builder.
        let clock = Arc::new(SimClock::new());
        let m = Arc::new(MetadataService::new(Arc::clone(&clock), 1));
        let p = sip128(b"crashed-builder");
        assert_eq!(
            m.propose(p, JobId::new(99), SimDuration::from_secs(10)),
            LockOutcome::Acquired
        );
        clock.advance(SimDuration::from_secs(11)); // builder crashed; lock lapsed
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || m.propose(p, JobId::new(i), SimDuration::from_secs(60)))
            })
            .collect();
        let outcomes: Vec<LockOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let wins = outcomes
            .iter()
            .filter(|&&o| o == LockOutcome::Acquired)
            .count();
        assert_eq!(
            wins, 1,
            "exactly one job takes over the expired lock: {outcomes:?}"
        );
        assert_eq!(m.stats().expired_takeovers, 1);
        assert_eq!(m.num_active_locks(clock.now()), 1);
    }

    #[test]
    fn propose_never_grants_after_registration() {
        // Regression for the propose() double-check race: the view-existence
        // check used to run before acquiring the lock-table mutex, so a
        // propose racing with report_materialized could be granted a build
        // lock for a view that already existed. The only legitimate
        // Acquired for the contender below is through that race window.
        for round in 0..50u64 {
            let m = Arc::new(service());
            let p = sip128(format!("race{round}").as_bytes());
            let ttl = SimDuration::from_secs(3600);
            let builder = {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    assert_eq!(m.propose(p, JobId::new(1), ttl), LockOutcome::Acquired);
                    m.report_materialized(a_view(p), JobId::new(1), SimTime::ZERO, SimTime::MAX);
                })
            };
            let contender = {
                let m = Arc::clone(&m);
                std::thread::spawn(move || loop {
                    match m.propose(p, JobId::new(2), ttl) {
                        LockOutcome::Acquired => break false,
                        LockOutcome::AlreadyMaterialized => break true,
                        LockOutcome::AlreadyLocked => std::hint::spin_loop(),
                    }
                })
            };
            builder.join().unwrap();
            assert!(
                contender.join().unwrap(),
                "round {round}: contender was granted a lock for an existing view"
            );
        }
    }

    #[test]
    fn injected_lookup_propose_and_report_faults() {
        use crate::faults::{FaultPlan, ScriptedFault};
        let m = service();
        m.load_annotations(&[selected(sip128(b"n"), &["t"])]);
        let job = JobId::new(5);
        let p = sip128(b"v");
        // Script: first lookup, first propose, and first report by job 5
        // all fail; everything else passes.
        let plan = FaultPlan {
            scripted: vec![
                ScriptedFault {
                    site: FaultSite::MetadataLookup,
                    job: Some(job),
                    call_index: 0,
                },
                ScriptedFault {
                    site: FaultSite::Propose,
                    job: Some(job),
                    call_index: 0,
                },
                ScriptedFault {
                    site: FaultSite::ReportMaterialized,
                    job: Some(job),
                    call_index: 0,
                },
            ],
            ..Default::default()
        };
        m.set_fault_injector(Some(FaultInjector::new(plan)));
        let ttl = SimDuration::from_secs(60);

        let err = m.try_relevant_views_for(job, &["t".into()]).unwrap_err();
        assert_eq!(err.kind(), "service_unavailable");
        assert!(err.is_degradable());
        // Retry succeeds (call index 1).
        assert_eq!(
            m.try_relevant_views_for(job, &["t".into()])
                .unwrap()
                .0
                .len(),
            1
        );

        assert!(m.try_propose(p, job, ttl).is_err());
        assert_eq!(m.try_propose(p, job, ttl).unwrap(), LockOutcome::Acquired);

        assert!(m
            .try_report_materialized(a_view(p), job, SimTime::ZERO, SimTime::MAX)
            .is_err());
        assert_eq!(m.num_views(), 0, "failed report must not register the view");
        assert!(
            m.lock_holder(p).is_some(),
            "failed report leaves the lock to lapse"
        );
        m.try_report_materialized(a_view(p), job, SimTime::ZERO, SimTime::MAX)
            .unwrap();
        assert_eq!(m.num_views(), 1);
        assert!(m.lock_holder(p).is_none());

        let stats = m.stats();
        assert_eq!(
            (
                stats.failed_lookups,
                stats.failed_proposals,
                stats.failed_reports
            ),
            (1, 1, 1)
        );
        // Other jobs are untouched by the scripted plan.
        assert!(m
            .try_relevant_views_for(JobId::new(6), &["t".into()])
            .is_ok());
    }

    #[test]
    fn view_producer_provenance() {
        let m = service();
        let p = sip128(b"prov");
        m.report_materialized(a_view(p), JobId::new(42), SimTime::ZERO, SimTime::MAX);
        assert_eq!(m.view_producer(p), Some(JobId::new(42)));
        assert_eq!(m.view_producer(sip128(b"other")), None);
    }

    #[test]
    fn first_report_wins() {
        let m = service();
        let p = sip128(b"dup");
        m.report_materialized(a_view(p), JobId::new(1), SimTime::ZERO, SimTime::MAX);
        m.report_materialized(a_view(p), JobId::new(2), SimTime::ZERO, SimTime::MAX);
        assert_eq!(m.view_producer(p), Some(JobId::new(1)));
        assert_eq!(m.num_views(), 1);
    }
}
