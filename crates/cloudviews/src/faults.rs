//! Deterministic fault injection for the CloudViews runtime (DESIGN.md
//! "Fault tolerance & degradation").
//!
//! The paper (§6) claims the runtime degrades gracefully: metadata-service
//! failures must never fail a job (the job falls back to its baseline plan),
//! a crashed builder's exclusive build lock lapses at its mined expiry so
//! another job can take over, and a lost or corrupted view file falls back
//! to recomputation. This module provides the adversary that proves it:
//!
//! * a [`FaultPlan`] — per-site probabilities plus scripted triggers — that
//!   is **deterministic and seedable**: every decision is a pure hash of
//!   `(seed, site, job, per-job call index)`, so a run injects exactly the
//!   same faults regardless of thread interleaving, and any failure
//!   reproduces from its seed;
//! * a [`FaultInjector`] threaded through the metadata service and the
//!   runtime driver, which records every injected fault in
//!   [`InjectedFaults`] so tests can prove the per-job degradation counters
//!   account for everything that was injected.
//!
//! Sites map to the failure modes of the paper's runtime:
//!
//! | site                | models                                           |
//! |---------------------|--------------------------------------------------|
//! | `MetadataLookup`    | the per-job annotation lookup times out / fails  |
//! | `Propose`           | a propose (build-lock) call fails                |
//! | `ReportMaterialized`| the job manager's success report fails           |
//! | `BuilderCrash`      | the builder dies mid-materialization, lock held  |
//! | `ViewLoss`          | a published view file disappears from storage    |
//! | `ViewCorruption`    | a published view file is corrupted in place      |

use std::sync::Arc;

use parking_lot::Mutex;
use scope_common::hash::{sip64, Sig128};
use scope_common::ids::JobId;
use scope_common::time::SimDuration;
use scope_engine::storage::StorageManager;
use std::collections::HashMap;

/// A failure-injection site in the runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The compiler's one-per-job metadata lookup.
    MetadataLookup,
    /// A materialization proposal (build-lock acquisition).
    Propose,
    /// The job manager's materialization-success report.
    ReportMaterialized,
    /// The builder job dies mid-materialization, still holding its lock.
    BuilderCrash,
    /// A published view file is lost from the store.
    ViewLoss,
    /// A published view file is corrupted in place.
    ViewCorruption,
}

impl FaultSite {
    fn tag(self) -> &'static str {
        match self {
            FaultSite::MetadataLookup => "lookup",
            FaultSite::Propose => "propose",
            FaultSite::ReportMaterialized => "report",
            FaultSite::BuilderCrash => "crash",
            FaultSite::ViewLoss => "loss",
            FaultSite::ViewCorruption => "corrupt",
        }
    }
}

/// A scripted trigger: fail the `call_index`-th call (0-based, per job when
/// `job` is set, otherwise for every job) at `site`, regardless of the
/// site's probability. Scripted triggers make targeted regression tests
/// deterministic without cranking probabilities to 1.
#[derive(Clone, Debug)]
pub struct ScriptedFault {
    /// Site to fire at.
    pub site: FaultSite,
    /// Restrict to one job, or `None` for every job.
    pub job: Option<JobId>,
    /// Which call (0-based, counted per `(site, job)`) to fail.
    pub call_index: u64,
}

/// The injection schedule: per-site probabilities, scripted triggers, and
/// an optional early-materialization publication delay.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// P(metadata lookup call fails).
    pub lookup_fail: f64,
    /// P(propose call fails).
    pub propose_fail: f64,
    /// P(report_materialized call fails).
    pub report_fail: f64,
    /// P(builder dies mid-materialization of a view).
    pub builder_crash: f64,
    /// P(a published view file is subsequently lost).
    pub view_loss: f64,
    /// P(a published view file is subsequently corrupted).
    pub view_corruption: f64,
    /// Added to every view's publication (availability) time.
    pub publish_delay: SimDuration,
    /// Deterministic scripted triggers, applied on top of probabilities.
    pub scripted: Vec<ScriptedFault>,
}

impl Default for FaultPlan {
    /// The all-quiet plan: nothing fails.
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            lookup_fail: 0.0,
            propose_fail: 0.0,
            report_fail: 0.0,
            builder_crash: 0.0,
            view_loss: 0.0,
            view_corruption: 0.0,
            publish_delay: SimDuration::ZERO,
            scripted: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that exercises every failure mode at `p`, seeded by `seed`.
    pub fn chaos(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            lookup_fail: p,
            propose_fail: p,
            report_fail: p,
            builder_crash: p,
            view_loss: p,
            view_corruption: p,
            publish_delay: SimDuration::ZERO,
            scripted: Vec::new(),
        }
    }

    fn probability(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::MetadataLookup => self.lookup_fail,
            FaultSite::Propose => self.propose_fail,
            FaultSite::ReportMaterialized => self.report_fail,
            FaultSite::BuilderCrash => self.builder_crash,
            FaultSite::ViewLoss => self.view_loss,
            FaultSite::ViewCorruption => self.view_corruption,
        }
    }
}

/// Counts of faults actually injected, by site. The acceptance invariant is
/// that the per-job degradation counters in [`crate::runtime::JobRunReport`]
/// sum to exactly these numbers for the call sites, and consistently bound
/// the stored-file sites (a lost file may be observed by zero or many
/// readers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Failed metadata lookup calls.
    pub lookup_failures: u64,
    /// Failed propose calls.
    pub propose_failures: u64,
    /// Failed report_materialized calls.
    pub report_failures: u64,
    /// Builder deaths mid-materialization.
    pub builder_crashes: u64,
    /// View files lost after publication.
    pub views_lost: u64,
    /// View files corrupted after publication.
    pub views_corrupted: u64,
    /// Publications delayed by the plan's `publish_delay`.
    pub delayed_publications: u64,
}

impl InjectedFaults {
    /// Total injected faults across all sites (delays excluded: a delayed
    /// publication is not a failure).
    pub fn total(&self) -> u64 {
        self.lookup_failures
            + self.propose_failures
            + self.report_failures
            + self.builder_crashes
            + self.views_lost
            + self.views_corrupted
    }
}

/// The live injector: owns the plan, per-`(site, job)` call counters, and
/// the injected-fault ledger.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-(site, job) call sequence numbers.
    calls: Mutex<HashMap<(FaultSite, JobId), u64>>,
    injected: Mutex<InjectedFaults>,
}

impl FaultInjector {
    /// Builds an injector over `plan`.
    pub fn new(plan: FaultPlan) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            plan,
            calls: Mutex::new(HashMap::new()),
            injected: Mutex::new(InjectedFaults::default()),
        })
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides — deterministically — whether the next call at `site` by
    /// `job` fails, and records the injection if so. Decisions are pure in
    /// `(seed, site, job, call index)`: a job's calls are sequential, so
    /// the same run injects the same faults under any thread interleaving.
    pub fn should_fail(&self, site: FaultSite, job: JobId) -> bool {
        let index = {
            let mut calls = self.calls.lock();
            let c = calls.entry((site, job)).or_insert(0);
            let index = *c;
            *c += 1;
            index
        };
        let scripted = self
            .plan
            .scripted
            .iter()
            .any(|s| s.site == site && s.call_index == index && s.job.is_none_or(|j| j == job));
        let fired = scripted || {
            let p = self.plan.probability(site);
            p > 0.0 && {
                let h = sip64(
                    format!("{}/{}/{}/{}", self.plan.seed, site.tag(), job, index).as_bytes(),
                );
                // Top 53 bits → uniform in [0, 1).
                ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
            }
        };
        if fired {
            let mut injected = self.injected.lock();
            match site {
                FaultSite::MetadataLookup => injected.lookup_failures += 1,
                FaultSite::Propose => injected.propose_failures += 1,
                FaultSite::ReportMaterialized => injected.report_failures += 1,
                FaultSite::BuilderCrash => injected.builder_crashes += 1,
                FaultSite::ViewLoss => injected.views_lost += 1,
                FaultSite::ViewCorruption => injected.views_corrupted += 1,
            }
        }
        fired
    }

    /// Applies the plan's stored-file fate to a just-published view: the
    /// file may be lost or corrupted in place (loss wins when both fire).
    /// Returns the fate applied, recording it in the ledger.
    pub fn apply_view_fate(
        &self,
        storage: &StorageManager,
        precise: Sig128,
        producer: JobId,
    ) -> Option<FaultSite> {
        if self.should_fail(FaultSite::ViewLoss, producer) {
            storage.lose_view(precise);
            return Some(FaultSite::ViewLoss);
        }
        if self.should_fail(FaultSite::ViewCorruption, producer) {
            storage.corrupt_view(precise);
            return Some(FaultSite::ViewCorruption);
        }
        None
    }

    /// The publication delay this plan imposes (recording one delayed
    /// publication when nonzero).
    pub fn publication_delay(&self) -> SimDuration {
        if self.plan.publish_delay > SimDuration::ZERO {
            self.injected.lock().delayed_publications += 1;
        }
        self.plan.publish_delay
    }

    /// Snapshot of everything injected so far.
    pub fn injected(&self) -> InjectedFaults {
        *self.injected.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_call_index() {
        let plan = FaultPlan::chaos(1234, 0.5);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let job = JobId::new(7);
        let seq_a: Vec<bool> = (0..64)
            .map(|_| a.should_fail(FaultSite::MetadataLookup, job))
            .collect();
        let seq_b: Vec<bool> = (0..64)
            .map(|_| b.should_fail(FaultSite::MetadataLookup, job))
            .collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&f| f), "p=0.5 over 64 calls must fire");
        assert!(
            !seq_a.iter().all(|&f| f),
            "p=0.5 over 64 calls must also pass"
        );
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn sites_and_jobs_draw_independent_streams() {
        let inj = FaultInjector::new(FaultPlan::chaos(9, 0.5));
        let stream = |site, job: u64| -> Vec<bool> {
            (0..32)
                .map(|_| inj.should_fail(site, JobId::new(job)))
                .collect()
        };
        let a = stream(FaultSite::Propose, 1);
        let b = stream(FaultSite::Propose, 2);
        let c = stream(FaultSite::ReportMaterialized, 1);
        assert_ne!(a, b, "jobs must not share a fault stream");
        assert_ne!(a, c, "sites must not share a fault stream");
    }

    #[test]
    fn zero_probability_never_fires() {
        let inj = FaultInjector::new(FaultPlan::default());
        for i in 0..256 {
            assert!(!inj.should_fail(FaultSite::BuilderCrash, JobId::new(i)));
        }
        assert_eq!(inj.injected().total(), 0);
    }

    #[test]
    fn scripted_trigger_fires_exactly_once() {
        let plan = FaultPlan {
            scripted: vec![ScriptedFault {
                site: FaultSite::MetadataLookup,
                job: Some(JobId::new(3)),
                call_index: 1,
            }],
            ..Default::default()
        };
        let inj = FaultInjector::new(plan);
        // Other jobs are untouched.
        assert!(!inj.should_fail(FaultSite::MetadataLookup, JobId::new(4)));
        // Job 3: call 0 passes, call 1 fails, call 2 passes.
        assert!(!inj.should_fail(FaultSite::MetadataLookup, JobId::new(3)));
        assert!(inj.should_fail(FaultSite::MetadataLookup, JobId::new(3)));
        assert!(!inj.should_fail(FaultSite::MetadataLookup, JobId::new(3)));
        assert_eq!(inj.injected().lookup_failures, 1);
    }

    #[test]
    fn probability_calibration() {
        let inj = FaultInjector::new(FaultPlan::chaos(42, 0.2));
        let fired = (0..10_000)
            .filter(|&i| inj.should_fail(FaultSite::Propose, JobId::new(i)))
            .count();
        assert!((1_600..2_400).contains(&fired), "p=0.2 fired {fired}/10000");
        assert_eq!(inj.injected().propose_failures, fired as u64);
    }
}
