//! Durable state for the CloudViews services (DESIGN.md §16).
//!
//! Three independent stores live under one root directory:
//!
//! * `<root>/meta` — a [`LogDir`]: snapshot + WAL of *logical mutation
//!   events* against the metadata service ([`WalEvent`]). Every
//!   state-changing call appends its event before the in-memory mutation
//!   is acknowledged; cold start replays the newest snapshot plus the
//!   WAL tail and reproduces a byte-identical service (pinned submission
//!   times ride in the events, so visibility semantics survive restart).
//! * `<root>/repo` — a [`SegmentStore`] of workload-repository job
//!   records keyed by append sequence number (big-endian `u64`, so a
//!   scan yields records in original append order).
//! * `<root>/views` — a [`SegmentStore`] of published view files keyed
//!   by precise signature. [`DurableStore`] implements
//!   [`StorageEventSink`] so the storage manager mirrors publishes and
//!   deletes here as they happen.
//!
//! Replay is at-least-once: the snapshot protocol (rotate → export with
//! no log lock held → seal) may leave events in *both* the snapshot and
//! the surviving tail. Every [`WalEvent`] is therefore idempotent at its
//! pinned time — re-applying it to state that already reflects it is a
//! no-op.
//!
//! Lock ordering: the WAL mutex is a *leaf*. The metadata service appends
//! `LockGranted` while holding a shard's lock mutex, so nothing here may
//! call back into the services. The snapshot export closure runs with no
//! store lock held for the same reason (the exporter takes service locks).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use scope_common::codec::{CodecError, Dec, Enc};
use scope_common::hash::Sig128;
use scope_common::ids::JobId;
use scope_common::time::SimTime;
use scope_engine::repo::JobRecord;
use scope_engine::storage::{StorageEventSink, ViewFile};
use scope_store::log::LogDir;
use scope_store::segment::SegmentStore;
use scope_store::{Result, StoreError};

use crate::analyzer::SelectedView;
use crate::api::ReportRequest;
use crate::codec::{
    get_job_record, get_report_request, get_selected_view, get_sig, get_sigs, get_time,
    get_view_file, put_job_record, put_report_request, put_selected_view, put_sig, put_sigs,
    put_time, put_view_file,
};

/// Default WAL size past which `maybe_snapshot` compacts (4 MiB).
pub const DEFAULT_SNAPSHOT_THRESHOLD: u64 = 4 << 20;

/// MemTable size past which the key-value stores flush a segment.
const KV_FLUSH_THRESHOLD: u64 = 4 << 20;

/// One logical mutation of the metadata service, as logged to the WAL.
///
/// Events carry the *pinned* simulation times observed at append, never
/// live-clock reads, so replaying them later reproduces the original
/// visibility and expiry decisions exactly.
#[derive(Clone, Debug)]
pub enum WalEvent {
    /// An analyzer round shipped a fresh annotation set
    /// (`MetadataService::load_annotations_at`).
    LoadAnnotations {
        /// The selected views, in shipped order.
        selected: Vec<SelectedView>,
        /// Pinned load time (drives `keep_until`).
        now: SimTime,
    },
    /// A build lock was granted (`propose` returned `Acquired` — conflicts
    /// and takeover losses mutate nothing and are not logged).
    LockGranted {
        /// Precise signature being built.
        precise: Sig128,
        /// Winning job.
        holder: JobId,
        /// Pinned grant time.
        at: SimTime,
        /// Lease expiry (`at + lock_ttl`).
        expires_at: SimTime,
    },
    /// A materialized view was registered (`register`). The full request
    /// is logged; replay re-runs registration, which also clears the
    /// build lock exactly as the live path does.
    Register(Box<ReportRequest>),
    /// A janitor sweep purged one shard at a pinned time.
    PurgeShard {
        /// Shard index swept.
        index: u32,
        /// Pinned sweep time.
        now: SimTime,
    },
    /// Views force-unregistered (dead-view fallback) at a pinned time.
    Unregister {
        /// Precise signatures removed.
        precise: Vec<Sig128>,
        /// Pinned removal time (live views at this instant survive).
        now: SimTime,
    },
}

const TAG_LOAD_ANNOTATIONS: u8 = 1;
const TAG_LOCK_GRANTED: u8 = 2;
const TAG_REGISTER: u8 = 3;
const TAG_PURGE_SHARD: u8 = 4;
const TAG_UNREGISTER: u8 = 5;

impl WalEvent {
    /// Serializes the event to a WAL record payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            WalEvent::LoadAnnotations { selected, now } => {
                e.put_u8(TAG_LOAD_ANNOTATIONS);
                put_time(&mut e, *now);
                e.put_seq(selected.len());
                for s in selected {
                    put_selected_view(&mut e, s);
                }
            }
            WalEvent::LockGranted {
                precise,
                holder,
                at,
                expires_at,
            } => {
                e.put_u8(TAG_LOCK_GRANTED);
                put_sig(&mut e, *precise);
                e.put_u64(holder.raw());
                put_time(&mut e, *at);
                put_time(&mut e, *expires_at);
            }
            WalEvent::Register(req) => {
                e.put_u8(TAG_REGISTER);
                put_report_request(&mut e, req);
            }
            WalEvent::PurgeShard { index, now } => {
                e.put_u8(TAG_PURGE_SHARD);
                e.put_u32(*index);
                put_time(&mut e, *now);
            }
            WalEvent::Unregister { precise, now } => {
                e.put_u8(TAG_UNREGISTER);
                put_sigs(&mut e, precise);
                put_time(&mut e, *now);
            }
        }
        e.buf
    }

    /// Decodes an event from a WAL record payload.
    pub fn decode(payload: &[u8]) -> std::result::Result<WalEvent, CodecError> {
        let mut d = Dec::new(payload);
        let ev = match d.u8()? {
            TAG_LOAD_ANNOTATIONS => {
                let now = get_time(&mut d)?;
                let n = d.seq()?;
                let mut selected = Vec::with_capacity(n);
                for _ in 0..n {
                    selected.push(get_selected_view(&mut d)?);
                }
                WalEvent::LoadAnnotations { selected, now }
            }
            TAG_LOCK_GRANTED => WalEvent::LockGranted {
                precise: get_sig(&mut d)?,
                holder: JobId::new(d.u64()?),
                at: get_time(&mut d)?,
                expires_at: get_time(&mut d)?,
            },
            TAG_REGISTER => WalEvent::Register(Box::new(get_report_request(&mut d)?)),
            TAG_PURGE_SHARD => WalEvent::PurgeShard {
                index: d.u32()?,
                now: get_time(&mut d)?,
            },
            TAG_UNREGISTER => WalEvent::Unregister {
                precise: get_sigs(&mut d)?,
                now: get_time(&mut d)?,
            },
            t => {
                return Err(scope_common::codec::malformed(format!(
                    "unknown wal event tag {t}"
                )))
            }
        };
        d.finish()?;
        Ok(ev)
    }
}

/// Everything read back from disk at cold start, already decoded.
pub struct RecoveredState {
    /// Raw payload of the newest valid metadata snapshot, if any
    /// (decoded by the runtime builder, which owns the layout).
    pub snapshot: Option<Vec<u8>>,
    /// WAL events after the snapshot, in append order.
    pub events: Vec<WalEvent>,
    /// Workload-repository records in original append order.
    pub records: Vec<JobRecord>,
    /// Published view files that were live at shutdown.
    pub views: Vec<ViewFile>,
    /// Bytes of torn WAL tail dropped during recovery (0 on clean
    /// shutdown; nonzero means the crash tore the final record and
    /// recovery truncated to the last clean boundary).
    pub dropped_bytes: u64,
}

/// Handle to the on-disk state; shared by the metadata service (event
/// appends), the storage manager (view mirror), the workload repository
/// (record mirror), and the runtime (snapshots).
pub struct DurableStore {
    root: PathBuf,
    meta_log: Mutex<LogDir>,
    repo_kv: Mutex<SegmentStore>,
    views_kv: Mutex<SegmentStore>,
    /// Guards against concurrent snapshot attempts (the loser skips).
    snapshotting: AtomicBool,
    snapshot_threshold: u64,
}

fn sig_key(sig: Sig128) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&sig.hi.to_be_bytes());
    k[8..].copy_from_slice(&sig.lo.to_be_bytes());
    k
}

fn corrupt(what: &str, e: CodecError) -> StoreError {
    StoreError::Corrupt(format!("{what}: {}", e.0))
}

impl DurableStore {
    /// Opens (or creates) the store under `root` and recovers whatever
    /// state is on disk. `snapshot_threshold` is the WAL byte size past
    /// which [`DurableStore::maybe_snapshot`] compacts.
    pub fn open(
        root: &Path,
        snapshot_threshold: u64,
    ) -> Result<(Arc<DurableStore>, RecoveredState)> {
        let (meta_log, recovered) = LogDir::open(&root.join("meta"))?;
        let mut events = Vec::with_capacity(recovered.records.len());
        for payload in &recovered.records {
            // Checksummed records that fail to decode mean a format
            // mismatch (or bug), not a torn write — surface loudly.
            events.push(WalEvent::decode(payload).map_err(|e| corrupt("wal event", e))?);
        }

        let repo_kv = SegmentStore::open(&root.join("repo"), KV_FLUSH_THRESHOLD)?;
        let mut records = Vec::new();
        // Keys are big-endian sequence numbers, so the sorted scan is
        // append order.
        for (_, val) in repo_kv.scan() {
            let mut d = Dec::new(&val);
            let rec = get_job_record(&mut d).map_err(|e| corrupt("job record", e))?;
            records.push(rec);
        }

        let views_kv = SegmentStore::open(&root.join("views"), KV_FLUSH_THRESHOLD)?;
        let mut views = Vec::new();
        for (_, val) in views_kv.scan() {
            let mut d = Dec::new(&val);
            let vf = get_view_file(&mut d).map_err(|e| corrupt("view file", e))?;
            views.push(vf);
        }

        let store = Arc::new(DurableStore {
            root: root.to_path_buf(),
            meta_log: Mutex::new(meta_log),
            repo_kv: Mutex::new(repo_kv),
            views_kv: Mutex::new(views_kv),
            snapshotting: AtomicBool::new(false),
            snapshot_threshold,
        });
        let state = RecoveredState {
            snapshot: recovered.snapshot,
            events,
            records,
            views,
            dropped_bytes: recovered.dropped_bytes,
        };
        Ok((store, state))
    }

    /// True when `root` already holds durable metadata state.
    pub fn has_state(root: &Path) -> bool {
        scope_store::log::has_state(&root.join("meta"))
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Appends one metadata event to the WAL, before the corresponding
    /// in-memory mutation is acknowledged.
    ///
    /// Panics on IO error: the hook sites (inside the metadata service's
    /// mutation paths) are infallible by signature, and acking a mutation
    /// that was not logged would silently break the recovery contract.
    pub fn append_event(&self, ev: &WalEvent) {
        self.meta_log
            .lock()
            .append(&ev.encode())
            .expect("scope-store: WAL append failed; cannot ack unlogged mutation");
    }

    /// Mirrors one workload-repository append (`seq` is the record's
    /// index in append order). Same panic contract as [`Self::append_event`].
    pub fn record_job(&self, seq: u64, record: &JobRecord) {
        let mut e = Enc::new();
        put_job_record(&mut e, record);
        self.repo_kv
            .lock()
            .put(&seq.to_be_bytes(), &e.buf)
            .expect("scope-store: repo put failed; cannot ack unlogged record");
    }

    /// Current metadata WAL tail size (bytes since the last snapshot).
    pub fn tail_bytes(&self) -> u64 {
        self.meta_log.lock().tail_bytes()
    }

    /// Takes a snapshot if the WAL tail has outgrown the threshold.
    /// `export` must serialize the *current* service state; it runs with
    /// no store lock held (it takes service locks itself). Returns `true`
    /// when a snapshot was written.
    pub fn maybe_snapshot(&self, export: impl FnOnce() -> Vec<u8>) -> Result<bool> {
        if self.meta_log.lock().tail_bytes() < self.snapshot_threshold {
            return Ok(false);
        }
        self.snapshot_now(export)
    }

    /// Unconditionally snapshots (compacting the WAL), unless another
    /// snapshot is already in flight (then returns `Ok(false)`).
    ///
    /// Protocol: rotate the WAL (log lock) → export state (no log lock;
    /// events landing now go to the fresh tail, and may *also* appear in
    /// the snapshot — benign, replay is idempotent) → seal (log lock;
    /// prunes the old generations).
    pub fn snapshot_now(&self, export: impl FnOnce() -> Vec<u8>) -> Result<bool> {
        if self
            .snapshotting
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Ok(false);
        }
        let result = (|| {
            let sealed_gen = self.meta_log.lock().rotate()?;
            let payload = export();
            self.meta_log.lock().seal_snapshot(sealed_gen, &payload)?;
            // Push bulk stores to segments too, so restart replays less
            // of their WALs.
            self.repo_kv.lock().flush()?;
            self.views_kv.lock().flush()?;
            Ok(true)
        })();
        self.snapshotting.store(false, Ordering::Release);
        result
    }

    /// Forces all buffered bytes to the OS (crash-of-process safe without
    /// this; this is for tests that want a clean boundary).
    pub fn sync(&self) -> Result<()> {
        self.meta_log.lock().sync()
    }
}

impl StorageEventSink for DurableStore {
    fn view_published(&self, view: &ViewFile) {
        let mut e = Enc::new();
        put_view_file(&mut e, view);
        self.views_kv
            .lock()
            .put(&sig_key(view.meta.precise), &e.buf)
            .expect("scope-store: view put failed; cannot ack unlogged publish");
    }

    fn view_deleted(&self, precise: Sig128) {
        self.views_kv
            .lock()
            .delete(&sig_key(precise))
            .expect("scope-store: view tombstone failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_engine::optimizer::AvailableView;

    fn sig(n: u64) -> Sig128 {
        Sig128 {
            lo: n,
            hi: n ^ 0xabcd,
        }
    }

    fn sample_events() -> Vec<WalEvent> {
        vec![
            WalEvent::LockGranted {
                precise: sig(7),
                holder: JobId::new(42),
                at: SimTime(1_000),
                expires_at: SimTime(61_000),
            },
            WalEvent::Register(Box::new(ReportRequest::new(
                AvailableView {
                    precise: sig(7),
                    rows: 10,
                    bytes: 1024,
                    props: Default::default(),
                },
                sig(9),
                JobId::new(42),
                SimTime(61_000),
                SimTime(1_000_000),
            ))),
            WalEvent::PurgeShard {
                index: 5,
                now: SimTime(70_000),
            },
            WalEvent::Unregister {
                precise: vec![sig(7), sig(8)],
                now: SimTime(80_000),
            },
        ]
    }

    #[test]
    fn wal_events_round_trip() {
        for ev in sample_events() {
            let bytes = ev.encode();
            let back = WalEvent::decode(&bytes).expect("decode");
            // Byte stability doubles as the equality check: re-encoding
            // the decoded event must reproduce the input exactly.
            assert_eq!(bytes, back.encode());
        }
    }

    #[test]
    fn open_recovers_events_and_records() {
        let dir = std::env::temp_dir().join(format!("cv-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let events = sample_events();
        {
            let (store, rec) = DurableStore::open(&dir, 1 << 20).expect("open");
            assert!(rec.events.is_empty());
            assert!(rec.records.is_empty());
            for ev in &events {
                store.append_event(ev);
            }
        }
        let (_, rec) = DurableStore::open(&dir, 1 << 20).expect("reopen");
        let got: Vec<Vec<u8>> = rec.events.iter().map(WalEvent::encode).collect();
        let want: Vec<Vec<u8>> = events.iter().map(WalEvent::encode).collect();
        assert_eq!(got, want);
        assert_eq!(rec.dropped_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_tag_is_malformed() {
        assert!(WalEvent::decode(&[99]).is_err());
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let mut bytes = WalEvent::PurgeShard {
            index: 1,
            now: SimTime(5),
        }
        .encode();
        bytes.push(0);
        assert!(WalEvent::decode(&bytes).is_err());
    }
}
