//! Admin operations and debuggability (paper Sections 4, 5.4, 5.5, 8).
//!
//! Production requirements the runtime alone does not cover:
//!
//! * **Storage reclamation** (§5.4) — "cluster admins could also reclaim a
//!   given storage space by running the same view selection routines ...
//!   replacing the max objective function with a min"; both paths "require
//!   cleaning the views from the metadata service first before deleting any
//!   of the physical files". [`reclaim_storage`] implements exactly that
//!   order.
//! * **Debuggability** (§4 requirement 6) — operators must be able to see
//!   which views a job created or used, trace the producing job of any
//!   view, and "drill down into why a view was selected for materialization
//!   or reuse in the first place". [`explain_selection`] re-derives the
//!   selection verdict of any mined computation against the configured
//!   constraints; [`trace_view`] follows a stored view back to its producer.

use scope_common::hash::Sig128;
use scope_common::ids::JobId;
use scope_common::time::SimDuration;
use scope_common::Result;

use crate::analyzer::{selection::SelectionConstraints, AnalyzerConfig, OverlapGroup};
use crate::runtime::CloudViews;

/// Outcome of a storage-reclamation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReclaimReport {
    /// Views removed (metadata first, then files).
    pub views_removed: usize,
    /// Bytes reclaimed from the view store.
    pub bytes_reclaimed: u64,
    /// View-store bytes remaining.
    pub bytes_remaining: u64,
}

/// Frees at least `bytes_needed` from the view store by evicting the
/// *least useful* stored views (the §5.4 min-objective selection), cleaning
/// the metadata service before deleting any physical file so that no job
/// can be handed a view whose file is about to disappear.
pub fn reclaim_storage(service: &CloudViews, bytes_needed: u64) -> Result<ReclaimReport> {
    // Rank stored views by the utility of their mined overlap groups; views
    // with no surviving group stats rank lowest (nothing is known to want
    // them).
    let records = service.repo.records();
    let refs: Vec<_> = records.iter().collect();
    let groups = crate::analyzer::mine_overlaps(&refs);
    let utility_of = |normalized: Sig128| -> SimDuration {
        groups
            .iter()
            .find(|g| g.normalized == normalized)
            .map(|g| g.utility())
            .unwrap_or(SimDuration::ZERO)
    };

    let mut stored = service.storage.view_metas();
    stored.sort_by_key(|m| utility_of(m.normalized));

    let mut to_remove: Vec<Sig128> = Vec::new();
    let mut reclaiming = 0u64;
    for meta in &stored {
        if reclaiming >= bytes_needed {
            break;
        }
        reclaiming += meta.bytes;
        to_remove.push(meta.precise);
    }

    // Metadata first, files second — the paper's required order.
    service.metadata.unregister_views(&to_remove);
    let mut bytes_reclaimed = 0;
    for sig in &to_remove {
        bytes_reclaimed += service.storage.delete_view(*sig).unwrap_or(0);
    }
    Ok(ReclaimReport {
        views_removed: to_remove.len(),
        bytes_reclaimed,
        bytes_remaining: service.storage.total_view_bytes(),
    })
}

/// One step of the selection verdict for a computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictStep {
    /// Constraint name.
    pub check: &'static str,
    /// Human-readable observed-vs-required line.
    pub detail: String,
    /// Whether the computation passed this check.
    pub passed: bool,
}

/// The full "why was / wasn't this view selected" drill-down.
#[derive(Debug, Clone)]
pub struct SelectionExplanation {
    /// The computation's normalized signature.
    pub normalized: Sig128,
    /// Constraint-by-constraint verdict.
    pub steps: Vec<VerdictStep>,
    /// Whether every constraint passed (policy ranking then decides).
    pub admitted: bool,
    /// The computation's utility, for ranking context.
    pub utility: SimDuration,
}

impl SelectionExplanation {
    /// Renders as an indented report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "computation {} — utility {} — {}\n",
            self.normalized.short(),
            self.utility,
            if self.admitted {
                "ADMITTED (ranked by policy)"
            } else {
                "REJECTED"
            }
        );
        for s in &self.steps {
            out.push_str(&format!(
                "  [{}] {:<16} {}\n",
                if s.passed { "ok" } else { "FAIL" },
                s.check,
                s.detail
            ));
        }
        out
    }
}

/// Explains how `group` fares against `constraints` — the paper's "drill
/// down into why a view was selected ... in the first place".
pub fn explain_selection(
    group: &OverlapGroup,
    constraints: &SelectionConstraints,
) -> SelectionExplanation {
    let mut steps = Vec::new();
    let freq = group.per_instance_frequency();
    steps.push(VerdictStep {
        check: "min_frequency",
        detail: format!("observed {freq}, required >= {}", constraints.min_frequency),
        passed: freq >= constraints.min_frequency,
    });
    steps.push(VerdictStep {
        check: "min_cost_ratio",
        detail: format!(
            "observed {:.3}, required >= {:.3}",
            group.cost_ratio(),
            constraints.min_cost_ratio
        ),
        passed: group.cost_ratio() >= constraints.min_cost_ratio,
    });
    steps.push(VerdictStep {
        check: "min_cpu",
        detail: format!(
            "observed {}, required >= {}",
            group.avg_cumulative_cpu, constraints.min_cpu
        ),
        passed: group.avg_cumulative_cpu >= constraints.min_cpu,
    });
    steps.push(VerdictStep {
        check: "max_bytes",
        detail: format!(
            "observed {} B, allowed <= {} B",
            group.avg_out_bytes, constraints.max_bytes
        ),
        passed: group.avg_out_bytes <= constraints.max_bytes,
    });
    steps.push(VerdictStep {
        check: "min_nodes",
        detail: format!(
            "subgraph has {} nodes, required >= {}",
            group.num_nodes, constraints.min_nodes
        ),
        passed: group.num_nodes >= constraints.min_nodes,
    });
    let output_ok = !(constraints.exclude_outputs
        && matches!(
            group.root_kind,
            scope_plan::OpKind::Output | scope_plan::OpKind::Write
        ));
    steps.push(VerdictStep {
        check: "exclude_outputs",
        detail: format!("root operator is {}", group.root_kind),
        passed: output_ok,
    });
    let admitted = steps.iter().all(|s| s.passed);
    SelectionExplanation {
        normalized: group.normalized,
        steps,
        admitted,
        utility: group.utility(),
    }
}

/// Everything known about one stored view (requirement 6's trace).
#[derive(Debug, Clone)]
pub struct ViewTrace {
    /// Precise signature (the storage key and file-path component).
    pub precise: Sig128,
    /// Simulated physical path of the file.
    pub physical_path: String,
    /// Job that produced it.
    pub producer: JobId,
    /// Jobs that contained the computation in the analyzed history.
    pub historical_jobs: Vec<JobId>,
    /// Stored rows/bytes.
    pub rows: u64,
    /// Stored bytes.
    pub bytes: u64,
}

/// Traces a stored view back to its producer and historical consumers.
pub fn trace_view(service: &CloudViews, precise: Sig128) -> Option<ViewTrace> {
    let now = service.clock.now();
    let file = service.storage.view(precise, now)?;
    let records = service.repo.records();
    let refs: Vec<_> = records.iter().collect();
    let groups = crate::analyzer::mine_overlaps(&refs);
    let historical_jobs = groups
        .iter()
        .find(|g| g.normalized == file.meta.normalized)
        .map(|g| g.jobs.clone())
        .unwrap_or_default();
    Some(ViewTrace {
        precise,
        physical_path: file.physical_path(),
        producer: file.meta.producer,
        historical_jobs,
        rows: file.meta.rows,
        bytes: file.meta.bytes,
    })
}

/// Convenience: the full admin report — analysis summary plus the top-N
/// selection explanations (the §5.5 dashboard in text form).
pub fn admin_report(service: &CloudViews, config: &AnalyzerConfig, top: usize) -> Result<String> {
    let analysis = service.analyze(config)?;
    let mut out = format!(
        "jobs analyzed: {}\noverlapping computations: {}\nviews selected: {} ({:?})\n\n",
        analysis.jobs_analyzed,
        analysis.groups.len(),
        analysis.selected.len(),
        config.policy,
    );
    out.push_str(&crate::reporting::top_overlaps(&analysis.groups, top));
    out.push('\n');
    for group in analysis.groups.iter().take(top) {
        out.push_str(&explain_selection(group, &config.constraints).render());
    }
    Ok(out)
}

/// The operator-facing fault-tolerance dashboard: metadata-service failure
/// and recovery counters, live build-lock pressure, injected-fault totals
/// (when a fault plan is installed), and the per-job degradation drill-down
/// from [`crate::reporting::fault_report`].
pub fn fault_dashboard(service: &CloudViews, reports: &[crate::runtime::JobRunReport]) -> String {
    let stats = service.metadata.stats();
    let now = service.clock.now();
    let mut out = format!(
        "metadata: shards={} lookups={} failed_lookups={} failed_proposals={} \
         failed_reports={} purged_annotations={}\nlocks: granted={} conflicts={} \
         expired_takeovers={} active_now={}\n",
        service.metadata.num_shards(),
        stats.lookups,
        stats.failed_lookups,
        stats.failed_proposals,
        stats.failed_reports,
        stats.purged_annotations,
        stats.locks_granted,
        stats.lock_conflicts,
        stats.expired_takeovers,
        service.metadata.num_active_locks(now),
    );
    if let Some(injector) = &service.faults {
        let injected = injector.injected();
        out.push_str(&format!(
            "injected: total={} lookup={} propose={} report={} crash={} \
             loss={} corrupt={} delayed={}\n",
            injected.total(),
            injected.lookup_failures,
            injected.propose_failures,
            injected.report_failures,
            injected.builder_crashes,
            injected.views_lost,
            injected.views_corrupted,
            injected.delayed_publications,
        ));
    }
    out.push('\n');
    out.push_str(&crate::reporting::fault_report(reports));
    out
}

/// The operator-facing observability dashboard: a one-screen summary of the
/// job-outcome, metadata, and storage series from the service's telemetry
/// sink, followed by the full Prometheus exposition (scrape-ready).
///
/// Complements [`fault_dashboard`]: that one joins per-job degradation
/// reports; this one is the service-wide counter/histogram view.
pub fn telemetry_dashboard(service: &CloudViews) -> String {
    let t = &service.telemetry;
    let snap = t.metrics.snapshot();
    let mut out = format!(
        "jobs: total={} reuse_hit={} build={} baseline_fallback={} failed={} restarts={}\n",
        snap.counter("cv_jobs_total"),
        snap.counter("cv_jobs_reuse_hit_total"),
        snap.counter("cv_jobs_build_total"),
        snap.counter("cv_jobs_baseline_fallback_total"),
        snap.counter("cv_jobs_failed_total"),
        snap.counter("cv_jobs_restarts_total"),
    );
    let lookup_ms = snap
        .histogram("cv_metadata_lookup_sim_micros")
        .map(|h| h.mean() / 1e3)
        .unwrap_or(0.0);
    out.push_str(&format!(
        "metadata: shards={} lookups={} misses={} mean_lookup={:.1}ms \
         locks_granted={} conflicts={} active_locks={} purged_annotations={}\n",
        service.metadata.num_shards(),
        snap.counter("cv_metadata_lookups_total"),
        snap.counter("cv_metadata_lookup_misses_total"),
        lookup_ms,
        snap.counter("cv_metadata_locks_granted_total"),
        snap.counter("cv_metadata_lock_conflicts_total"),
        snap.gauge("cv_metadata_build_locks"),
        snap.counter("cv_metadata_purged_annotations_total"),
    ));
    let tier_ms = |name: &str| snap.histogram(name).map(|h| h.mean() / 1e3).unwrap_or(0.0);
    out.push_str(&format!(
        "cascade: tier2_hits={} tier2_rejects={} mean_tier1={:.1}ms mean_tier2={:.1}ms\n",
        snap.counter("cv_metadata_tier2_hits_total"),
        snap.counter("cv_metadata_tier2_rejects_total"),
        tier_ms("cv_metadata_lookup_tier1_sim_micros"),
        tier_ms("cv_metadata_lookup_tier2_sim_micros"),
    ));
    out.push_str(&format!(
        "storage: published={} written={}B read={}B checksum_failures={} \
         purged={}B live={}B\n",
        snap.counter("cv_storage_views_published_total"),
        snap.counter("cv_storage_bytes_written_total"),
        snap.counter("cv_storage_bytes_read_total"),
        snap.counter("cv_storage_checksum_failures_total"),
        snap.counter("cv_storage_bytes_purged_total"),
        snap.gauge("cv_storage_view_bytes"),
    ));
    // The front-door series only exists when a network server is running
    // against this telemetry sink; skip the section for in-process-only
    // deployments rather than printing a row of zeros.
    if snap.counter("cv_net_connections_total") > 0 || snap.counter("cv_net_frames_total") > 0 {
        let wall_ms = |name: &str| snap.histogram(name).map(|h| h.mean() / 1e3).unwrap_or(0.0);
        out.push_str(&format!(
            "net: connections={} disconnects={} frames={} \
             (lookup={} propose={} report={} purge={} stats={})\n",
            snap.counter("cv_net_connections_total"),
            snap.counter("cv_net_disconnects_total"),
            snap.counter("cv_net_frames_total"),
            snap.counter("cv_net_frames_lookup_total"),
            snap.counter("cv_net_frames_propose_total"),
            snap.counter("cv_net_frames_report_total"),
            snap.counter("cv_net_frames_purge_total"),
            snap.counter("cv_net_frames_stats_total"),
        ));
        out.push_str(&format!(
            "net admission: shed={} over_quota={} malformed={} errors={} \
             queue_depth={}\n",
            snap.counter("cv_net_shed_total"),
            snap.counter("cv_net_quota_rejections_total"),
            snap.counter("cv_net_malformed_total"),
            snap.counter("cv_net_error_responses_total"),
            snap.gauge("cv_net_queue_depth"),
        ));
        out.push_str(&format!(
            "net io: read={}B written={}B mean_lookup={:.1}ms mean_propose={:.1}ms \
             mean_report={:.1}ms\n",
            snap.counter("cv_net_bytes_read_total"),
            snap.counter("cv_net_bytes_written_total"),
            wall_ms("cv_net_lookup_wall_micros"),
            wall_ms("cv_net_propose_wall_micros"),
            wall_ms("cv_net_report_wall_micros"),
        ));
    }
    // The sharing series only exists once run_windowed has coordinated at
    // least one window; in-process-only or uncoordinated deployments skip
    // the section rather than printing a row of zeros.
    if snap.counter("cv_sharing_windows_total") > 0 {
        out.push_str(&format!(
            "sharing: windows={} jobs={} shared_subgraphs={} published={} \
             aborted={}\n",
            snap.counter("cv_sharing_windows_total"),
            snap.counter("cv_sharing_window_jobs_total"),
            snap.counter("cv_sharing_shared_subgraphs_total"),
            snap.counter("cv_sharing_producer_publishes_total"),
            snap.counter("cv_sharing_producer_aborts_total"),
        ));
        let wait_ms = snap
            .histogram("cv_sharing_wait_sim_micros")
            .map(|h| h.mean() / 1e3)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "sharing followers: reuses={} fallbacks={} mean_wait={:.1}ms\n",
            snap.counter("cv_sharing_follower_reuses_total"),
            snap.counter("cv_sharing_follower_fallbacks_total"),
            wait_ms,
        ));
    }
    out.push_str(&format!(
        "spans: retained={} dropped={}\n",
        t.tracer.finished().len(),
        t.tracer.dropped(),
    ));
    out.push_str("\n# Prometheus exposition\n");
    out.push_str(&snap.prometheus_text());
    out
}

/// The operator-facing analyzer dashboard: the resident incremental
/// analyzer's accumulated state (jobs folded, distinct subgraphs, live
/// overlap groups) and the last round's delta — what churned in the
/// selected-view set and what the round cost, ingest vs. select.
///
/// Complements [`telemetry_dashboard`]: that one shows the service-wide
/// `cv_analyzer_*` series; this one drills into the analyzer state itself.
pub fn analyzer_dashboard(service: &CloudViews) -> String {
    let Some(analyzer) = &service.analyzer else {
        return "analyzer: none installed (CloudViewsBuilder::incremental_analyzer)\n".into();
    };
    let state = analyzer.state();
    let mut out = format!(
        "analyzer: rounds={} jobs_admitted={} jobs_skipped={} \
         distinct_subgraphs={} groups_tracked={}\n",
        analyzer.rounds(),
        state.jobs_admitted(),
        state.jobs_skipped(),
        state.distinct_subgraphs(),
        state.groups_tracked(),
    );
    match analyzer.last_delta() {
        None => out.push_str("last round: none yet\n"),
        Some(d) => {
            out.push_str(&format!(
                "last round #{}: ingested={} (total {}) groups={} selected={} \
                 ingest={}µs select={}µs\n",
                d.round,
                d.ingested_jobs,
                d.jobs_total,
                d.groups_total,
                d.selected_total,
                d.ingest_wall.as_micros(),
                d.select_wall.as_micros(),
            ));
            for sig in &d.newly_selected {
                out.push_str(&format!("  + {}\n", sig.short()));
            }
            for sig in &d.dropped {
                out.push_str(&format!("  - {}\n", sig.short()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{AnalyzerConfig, SelectionPolicy};
    use crate::runtime::RunMode;
    use scope_engine::storage::StorageManager;
    use scope_workload::dists::LogNormal;
    use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};
    use std::sync::Arc;

    fn running_service() -> (CloudViews, RecurringWorkload) {
        let w = RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![ClusterSpec::tiny("admin")],
            seed: 77,
            stream_rows: LogNormal::new(6.0, 0.5, 150.0, 1_500.0),
        })
        .unwrap();
        let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
        w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
            .unwrap();
        let analysis = cv
            .analyze(&AnalyzerConfig {
                policy: SelectionPolicy::TopKUtility { k: 6 },
                ..Default::default()
            })
            .unwrap();
        cv.install_analysis(&analysis);
        w.register_instance_data(0, 1, &cv.storage, 1.0).unwrap();
        cv.run_sequence(&w.jobs_for_instance(0, 1).unwrap(), RunMode::CloudViews)
            .unwrap();
        (cv, w)
    }

    #[test]
    fn reclaim_storage_frees_space_metadata_first() {
        let (cv, _) = running_service();
        let before_views = cv.storage.num_views();
        let before_bytes = cv.storage.total_view_bytes();
        assert!(before_views > 0);

        let report = reclaim_storage(&cv, before_bytes / 2).unwrap();
        assert!(report.views_removed > 0);
        assert!(report.bytes_reclaimed >= before_bytes / 2 || report.views_removed == before_views);
        assert_eq!(report.bytes_remaining, cv.storage.total_view_bytes());
        // Metadata has no dangling entries for removed views.
        assert_eq!(cv.metadata.num_views(), cv.storage.num_views());
    }

    #[test]
    fn reclaim_evicts_least_useful_first() {
        let (cv, _) = running_service();
        let records = cv.repo.records();
        let refs: Vec<_> = records.iter().collect();
        let groups = crate::analyzer::mine_overlaps(&refs);
        // Reclaim a single byte: exactly one (least useful) view goes.
        let report = reclaim_storage(&cv, 1).unwrap();
        assert_eq!(report.views_removed, 1);
        // The most useful stored view must survive.
        let best = groups
            .iter()
            .filter(|g| {
                cv.storage
                    .view_metas()
                    .iter()
                    .any(|m| m.normalized == g.normalized)
            })
            .max_by_key(|g| g.utility());
        if let Some(best) = best {
            assert!(
                cv.storage
                    .view_metas()
                    .iter()
                    .any(|m| m.normalized == best.normalized),
                "evicted the most useful view"
            );
        }
    }

    #[test]
    fn explain_selection_reports_each_constraint() {
        let (cv, _) = running_service();
        let records = cv.repo.records();
        let refs: Vec<_> = records.iter().collect();
        let groups = crate::analyzer::mine_overlaps(&refs);
        let strict = SelectionConstraints {
            min_frequency: 1_000_000, // nothing passes
            ..Default::default()
        };
        let explanation = explain_selection(&groups[0], &strict);
        assert!(!explanation.admitted);
        let failed: Vec<_> = explanation.steps.iter().filter(|s| !s.passed).collect();
        assert!(failed.iter().any(|s| s.check == "min_frequency"));
        let text = explanation.render();
        assert!(text.contains("REJECTED"));
        assert!(text.contains("min_frequency"));

        let lax = SelectionConstraints {
            min_nodes: 0,
            ..Default::default()
        };
        let explanation = explain_selection(&groups[0], &lax);
        assert!(explanation.render().contains("ok"));
    }

    #[test]
    fn trace_view_finds_producer_and_history() {
        let (cv, _) = running_service();
        let meta = cv.storage.view_metas().pop().expect("a stored view");
        let trace = trace_view(&cv, meta.precise).expect("traceable");
        assert_eq!(trace.producer, meta.producer);
        assert!(trace.physical_path.contains(&meta.precise.to_string()));
        assert!(!trace.historical_jobs.is_empty());
        // Unknown signature: no trace.
        assert!(trace_view(&cv, Sig128::new(1, 1)).is_none());
    }

    #[test]
    fn fault_dashboard_renders_clean_and_faulty() {
        use crate::faults::{FaultPlan, FaultSite, ScriptedFault};

        let (cv, w) = running_service();
        // Clean service: counters render, no injected section, no drill-down.
        let text = fault_dashboard(&cv, &[]);
        assert!(text.contains("metadata: shards=16"));
        assert!(text.contains("purged_annotations="));
        assert!(text.contains("expired_takeovers="));
        assert!(!text.contains("injected:"));
        assert!(text.contains("no faults observed"));

        // Fail the first lookup of every job: the dashboard shows both the
        // injected totals and the per-job degradation rows.
        let mut cv = cv;
        cv.install_fault_plan(FaultPlan {
            scripted: vec![ScriptedFault {
                site: FaultSite::MetadataLookup,
                job: None,
                call_index: 0,
            }],
            ..Default::default()
        });
        w.register_instance_data(0, 2, &cv.storage, 1.0).unwrap();
        let reports = cv
            .run_sequence(&w.jobs_for_instance(0, 2).unwrap(), RunMode::CloudViews)
            .unwrap();
        let text = fault_dashboard(&cv, &reports);
        assert!(text.contains("injected: total="), "{text}");
        assert!(text.contains("failed_lookups="), "{text}");
        assert!(text.contains("TOTAL"), "{text}");
    }

    #[test]
    fn telemetry_dashboard_renders_live_series() {
        let (cv, _) = running_service();
        let text = telemetry_dashboard(&cv);
        assert!(text.contains("jobs: total="), "{text}");
        assert!(!text.contains("jobs: total=0"), "jobs ran: {text}");
        assert!(text.contains("mean_lookup="), "{text}");
        assert!(text.contains("metadata: shards=16"), "{text}");
        assert!(text.contains("purged_annotations="), "{text}");
        assert!(text.contains("cascade: tier2_hits="), "{text}");
        assert!(text.contains("mean_tier1="), "{text}");
        assert!(text.contains("storage: published="), "{text}");
        assert!(text.contains("# TYPE cv_jobs_total counter"), "{text}");
        assert!(text.contains("cv_job_latency_sim_micros_count"), "{text}");
    }

    #[test]
    fn analyzer_dashboard_shows_round_deltas() {
        use scope_engine::storage::StorageManager;

        // No analyzer installed: the dashboard says so instead of lying
        // with zeros.
        let bare = CloudViews::builder(Arc::new(StorageManager::new())).build();
        assert!(analyzer_dashboard(&bare).contains("none installed"));

        let w = RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![ClusterSpec::tiny("admin-inc")],
            seed: 77,
            stream_rows: LogNormal::new(6.0, 0.5, 150.0, 1_500.0),
        })
        .unwrap();
        let cv = CloudViews::builder(Arc::new(StorageManager::new()))
            .incremental_analyzer(AnalyzerConfig {
                policy: SelectionPolicy::TopKUtility { k: 6 },
                ..Default::default()
            })
            .build();
        w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
            .unwrap();
        let text = analyzer_dashboard(&cv);
        assert!(text.contains("rounds=0"), "{text}");
        assert!(text.contains("none yet"), "{text}");
        // Records were absorbed as the pipeline recorded them.
        assert!(!text.contains("jobs_admitted=0"), "{text}");

        let outcome = cv.analyze_round().unwrap();
        assert!(!outcome.selected.is_empty());
        let text = analyzer_dashboard(&cv);
        assert!(text.contains("rounds=1"), "{text}");
        assert!(text.contains("last round #1"), "{text}");
        // First round: every selected view is newly selected.
        assert_eq!(
            text.matches("  + ").count(),
            outcome.selected.len(),
            "{text}"
        );
        assert_eq!(text.matches("  - ").count(), 0, "{text}");
    }

    #[test]
    fn builder_defaults_are_stable() {
        let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
        assert_eq!(cv.max_materialize_per_job, 1);
        assert!(cv.early_materialization);
        assert!(cv.telemetry.is_enabled());
        assert_eq!(cv.templates.stats().entries, 0);
    }

    #[test]
    fn admin_report_renders() {
        let (cv, _) = running_service();
        let report = admin_report(
            &cv,
            &AnalyzerConfig {
                policy: SelectionPolicy::TopKUtility { k: 3 },
                ..Default::default()
            },
            5,
        )
        .unwrap();
        assert!(report.contains("jobs analyzed"));
        assert!(report.contains("rank"));
        assert!(report.contains("computation"));
    }
}
