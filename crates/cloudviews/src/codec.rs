//! Typed payload encodings for every CloudViews domain type that is
//! persisted by `scope-store` or shipped over the `scope-net` wire.
//!
//! The generic buffer layer ([`Enc`]/[`Dec`]) lives in
//! `scope_common::codec`; this module adds the domain encoders on top and
//! is re-exported by `scope-net` so the wire format and the on-disk format
//! are the *same bytes* — the loopback acceptance test compares in-process
//! and over-the-wire `LookupResponse`s by their encodings, and the durable
//! log replays `ReportRequest`s recorded verbatim.
//!
//! Conventions (shared with the wire frame layer):
//!
//! * all integers little-endian; `usize` travels as `u64`;
//! * `f64` as IEEE bits (`to_bits`/`from_bits`) — exact round-trip;
//! * strings as `u32` length + UTF-8 bytes, capped at [`MAX_STR`];
//! * sequences as `u32` count + elements, capped at [`MAX_SEQ`] (row
//!   payloads inside view files use an uncapped `u32` count instead —
//!   tables are bulk data, not protocol messages);
//! * options as a `0`/`1` byte + payload;
//! * enums as a `u8` tag + variant payload;
//! * [`Symbol`]s travel as their string and are re-interned on decode
//!   (interning tables are per-process, raw ids do not transfer);
//! * recursive [`Expr`] trees are depth-limited at [`MAX_EXPR_DEPTH`] on
//!   decode, so a hostile payload cannot overflow the stack.
//!
//! Every decode is bounds-checked and returns [`CodecError`] rather than
//! panicking: the decoder is the first line of defense against both
//! hostile network bytes and bit-rotted disk bytes.

use std::collections::BTreeMap;
use std::sync::Arc;

use scope_common::codec::malformed;
pub use scope_common::codec::{CodecError, Dec, Enc, MAX_EXPR_DEPTH, MAX_SEQ, MAX_STR};
use scope_common::hash::Sig128;
use scope_common::ids::{ClusterId, JobId, NodeId, TemplateId, UserId, VcId};
use scope_common::intern::Symbol;
use scope_common::time::{SimDuration, SimTime};
use scope_engine::data::{Row, Table};
use scope_engine::optimizer::{Annotation, AvailableView, SubsumedView};
use scope_engine::repo::{JobRecord, SubgraphRun};
use scope_engine::storage::{ViewFile, ViewMeta};
use scope_plan::expr::{AggExpr, AggFunc, BinOp, ScalarFunc, UnaryOp};
use scope_plan::interval::{ColumnIntervals, Interval};
use scope_plan::{
    Column, DataType, Expr, NamedExpr, OpKind, Partitioning, PhysicalProps, Schema, SortDir,
    SortKey, SortOrder, Value,
};
use scope_signature::{SubsumeDescriptor, SubsumeDetail, SubsumeKind};

use crate::analyzer::SelectedView;
use crate::api::{LookupRequest, ProposeRequest, ReportRequest};
use crate::metadata::{LockOutcome, LookupResponse, MetadataStats, PurgeSweep};

type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------------
// Scalars and ids

/// Encodes a [`Sig128`] as `hi`, `lo`.
pub fn put_sig(e: &mut Enc, s: Sig128) {
    e.put_u64(s.hi);
    e.put_u64(s.lo);
}

/// Decodes a [`Sig128`].
pub fn get_sig(d: &mut Dec) -> Result<Sig128> {
    Ok(Sig128::new(d.u64()?, d.u64()?))
}

/// Encodes a [`Symbol`] as its string (re-interned on decode).
pub fn put_symbol(e: &mut Enc, s: Symbol) {
    e.put_str(s.as_str());
}

/// Decodes a [`Symbol`].
pub fn get_symbol(d: &mut Dec) -> Result<Symbol> {
    Ok(Symbol::intern(&d.str()?))
}

/// Encodes a [`SimTime`] as its microsecond count.
pub fn put_time(e: &mut Enc, t: SimTime) {
    e.put_u64(t.micros());
}

/// Decodes a [`SimTime`].
pub fn get_time(d: &mut Dec) -> Result<SimTime> {
    Ok(SimTime(d.u64()?))
}

/// Encodes a [`SimDuration`] as its microsecond count.
pub fn put_dur(e: &mut Enc, t: SimDuration) {
    e.put_u64(t.micros());
}

/// Decodes a [`SimDuration`].
pub fn get_dur(d: &mut Dec) -> Result<SimDuration> {
    Ok(SimDuration::from_micros(d.u64()?))
}

/// Encodes a sequence of interned symbols.
pub fn put_symbols(e: &mut Enc, syms: &[Symbol]) {
    e.put_seq(syms.len());
    for s in syms {
        put_symbol(e, *s);
    }
}

/// Decodes a sequence of interned symbols.
pub fn get_symbols(d: &mut Dec) -> Result<Vec<Symbol>> {
    let n = d.seq()?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_symbol(d)?);
    }
    Ok(out)
}

/// Encodes a sequence of signatures.
pub fn put_sigs(e: &mut Enc, sigs: &[Sig128]) {
    e.put_seq(sigs.len());
    for s in sigs {
        put_sig(e, *s);
    }
}

/// Decodes a sequence of signatures.
pub fn get_sigs(d: &mut Dec) -> Result<Vec<Sig128>> {
    let n = d.seq()?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_sig(d)?);
    }
    Ok(out)
}

/// Encodes a [`Value`].
pub fn put_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.put_u8(0),
        Value::Bool(b) => {
            e.put_u8(1);
            e.put_bool(*b);
        }
        Value::Int(i) => {
            e.put_u8(2);
            e.put_i64(*i);
        }
        Value::Float(f) => {
            e.put_u8(3);
            e.put_f64(*f);
        }
        Value::Str(s) => {
            e.put_u8(4);
            e.put_str(s);
        }
        Value::Date(d) => {
            e.put_u8(5);
            e.put_i32(*d);
        }
    }
}

/// Decodes a [`Value`].
pub fn get_value(d: &mut Dec) -> Result<Value> {
    Ok(match d.u8()? {
        0 => Value::Null,
        1 => Value::Bool(d.bool()?),
        2 => Value::Int(d.i64()?),
        3 => Value::Float(d.f64()?),
        4 => Value::Str(d.str()?),
        5 => Value::Date(d.i32()?),
        t => return Err(malformed(format!("value tag {t}"))),
    })
}

/// Encodes a [`DataType`].
pub fn put_dtype(e: &mut Enc, t: DataType) {
    e.put_u8(match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
    });
}

/// Decodes a [`DataType`].
pub fn get_dtype(d: &mut Dec) -> Result<DataType> {
    Ok(match d.u8()? {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        4 => DataType::Date,
        t => return Err(malformed(format!("dtype tag {t}"))),
    })
}

/// Encodes a [`Schema`].
pub fn put_schema(e: &mut Enc, s: &Schema) {
    e.put_seq(s.len());
    for c in s.columns() {
        e.put_str(&c.name);
        put_dtype(e, c.dtype);
    }
}

/// Decodes a [`Schema`].
pub fn get_schema(d: &mut Dec) -> Result<Schema> {
    let n = d.seq()?;
    let mut cols = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.str()?;
        let dtype = get_dtype(d)?;
        cols.push(Column::new(name, dtype));
    }
    Schema::new(cols).map_err(|e| malformed(format!("schema: {e}")))
}

/// Encodes an [`OpKind`] (tag order = declaration order, append-only).
pub fn put_opkind(e: &mut Enc, k: OpKind) {
    e.put_u8(match k {
        OpKind::Sort => 0,
        OpKind::Exchange => 1,
        OpKind::Range => 2,
        OpKind::Scalar => 3,
        OpKind::RestrRemap => 4,
        OpKind::Filter => 5,
        OpKind::HashGbAgg => 6,
        OpKind::StreamGbAgg => 7,
        OpKind::Process => 8,
        OpKind::Spool => 9,
        OpKind::MergeJoin => 10,
        OpKind::Sequence => 11,
        OpKind::HashJoin => 12,
        OpKind::UnionAll => 13,
        OpKind::Combine => 14,
        OpKind::VirtualDataset => 15,
        OpKind::Reduce => 16,
        OpKind::Extract => 17,
        OpKind::GbApply => 18,
        OpKind::Top => 19,
        OpKind::LoopsJoin => 20,
        OpKind::Output => 21,
        OpKind::TableScan => 22,
        OpKind::Window => 23,
        OpKind::Nop => 24,
        OpKind::Write => 25,
    });
}

/// Decodes an [`OpKind`].
pub fn get_opkind(d: &mut Dec) -> Result<OpKind> {
    Ok(match d.u8()? {
        0 => OpKind::Sort,
        1 => OpKind::Exchange,
        2 => OpKind::Range,
        3 => OpKind::Scalar,
        4 => OpKind::RestrRemap,
        5 => OpKind::Filter,
        6 => OpKind::HashGbAgg,
        7 => OpKind::StreamGbAgg,
        8 => OpKind::Process,
        9 => OpKind::Spool,
        10 => OpKind::MergeJoin,
        11 => OpKind::Sequence,
        12 => OpKind::HashJoin,
        13 => OpKind::UnionAll,
        14 => OpKind::Combine,
        15 => OpKind::VirtualDataset,
        16 => OpKind::Reduce,
        17 => OpKind::Extract,
        18 => OpKind::GbApply,
        19 => OpKind::Top,
        20 => OpKind::LoopsJoin,
        21 => OpKind::Output,
        22 => OpKind::TableScan,
        23 => OpKind::Window,
        24 => OpKind::Nop,
        25 => OpKind::Write,
        t => return Err(malformed(format!("opkind tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Expressions

/// Encodes a [`UnaryOp`].
pub fn put_unary_op(e: &mut Enc, op: UnaryOp) {
    e.put_u8(match op {
        UnaryOp::Not => 0,
        UnaryOp::Neg => 1,
        UnaryOp::IsNull => 2,
    });
}

/// Decodes a [`UnaryOp`].
pub fn get_unary_op(d: &mut Dec) -> Result<UnaryOp> {
    Ok(match d.u8()? {
        0 => UnaryOp::Not,
        1 => UnaryOp::Neg,
        2 => UnaryOp::IsNull,
        t => return Err(malformed(format!("unary op tag {t}"))),
    })
}

/// Encodes a [`BinOp`].
pub fn put_bin_op(e: &mut Enc, op: BinOp) {
    e.put_u8(match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    });
}

/// Decodes a [`BinOp`].
pub fn get_bin_op(d: &mut Dec) -> Result<BinOp> {
    Ok(match d.u8()? {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        t => return Err(malformed(format!("binary op tag {t}"))),
    })
}

/// Encodes a [`ScalarFunc`].
pub fn put_scalar_func(e: &mut Enc, f: ScalarFunc) {
    e.put_u8(match f {
        ScalarFunc::Year => 0,
        ScalarFunc::Month => 1,
        ScalarFunc::Len => 2,
        ScalarFunc::Lower => 3,
        ScalarFunc::Upper => 4,
        ScalarFunc::Prefix => 5,
        ScalarFunc::Abs => 6,
        ScalarFunc::Hash64 => 7,
        ScalarFunc::Concat => 8,
        ScalarFunc::If => 9,
        ScalarFunc::Least => 10,
        ScalarFunc::Greatest => 11,
    });
}

/// Decodes a [`ScalarFunc`].
pub fn get_scalar_func(d: &mut Dec) -> Result<ScalarFunc> {
    Ok(match d.u8()? {
        0 => ScalarFunc::Year,
        1 => ScalarFunc::Month,
        2 => ScalarFunc::Len,
        3 => ScalarFunc::Lower,
        4 => ScalarFunc::Upper,
        5 => ScalarFunc::Prefix,
        6 => ScalarFunc::Abs,
        7 => ScalarFunc::Hash64,
        8 => ScalarFunc::Concat,
        9 => ScalarFunc::If,
        10 => ScalarFunc::Least,
        11 => ScalarFunc::Greatest,
        t => return Err(malformed(format!("scalar func tag {t}"))),
    })
}

/// Encodes an [`Expr`] tree.
pub fn put_expr(e: &mut Enc, x: &Expr) {
    match x {
        Expr::Col(i) => {
            e.put_u8(0);
            e.put_usize(*i);
        }
        Expr::Lit(v) => {
            e.put_u8(1);
            put_value(e, v);
        }
        Expr::RecurringParam { name, value } => {
            e.put_u8(2);
            e.put_str(name);
            put_value(e, value);
        }
        Expr::Unary { op, child } => {
            e.put_u8(3);
            put_unary_op(e, *op);
            put_expr(e, child);
        }
        Expr::Binary { op, left, right } => {
            e.put_u8(4);
            put_bin_op(e, *op);
            put_expr(e, left);
            put_expr(e, right);
        }
        Expr::Func { func, args } => {
            e.put_u8(5);
            put_scalar_func(e, *func);
            e.put_seq(args.len());
            for a in args {
                put_expr(e, a);
            }
        }
    }
}

/// Decodes an [`Expr`] tree, depth-limited at [`MAX_EXPR_DEPTH`].
pub fn get_expr(d: &mut Dec) -> Result<Expr> {
    d.descend()?;
    let x = match d.u8()? {
        0 => Expr::Col(d.usize_capped(u32::MAX as usize)?),
        1 => Expr::Lit(get_value(d)?),
        2 => Expr::RecurringParam {
            name: d.str()?,
            value: get_value(d)?,
        },
        3 => Expr::Unary {
            op: get_unary_op(d)?,
            child: Box::new(get_expr(d)?),
        },
        4 => Expr::Binary {
            op: get_bin_op(d)?,
            left: Box::new(get_expr(d)?),
            right: Box::new(get_expr(d)?),
        },
        5 => {
            let func = get_scalar_func(d)?;
            let n = d.seq()?;
            let mut args = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                args.push(get_expr(d)?);
            }
            Expr::Func { func, args }
        }
        t => return Err(malformed(format!("expr tag {t}"))),
    };
    d.ascend();
    Ok(x)
}

/// Encodes a [`NamedExpr`].
pub fn put_named_expr(e: &mut Enc, ne: &NamedExpr) {
    e.put_str(&ne.name);
    put_expr(e, &ne.expr);
}

/// Decodes a [`NamedExpr`].
pub fn get_named_expr(d: &mut Dec) -> Result<NamedExpr> {
    let name = d.str()?;
    let expr = get_expr(d)?;
    Ok(NamedExpr { name, expr })
}

/// Encodes an [`AggFunc`].
pub fn put_agg_func(e: &mut Enc, f: AggFunc) {
    e.put_u8(match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
        AggFunc::CountDistinct => 5,
    });
}

/// Decodes an [`AggFunc`].
pub fn get_agg_func(d: &mut Dec) -> Result<AggFunc> {
    Ok(match d.u8()? {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Avg,
        5 => AggFunc::CountDistinct,
        t => return Err(malformed(format!("agg func tag {t}"))),
    })
}

/// Encodes an [`AggExpr`].
pub fn put_agg_expr(e: &mut Enc, a: &AggExpr) {
    e.put_str(&a.name);
    put_agg_func(e, a.func);
    e.put_usize(a.input);
}

/// Decodes an [`AggExpr`].
pub fn get_agg_expr(d: &mut Dec) -> Result<AggExpr> {
    let name = d.str()?;
    let func = get_agg_func(d)?;
    let input = d.usize_capped(u32::MAX as usize)?;
    Ok(AggExpr { name, func, input })
}

// ---------------------------------------------------------------------------
// Physical properties

/// Encodes a [`SortOrder`].
pub fn put_sort_order(e: &mut Enc, s: &SortOrder) {
    e.put_seq(s.0.len());
    for k in &s.0 {
        e.put_usize(k.col);
        e.put_u8(matches!(k.dir, SortDir::Desc) as u8);
    }
}

/// Decodes a [`SortOrder`].
pub fn get_sort_order(d: &mut Dec) -> Result<SortOrder> {
    let n = d.seq()?;
    let mut keys = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let col = d.usize_capped(u32::MAX as usize)?;
        let dir = match d.u8()? {
            0 => SortDir::Asc,
            1 => SortDir::Desc,
            t => return Err(malformed(format!("sort dir tag {t}"))),
        };
        keys.push(SortKey { col, dir });
    }
    Ok(SortOrder(keys))
}

/// Encodes a [`Partitioning`].
pub fn put_partitioning(e: &mut Enc, p: &Partitioning) {
    match p {
        Partitioning::Single => e.put_u8(0),
        Partitioning::Hash { cols, parts } => {
            e.put_u8(1);
            e.put_seq(cols.len());
            for c in cols {
                e.put_usize(*c);
            }
            e.put_usize(*parts);
        }
        Partitioning::Range { col, parts } => {
            e.put_u8(2);
            e.put_usize(*col);
            e.put_usize(*parts);
        }
        Partitioning::RoundRobin { parts } => {
            e.put_u8(3);
            e.put_usize(*parts);
        }
        Partitioning::Any => e.put_u8(4),
    }
}

/// Decodes a [`Partitioning`].
pub fn get_partitioning(d: &mut Dec) -> Result<Partitioning> {
    Ok(match d.u8()? {
        0 => Partitioning::Single,
        1 => {
            let n = d.seq()?;
            let mut cols = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                cols.push(d.usize_capped(u32::MAX as usize)?);
            }
            Partitioning::Hash {
                cols,
                parts: d.usize_capped(u32::MAX as usize)?,
            }
        }
        2 => Partitioning::Range {
            col: d.usize_capped(u32::MAX as usize)?,
            parts: d.usize_capped(u32::MAX as usize)?,
        },
        3 => Partitioning::RoundRobin {
            parts: d.usize_capped(u32::MAX as usize)?,
        },
        4 => Partitioning::Any,
        t => return Err(malformed(format!("partitioning tag {t}"))),
    })
}

/// Encodes a [`PhysicalProps`].
pub fn put_props(e: &mut Enc, p: &PhysicalProps) {
    put_partitioning(e, &p.partitioning);
    put_sort_order(e, &p.sort);
}

/// Decodes a [`PhysicalProps`].
pub fn get_props(d: &mut Dec) -> Result<PhysicalProps> {
    Ok(PhysicalProps {
        partitioning: get_partitioning(d)?,
        sort: get_sort_order(d)?,
    })
}

// ---------------------------------------------------------------------------
// Subsumption descriptors

/// Encodes a [`ColumnIntervals`] map.
pub fn put_intervals(e: &mut Enc, ivs: &ColumnIntervals) {
    e.put_seq(ivs.len());
    for (col, iv) in ivs {
        e.put_usize(*col);
        for bound in [&iv.lo, &iv.hi] {
            match bound {
                None => e.put_u8(0),
                Some((v, incl)) => {
                    e.put_u8(1);
                    put_value(e, v);
                    e.put_bool(*incl);
                }
            }
        }
    }
}

/// Decodes a [`ColumnIntervals`] map.
pub fn get_intervals(d: &mut Dec) -> Result<ColumnIntervals> {
    let n = d.seq()?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let col = d.usize_capped(u32::MAX as usize)?;
        let mut bounds = [None, None];
        for b in &mut bounds {
            *b = match d.u8()? {
                0 => None,
                1 => {
                    let v = get_value(d)?;
                    let incl = d.bool()?;
                    Some((v, incl))
                }
                t => return Err(malformed(format!("interval bound tag {t}"))),
            };
        }
        let [lo, hi] = bounds;
        out.insert(col, Interval { lo, hi });
    }
    Ok(out)
}

/// Encodes a [`SubsumeDescriptor`].
pub fn put_descriptor(e: &mut Enc, desc: &SubsumeDescriptor) {
    e.put_u8(match desc.kind {
        SubsumeKind::Filter => 0,
        SubsumeKind::Project => 1,
        SubsumeKind::Rollup => 2,
    });
    put_sig(e, desc.child_precise);
    e.put_u64(desc.cols);
    e.put_u64(desc.keys);
    put_schema(e, &desc.schema);
    match &desc.detail {
        SubsumeDetail::Filter { intervals } => {
            e.put_u8(0);
            put_intervals(e, intervals);
        }
        SubsumeDetail::Project { exprs } => {
            e.put_u8(1);
            e.put_seq(exprs.len());
            for ne in exprs {
                put_named_expr(e, ne);
            }
        }
        SubsumeDetail::Rollup { keys, aggs } => {
            e.put_u8(2);
            e.put_seq(keys.len());
            for k in keys {
                e.put_usize(*k);
            }
            e.put_seq(aggs.len());
            for a in aggs {
                put_agg_expr(e, a);
            }
        }
    }
}

/// Decodes a [`SubsumeDescriptor`].
pub fn get_descriptor(d: &mut Dec) -> Result<SubsumeDescriptor> {
    let kind = match d.u8()? {
        0 => SubsumeKind::Filter,
        1 => SubsumeKind::Project,
        2 => SubsumeKind::Rollup,
        t => return Err(malformed(format!("subsume kind tag {t}"))),
    };
    let child_precise = get_sig(d)?;
    let cols = d.u64()?;
    let keys = d.u64()?;
    let schema = get_schema(d)?;
    let detail = match d.u8()? {
        0 => SubsumeDetail::Filter {
            intervals: get_intervals(d)?,
        },
        1 => {
            let n = d.seq()?;
            let mut exprs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                exprs.push(get_named_expr(d)?);
            }
            SubsumeDetail::Project { exprs }
        }
        2 => {
            let nk = d.seq()?;
            let mut rkeys = Vec::with_capacity(nk.min(1024));
            for _ in 0..nk {
                rkeys.push(d.usize_capped(u32::MAX as usize)?);
            }
            let na = d.seq()?;
            let mut aggs = Vec::with_capacity(na.min(1024));
            for _ in 0..na {
                aggs.push(get_agg_expr(d)?);
            }
            SubsumeDetail::Rollup { keys: rkeys, aggs }
        }
        t => return Err(malformed(format!("subsume detail tag {t}"))),
    };
    Ok(SubsumeDescriptor {
        kind,
        child_precise,
        cols,
        keys,
        schema,
        detail,
    })
}

// ---------------------------------------------------------------------------
// Metadata-service domain types

/// Encodes an [`AvailableView`].
pub fn put_available_view(e: &mut Enc, v: &AvailableView) {
    put_sig(e, v.precise);
    e.put_u64(v.rows);
    e.put_u64(v.bytes);
    put_props(e, &v.props);
}

/// Decodes an [`AvailableView`].
pub fn get_available_view(d: &mut Dec) -> Result<AvailableView> {
    Ok(AvailableView {
        precise: get_sig(d)?,
        rows: d.u64()?,
        bytes: d.u64()?,
        props: get_props(d)?,
    })
}

/// Encodes an [`Annotation`].
pub fn put_annotation(e: &mut Enc, a: &Annotation) {
    put_sig(e, a.normalized);
    put_props(e, &a.props);
    e.put_u64(a.ttl.micros());
    e.put_u64(a.avg_cpu.micros());
    e.put_u64(a.avg_rows);
    e.put_u64(a.avg_bytes);
}

/// Decodes an [`Annotation`].
pub fn get_annotation(d: &mut Dec) -> Result<Annotation> {
    Ok(Annotation {
        normalized: get_sig(d)?,
        props: get_props(d)?,
        ttl: SimDuration::from_micros(d.u64()?),
        avg_cpu: SimDuration::from_micros(d.u64()?),
        avg_rows: d.u64()?,
        avg_bytes: d.u64()?,
    })
}

/// Encodes a [`SubsumedView`].
pub fn put_subsumed_view(e: &mut Enc, v: &SubsumedView) {
    put_available_view(e, &v.view);
    put_sig(e, v.normalized);
    put_descriptor(e, &v.descriptor);
    e.put_u64(v.avg_cpu.micros());
}

/// Decodes a [`SubsumedView`].
pub fn get_subsumed_view(d: &mut Dec) -> Result<SubsumedView> {
    Ok(SubsumedView {
        view: get_available_view(d)?,
        normalized: get_sig(d)?,
        descriptor: get_descriptor(d)?,
        avg_cpu: SimDuration::from_micros(d.u64()?),
    })
}

// ---------------------------------------------------------------------------
// Requests

/// Encodes a [`LookupRequest`].
pub fn put_lookup_request(e: &mut Enc, r: &LookupRequest) {
    e.put_u64(r.job.raw());
    e.put_u64(r.vc.raw());
    put_symbols(e, &r.tags);
    e.put_seq(r.probes.len());
    for p in &r.probes {
        put_descriptor(e, p);
    }
    e.put_u64(r.at.micros());
}

/// Decodes a [`LookupRequest`].
pub fn get_lookup_request(d: &mut Dec) -> Result<LookupRequest> {
    let job = JobId::new(d.u64()?);
    let vc = VcId::new(d.u64()?);
    let tags = get_symbols(d)?;
    let np = d.seq()?;
    let mut probes = Vec::with_capacity(np.min(1024));
    for _ in 0..np {
        probes.push(get_descriptor(d)?);
    }
    let at = SimTime(d.u64()?);
    Ok(LookupRequest::new(job, &tags, at)
        .with_probes(probes)
        .for_vc(vc))
}

/// Encodes a [`ProposeRequest`].
pub fn put_propose_request(e: &mut Enc, r: &ProposeRequest) {
    put_sig(e, r.precise);
    e.put_u64(r.job.raw());
    e.put_u64(r.vc.raw());
    e.put_u64(r.lock_ttl.micros());
    e.put_u64(r.at.micros());
}

/// Decodes a [`ProposeRequest`].
pub fn get_propose_request(d: &mut Dec) -> Result<ProposeRequest> {
    let precise = get_sig(d)?;
    let job = JobId::new(d.u64()?);
    let vc = VcId::new(d.u64()?);
    let lock_ttl = SimDuration::from_micros(d.u64()?);
    let at = SimTime(d.u64()?);
    Ok(ProposeRequest::new(precise, job, lock_ttl, at).for_vc(vc))
}

/// Encodes a [`ReportRequest`].
pub fn put_report_request(e: &mut Enc, r: &ReportRequest) {
    put_available_view(e, &r.view);
    put_sig(e, r.normalized);
    e.put_u64(r.producer.raw());
    e.put_u64(r.vc.raw());
    e.put_u64(r.available_at.micros());
    e.put_u64(r.expires_at.micros());
    match &r.descriptor {
        None => e.put_u8(0),
        Some(desc) => {
            e.put_u8(1);
            put_descriptor(e, desc);
        }
    }
}

/// Decodes a [`ReportRequest`].
pub fn get_report_request(d: &mut Dec) -> Result<ReportRequest> {
    let view = get_available_view(d)?;
    let normalized = get_sig(d)?;
    let producer = JobId::new(d.u64()?);
    let vc = VcId::new(d.u64()?);
    let available_at = SimTime(d.u64()?);
    let expires_at = SimTime(d.u64()?);
    let descriptor = match d.u8()? {
        0 => None,
        1 => Some(get_descriptor(d)?),
        t => return Err(malformed(format!("descriptor option tag {t}"))),
    };
    Ok(
        ReportRequest::new(view, normalized, producer, available_at, expires_at)
            .with_descriptor(descriptor)
            .for_vc(vc),
    )
}

// ---------------------------------------------------------------------------
// Responses

/// Encodes a [`LookupResponse`].
pub fn put_lookup_response(e: &mut Enc, r: &LookupResponse) {
    e.put_seq(r.annotations.len());
    for a in &r.annotations {
        put_annotation(e, a);
    }
    e.put_seq(r.tier2.len());
    for v in &r.tier2 {
        put_subsumed_view(e, v);
    }
    e.put_u64(r.latency.micros());
    e.put_usize(r.hit_count);
}

/// Decodes a [`LookupResponse`].
pub fn get_lookup_response(d: &mut Dec) -> Result<LookupResponse> {
    let na = d.seq()?;
    let mut annotations = Vec::with_capacity(na.min(1024));
    for _ in 0..na {
        annotations.push(get_annotation(d)?);
    }
    let nv = d.seq()?;
    let mut tier2 = Vec::with_capacity(nv.min(1024));
    for _ in 0..nv {
        tier2.push(get_subsumed_view(d)?);
    }
    let latency = SimDuration::from_micros(d.u64()?);
    let hit_count = d.usize_capped(u32::MAX as usize)?;
    Ok(LookupResponse {
        annotations,
        tier2,
        latency,
        hit_count,
    })
}

/// Encodes a [`LockOutcome`].
pub fn put_lock_outcome(e: &mut Enc, o: LockOutcome) {
    e.put_u8(match o {
        LockOutcome::Acquired => 0,
        LockOutcome::AlreadyLocked => 1,
        LockOutcome::AlreadyMaterialized => 2,
    });
}

/// Decodes a [`LockOutcome`].
pub fn get_lock_outcome(d: &mut Dec) -> Result<LockOutcome> {
    Ok(match d.u8()? {
        0 => LockOutcome::Acquired,
        1 => LockOutcome::AlreadyLocked,
        2 => LockOutcome::AlreadyMaterialized,
        t => return Err(malformed(format!("lock outcome tag {t}"))),
    })
}

/// Encodes a [`PurgeSweep`].
pub fn put_purge_sweep(e: &mut Enc, p: &PurgeSweep) {
    e.put_usize(p.views_purged);
    e.put_usize(p.annotations_purged);
}

/// Decodes a [`PurgeSweep`].
pub fn get_purge_sweep(d: &mut Dec) -> Result<PurgeSweep> {
    Ok(PurgeSweep {
        views_purged: d.usize_capped(u32::MAX as usize)?,
        annotations_purged: d.usize_capped(u32::MAX as usize)?,
    })
}

/// Encodes a [`MetadataStats`].
pub fn put_stats(e: &mut Enc, s: &MetadataStats) {
    for v in [
        s.lookups,
        s.annotations_returned,
        s.locks_granted,
        s.lock_conflicts,
        s.already_materialized,
        s.views_registered,
        s.expired_takeovers,
        s.failed_lookups,
        s.failed_proposals,
        s.failed_reports,
        s.purged_annotations,
        s.tier2_hits,
        s.tier2_rejects,
    ] {
        e.put_u64(v);
    }
}

/// Decodes a [`MetadataStats`].
pub fn get_stats(d: &mut Dec) -> Result<MetadataStats> {
    Ok(MetadataStats {
        lookups: d.u64()?,
        annotations_returned: d.u64()?,
        locks_granted: d.u64()?,
        lock_conflicts: d.u64()?,
        already_materialized: d.u64()?,
        views_registered: d.u64()?,
        expired_takeovers: d.u64()?,
        failed_lookups: d.u64()?,
        failed_proposals: d.u64()?,
        failed_reports: d.u64()?,
        purged_annotations: d.u64()?,
        tier2_hits: d.u64()?,
        tier2_rejects: d.u64()?,
    })
}

// ---------------------------------------------------------------------------
// Durable-state types (scope-store payloads; never on the wire)

/// Encodes a [`SubgraphRun`].
pub fn put_subgraph_run(e: &mut Enc, s: &SubgraphRun) {
    e.put_u64(s.root.raw());
    put_sig(e, s.precise);
    put_sig(e, s.normalized);
    put_opkind(e, s.root_kind);
    e.put_usize(s.num_nodes);
    put_symbols(e, &s.input_tags);
    put_props(e, &s.props);
    e.put_bool(s.has_user_code);
    e.put_u64(s.out_rows);
    e.put_u64(s.out_bytes);
    put_dur(e, s.exclusive_cpu);
    put_dur(e, s.cumulative_cpu);
    put_dur(e, s.finish_offset);
}

/// Decodes a [`SubgraphRun`].
pub fn get_subgraph_run(d: &mut Dec) -> Result<SubgraphRun> {
    Ok(SubgraphRun {
        root: NodeId::new(d.u64()?),
        precise: get_sig(d)?,
        normalized: get_sig(d)?,
        root_kind: get_opkind(d)?,
        num_nodes: d.usize_capped(u32::MAX as usize)?,
        input_tags: get_symbols(d)?,
        props: Arc::new(get_props(d)?),
        has_user_code: d.bool()?,
        out_rows: d.u64()?,
        out_bytes: d.u64()?,
        exclusive_cpu: get_dur(d)?,
        cumulative_cpu: get_dur(d)?,
        finish_offset: get_dur(d)?,
    })
}

/// Encodes a [`JobRecord`].
pub fn put_job_record(e: &mut Enc, r: &JobRecord) {
    e.put_u64(r.job.raw());
    e.put_u64(r.cluster.raw());
    e.put_u64(r.vc.raw());
    e.put_u64(r.user.raw());
    e.put_u64(r.template.raw());
    e.put_u64(r.instance);
    put_time(e, r.submitted_at);
    put_dur(e, r.latency);
    put_dur(e, r.cpu_time);
    put_symbols(e, &r.tags);
    e.put_seq(r.subgraphs.len());
    for s in &r.subgraphs {
        put_subgraph_run(e, s);
    }
}

/// Decodes a [`JobRecord`].
pub fn get_job_record(d: &mut Dec) -> Result<JobRecord> {
    let job = JobId::new(d.u64()?);
    let cluster = ClusterId::new(d.u64()?);
    let vc = VcId::new(d.u64()?);
    let user = UserId::new(d.u64()?);
    let template = TemplateId::new(d.u64()?);
    let instance = d.u64()?;
    let submitted_at = get_time(d)?;
    let latency = get_dur(d)?;
    let cpu_time = get_dur(d)?;
    let tags = get_symbols(d)?;
    let n = d.seq()?;
    let mut subgraphs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        subgraphs.push(get_subgraph_run(d)?);
    }
    Ok(JobRecord {
        job,
        cluster,
        vc,
        user,
        template,
        instance,
        submitted_at,
        latency,
        cpu_time,
        tags,
        subgraphs,
    })
}

/// Encodes a [`SelectedView`] (the analyzer's output unit, pinned into the
/// durable log by `load_annotations` events).
pub fn put_selected_view(e: &mut Enc, v: &SelectedView) {
    put_annotation(e, &v.annotation);
    put_symbols(e, &v.input_tags);
    put_dur(e, v.utility);
    e.put_u64(v.frequency);
    put_sig(e, v.precise_last_seen);
}

/// Decodes a [`SelectedView`].
pub fn get_selected_view(d: &mut Dec) -> Result<SelectedView> {
    Ok(SelectedView {
        annotation: get_annotation(d)?,
        input_tags: get_symbols(d)?,
        utility: get_dur(d)?,
        frequency: d.u64()?,
        precise_last_seen: get_sig(d)?,
    })
}

/// Encodes a full materialized [`ViewFile`]: metadata, physical properties,
/// and the table payload itself (schema + per-partition rows). Row counts
/// use a raw `u32`, not the [`MAX_SEQ`]-capped sequence prefix: tables are
/// bulk data and legitimately exceed protocol-message sizes.
pub fn put_view_file(e: &mut Enc, v: &ViewFile) {
    put_sig(e, v.meta.precise);
    put_sig(e, v.meta.normalized);
    e.put_u64(v.meta.producer.raw());
    put_time(e, v.meta.created_at);
    put_time(e, v.meta.expires_at);
    e.put_u64(v.meta.rows);
    e.put_u64(v.meta.bytes);
    put_props(e, &v.props);
    put_schema(e, &v.table.schema);
    put_props(e, &v.table.props);
    e.put_u32(v.table.num_partitions() as u32);
    for p in 0..v.table.num_partitions() {
        let rows = v.table.partition_rows(p);
        e.put_u32(rows.len() as u32);
        for row in &rows {
            for val in row {
                put_value(e, val);
            }
        }
    }
}

/// Decodes a [`ViewFile`] re-assembled through [`Table::from_rows`].
pub fn get_view_file(d: &mut Dec) -> Result<ViewFile> {
    let meta = ViewMeta {
        precise: get_sig(d)?,
        normalized: get_sig(d)?,
        producer: JobId::new(d.u64()?),
        created_at: get_time(d)?,
        expires_at: get_time(d)?,
        rows: d.u64()?,
        bytes: d.u64()?,
    };
    let props = get_props(d)?;
    let schema = get_schema(d)?;
    let table_props = get_props(d)?;
    let nparts = d.u32()? as usize;
    if nparts > 1 << 16 {
        return Err(malformed(format!("{nparts} partitions")));
    }
    let ncols = schema.len();
    let mut partitions = Vec::with_capacity(nparts);
    for _ in 0..nparts {
        let nrows = d.u32()? as usize;
        let mut rows: Vec<Row> = Vec::with_capacity(nrows.min(1 << 20));
        for _ in 0..nrows {
            let mut row = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                row.push(get_value(d)?);
            }
            rows.push(row);
        }
        partitions.push(rows);
    }
    let table = Table::from_rows(schema, partitions, table_props);
    Ok(ViewFile {
        table: Arc::new(table),
        props,
        meta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_plan::DataType;

    #[test]
    fn job_record_round_trips() {
        let rec = JobRecord {
            job: JobId::new(7),
            cluster: ClusterId::new(1),
            vc: VcId::new(2),
            user: UserId::new(3),
            template: TemplateId::new(4),
            instance: 5,
            submitted_at: SimTime(1000),
            latency: SimDuration::from_micros(2000),
            cpu_time: SimDuration::from_micros(3000),
            tags: vec![Symbol::intern("in1"), Symbol::intern("in2")],
            subgraphs: vec![SubgraphRun {
                root: NodeId::new(9),
                precise: Sig128::new(1, 2),
                normalized: Sig128::new(3, 4),
                root_kind: OpKind::HashGbAgg,
                num_nodes: 11,
                input_tags: vec![Symbol::intern("in1")],
                props: Arc::new(PhysicalProps::single()),
                has_user_code: false,
                out_rows: 100,
                out_bytes: 4096,
                exclusive_cpu: SimDuration::from_micros(10),
                cumulative_cpu: SimDuration::from_micros(90),
                finish_offset: SimDuration::from_micros(70),
            }],
        };
        let mut e = Enc::new();
        put_job_record(&mut e, &rec);
        let mut d = Dec::new(&e.buf);
        let back = get_job_record(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.job, rec.job);
        assert_eq!(back.subgraphs.len(), 1);
        assert_eq!(back.subgraphs[0].root_kind, OpKind::HashGbAgg);
        assert_eq!(
            back.subgraphs[0].cumulative_cpu,
            rec.subgraphs[0].cumulative_cpu
        );
        assert_eq!(back.tags, rec.tags);
        // Byte-stability: encoding the decoded value reproduces the bytes.
        let mut e2 = Enc::new();
        put_job_record(&mut e2, &back);
        assert_eq!(e.buf, e2.buf);
    }

    #[test]
    fn view_file_round_trips_with_rows() {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Str),
        ])
        .unwrap();
        let partitions = vec![
            vec![
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Str("b".into())],
            ],
            vec![vec![Value::Int(3), Value::Null]],
        ];
        let table = Table::from_rows(schema, partitions, PhysicalProps::any());
        let vf = ViewFile {
            table: Arc::new(table),
            props: PhysicalProps::any(),
            meta: ViewMeta {
                precise: Sig128::new(10, 20),
                normalized: Sig128::new(30, 40),
                producer: JobId::new(1),
                created_at: SimTime(5),
                expires_at: SimTime(500),
                rows: 3,
                bytes: 64,
            },
        };
        let mut e = Enc::new();
        put_view_file(&mut e, &vf);
        let mut d = Dec::new(&e.buf);
        let back = get_view_file(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.meta, vf.meta);
        assert_eq!(back.table.num_partitions(), 2);
        assert_eq!(back.table.num_rows(), 3);
        assert_eq!(back.table.partition_rows(0), vf.table.partition_rows(0));
        assert_eq!(back.table.partition_rows(1), vf.table.partition_rows(1));
    }

    #[test]
    fn expr_depth_guard_still_trips() {
        // A deeply nested unary chain must be rejected, not overflow.
        let mut x = Expr::Col(0);
        for _ in 0..200 {
            x = Expr::Unary {
                op: UnaryOp::Not,
                child: Box::new(x),
            };
        }
        let mut e = Enc::new();
        put_expr(&mut e, &x);
        let mut d = Dec::new(&e.buf);
        assert!(get_expr(&mut d).is_err());
    }

    #[test]
    fn selected_view_round_trips() {
        let v = SelectedView {
            annotation: Annotation {
                normalized: Sig128::new(5, 6),
                props: PhysicalProps::single(),
                ttl: SimDuration::from_micros(100),
                avg_cpu: SimDuration::from_micros(200),
                avg_rows: 10,
                avg_bytes: 1000,
            },
            input_tags: vec![Symbol::intern("t")],
            utility: SimDuration::from_micros(300),
            frequency: 4,
            precise_last_seen: Sig128::new(7, 8),
        };
        let mut e = Enc::new();
        put_selected_view(&mut e, &v);
        let mut d = Dec::new(&e.buf);
        let back = get_selected_view(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.annotation.normalized, v.annotation.normalized);
        assert_eq!(back.utility, v.utility);
        assert_eq!(back.frequency, v.frequency);
        assert_eq!(back.precise_last_seen, v.precise_last_seen);
    }
}
