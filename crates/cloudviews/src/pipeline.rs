//! The staged per-job pipeline and the multi-job driver.
//!
//! One job attempt is a fixed sequence of five [`Stage`]s — metadata lookup
//! → reuse rewrite (optimize) → execute → publish → record — mirroring the
//! paper's per-job path (Sections 6.1–6.4) and the span tree of DESIGN.md
//! §8: the stage driver opens one child span per stage at the attempt's
//! simulated cursor, runs the stage (which advances the cursor by whatever
//! simulated latency it charges), and closes the span at the new cursor
//! with the stage's outcome label. A stage that fails leaves its span
//! unfinished, exactly like the pre-staged driver's early returns.
//!
//! Many jobs run through [`CloudViews::run_many`]: a work-stealing worker
//! pool with bounded admission. Jobs are dealt round-robin onto per-worker
//! deques; an idle worker first drains its own deque from the front, then
//! steals from the back of a victim's. Admission is a counting semaphore
//! bounding jobs in flight (modeling the job service's admission control),
//! and each job runs under `catch_unwind` so one pathological job cannot
//! take down the driver or its siblings.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

use scope_common::hash::Sig128;
use scope_common::ids::{JobId, NodeId};
use scope_common::time::{SimDuration, SimTime};
use scope_common::{Result, ScopeError};
use scope_engine::data::multiset_checksum;
use scope_engine::exec::{execute_plan, ExecOutcome};
use scope_engine::job::{materialize_marked_views, JobSpec};
use scope_engine::optimizer::{
    optimize_with_cascade, optimize_with_infos, Annotation, OptimizedPlan, OptimizerConfig,
    SubsumedView,
};
use scope_engine::repo::JobIdentity;
use scope_engine::sim::{simulate, SimOutcome};
use scope_plan::QueryGraph;
use scope_signature::{CompiledJob, SubgraphInfo, SubsumeDescriptor};

use crate::api::{ProposeRequest, ReportRequest};
use crate::faults::FaultSite;
use crate::metadata::MetadataService;
use crate::runtime::{
    panic_message, AttemptFailure, CloudViews, JobFaultReport, JobRunReport, RunMode,
};
use crate::sharing::{SharedView, WindowContext};

/// A job-start-pinned view of the metadata service: view availability is
/// judged at the job's submission time, so a job overlapping with the
/// builder does not see a view that was published after this job started.
///
/// Materialization proposals go through the fault-aware
/// [`MetadataService::propose`]; an injected propose failure is counted
/// here and the optimizer simply skips that materialization.
struct PinnedServices<'a> {
    svc: &'a MetadataService,
    now: SimTime,
    propose_faults: std::cell::Cell<u64>,
    /// The sharing-window coordinator, when this job runs inside one
    /// ([`CloudViews::run_windowed`]); consulted before the pinned metadata
    /// service so a follower can see its producer's mid-window publication
    /// without the metadata service ever looking past `now`.
    window: Option<&'a WindowContext>,
    /// This job's submission-order index within its window.
    slot: usize,
}

impl scope_engine::optimizer::ViewServices for PinnedServices<'_> {
    fn view_available(&self, precise: Sig128) -> Option<scope_engine::optimizer::AvailableView> {
        if let Some(w) = self.window {
            match w.lookup_view(self.slot, precise) {
                // A follower reads the producer's publication straight from
                // the window channel: the view's `created_at` is *after*
                // this job's pinned `now`, which is exactly the visibility
                // the pinned metadata lookup below must keep refusing.
                SharedView::Ready { view, .. } => return Some(view),
                // Producer, aborted entry, or not shared: the ordinary
                // pinned path decides (a pre-existing view still matches).
                SharedView::ProducerSelf | SharedView::NotShared | SharedView::Fallback => {}
            }
        }
        self.svc.view_available_at(precise, self.now)
    }

    fn propose_materialize(
        &self,
        precise: Sig128,
        _normalized: Sig128,
        job: JobId,
        lock_ttl: SimDuration,
    ) -> bool {
        // A follower never competes for its producer's build lock — not
        // even after an abort (the subgraph can be built in a later window
        // instead). The producer itself falls through to the real propose,
        // keeping the ordinary lock lifecycle (takeover, mined expiry).
        if let Some(w) = self.window {
            if w.deny_propose(self.slot, precise) {
                return false;
            }
        }
        // Pinned like `view_available`: lock expiry is judged at this job's
        // submission time, not the live clock (which peers advance mid-wave).
        match self
            .svc
            .propose(&ProposeRequest::new(precise, job, lock_ttl, self.now))
        {
            Ok(outcome) => outcome == crate::metadata::LockOutcome::Acquired,
            Err(_) => {
                self.propose_faults.set(self.propose_faults.get() + 1);
                false
            }
        }
    }
}

/// Everything one attempt accumulates while flowing through the stages.
///
/// `cursor` is the attempt's simulated-time position: each stage's span
/// opens at the cursor it inherits and closes at the cursor it leaves
/// behind, so span shapes are defined by how stages advance it (the lookup
/// charges its modeled latency, optimize is zero-width, execute charges the
/// simulated runtime, publish charges view-write latency, record is
/// zero-width at job end).
pub(crate) struct AttemptCtx<'a> {
    spec: &'a JobSpec,
    mode: RunMode,
    start: SimTime,
    cursor: SimTime,
    compiled: &'a CompiledJob,
    faults: &'a mut JobFaultReport,
    /// Outcome label for the stage currently running (taken by the driver).
    outcome: Option<&'static str>,
    pinned: PinnedServices<'a>,
    opt_config: OptimizerConfig,
    annotations: Vec<Annotation>,
    tier2: Vec<SubsumedView>,
    lookup_latency: SimDuration,
    plan: Option<OptimizedPlan>,
    exec: Option<ExecOutcome>,
    sim: Option<SimOutcome>,
    views_built: Vec<Sig128>,
    extra_cpu: SimDuration,
    extra_latency: SimDuration,
}

impl AttemptCtx<'_> {
    fn into_report(self) -> JobRunReport {
        let plan = self.plan.expect("optimize stage ran");
        let exec = self.exec.expect("execute stage ran");
        let sim = self.sim.expect("execute stage ran");
        let latency = self.lookup_latency + sim.latency + self.extra_latency;
        JobRunReport {
            job: self.spec.id,
            started_at: self.start,
            latency,
            cpu_time: sim.cpu_time + self.extra_cpu,
            lookup_latency: self.lookup_latency,
            views_built: self.views_built,
            views_reused: plan.reused.iter().map(|r| r.precise).collect(),
            optimizer: plan.report.clone(),
            output_checksums: exec
                .outputs
                .iter()
                .map(|(name, t)| (name.clone(), multiset_checksum(t)))
                .collect(),
            output_rows: exec
                .outputs
                .iter()
                .map(|(name, t)| (name.clone(), t.num_rows()))
                .collect(),
            faults: JobFaultReport::default(),
        }
    }
}

/// One unit of the per-job pipeline. Stages are stateless; everything an
/// attempt owns lives in [`AttemptCtx`].
pub(crate) trait Stage {
    /// Span name (DESIGN.md §8's stage-to-span mapping is the identity).
    fn name(&self) -> &'static str;

    /// Runs the stage, advancing `ctx.cursor` by any simulated latency the
    /// stage charges and leaving its products in `ctx`.
    fn run(
        &self,
        cv: &CloudViews,
        ctx: &mut AttemptCtx<'_>,
    ) -> std::result::Result<(), AttemptFailure>;
}

/// Stage 1 — the compiler's one metadata lookup per job (Section 6.1),
/// retried under the degradation policy; exhausted retries degrade the job
/// to its baseline plan. Tags come from the template-cache compile, not a
/// fresh signature pass.
struct LookupStage;

impl Stage for LookupStage {
    fn name(&self) -> &'static str {
        "metadata_lookup"
    }

    fn run(
        &self,
        cv: &CloudViews,
        ctx: &mut AttemptCtx<'_>,
    ) -> std::result::Result<(), AttemptFailure> {
        let (annotations, tier2, lookup_latency) = match ctx.mode {
            RunMode::Baseline => (Vec::new(), Vec::new(), SimDuration::ZERO),
            RunMode::CloudViews => {
                // Subsumption probes are per-instance (they embed concrete
                // predicate and parameter values), so they are computed
                // fresh here and never cached in the template.
                let probes = if cv.subsumption {
                    subsume_probes(&ctx.spec.graph, &ctx.compiled.infos)
                } else {
                    Vec::new()
                };
                cv.lookup_with_retry(
                    ctx.spec.id,
                    &ctx.compiled.tags,
                    &probes,
                    ctx.start,
                    ctx.faults,
                )
            }
        };
        ctx.annotations = annotations;
        // Window annotations ride along with the metadata lookup's: every
        // shared entry this job produces or follows gets a synthesized
        // annotation (unless a genuine analyzer annotation already covers
        // the template), so the ordinary optimizer hooks drive both the
        // producer's materialization and the followers' reuse.
        if ctx.mode == RunMode::CloudViews {
            if let Some(w) = ctx.pinned.window {
                w.extend_annotations(ctx.pinned.slot, &mut ctx.annotations);
            }
        }
        ctx.tier2 = tier2;
        ctx.lookup_latency = lookup_latency;
        ctx.cursor = ctx.start + lookup_latency;
        Ok(())
    }
}

/// Stage 2 — the reuse rewrite: optimize with the pinned metadata service
/// as the view oracle (Figure 10's two hooks), reusing the subgraph records
/// from the template-cache compile instead of re-enumerating.
struct OptimizeStage;

impl Stage for OptimizeStage {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn run(
        &self,
        cv: &CloudViews,
        ctx: &mut AttemptCtx<'_>,
    ) -> std::result::Result<(), AttemptFailure> {
        let _ = cv;
        let plan = optimize_with_cascade(
            &ctx.spec.graph,
            &ctx.compiled.infos,
            &ctx.annotations,
            &ctx.tier2,
            &ctx.pinned,
            &ctx.opt_config,
            ctx.spec.id,
        )
        .map_err(AttemptFailure::Fatal)?;
        ctx.outcome = (!plan.reused.is_empty()).then_some("reuse");
        // Sharing accounting: which awaited entries did this follower
        // actually reuse (vs. fall back to recompute — abort, or the cost
        // gate honestly declining the view), and how long did it wait past
        // the shared submission instant for the producer's publication?
        // The wait is simulated latency this job really pays.
        if let Some(w) = ctx.pinned.window {
            let reused: Vec<Sig128> = plan.reused.iter().map(|r| r.precise).collect();
            let wait = w.note_optimized(ctx.pinned.slot, &reused);
            if wait > SimDuration::ZERO {
                ctx.extra_latency += wait;
                ctx.cursor += wait;
            }
        }
        ctx.plan = Some(plan);
        Ok(())
    }
}

/// Stage 3 — execute and simulate. A matched view that cannot be read back
/// (lost or corrupted file) is not fatal: unregister it and re-optimize
/// without reuse — the paper's fallback to recomputation.
struct ExecuteStage;

impl Stage for ExecuteStage {
    fn name(&self) -> &'static str {
        "execute"
    }

    fn run(
        &self,
        cv: &CloudViews,
        ctx: &mut AttemptCtx<'_>,
    ) -> std::result::Result<(), AttemptFailure> {
        let plan_ref = ctx.plan.as_ref().expect("optimize stage ran");
        let exec = match execute_plan(&plan_ref.physical, &cv.storage, &cv.cost, ctx.start) {
            Ok(exec) => exec,
            Err(ScopeError::ViewUnavailable(_)) if !plan_ref.reused.is_empty() => {
                ctx.faults.view_read_fallbacks += 1;
                if cv.degradation.unregister_dead_views {
                    for r in &plan_ref.reused {
                        if cv.storage.open_view(r.precise, ctx.start).is_err() {
                            // Pin the GC read to the job's submission time:
                            // under a replayed log the live clock may sit
                            // anywhere, and a wall-clock read here could GC
                            // annotations that were live at the recorded
                            // instant.
                            cv.metadata.unregister_views_at(&[r.precise], ctx.start);
                            cv.storage.delete_view(r.precise);
                            ctx.faults.dead_views_unregistered += 1;
                        }
                    }
                }
                let no_reuse = OptimizerConfig {
                    enable_reuse: false,
                    ..ctx.opt_config.clone()
                };
                let plan = optimize_with_infos(
                    &ctx.spec.graph,
                    &ctx.compiled.infos,
                    &ctx.annotations,
                    &ctx.pinned,
                    &no_reuse,
                    ctx.spec.id,
                )
                .map_err(AttemptFailure::Fatal)?;
                let exec = execute_plan(&plan.physical, &cv.storage, &cv.cost, ctx.start)
                    .map_err(AttemptFailure::Fatal)?;
                ctx.plan = Some(plan);
                exec
            }
            Err(e) => return Err(AttemptFailure::Fatal(e)),
        };
        ctx.faults.propose_faults += ctx.pinned.propose_faults.get();
        let sim = simulate(
            &ctx.plan.as_ref().expect("plan set").physical,
            &exec,
            &cv.cluster,
        );
        ctx.cursor += sim.latency;
        cv.record_sim_metrics(&sim);
        ctx.exec = Some(exec);
        ctx.sim = Some(sim);
        Ok(())
    }
}

/// Stage 4 — materialize marked views and publish each one (early — at its
/// producing stage's completion time — or at job end, Section 6.4). This is
/// the stage where an injected builder crash kills the attempt: the error
/// propagates with the latency already wasted, the stage's span stays
/// unfinished, and the driver restarts the job.
struct PublishStage;

impl Stage for PublishStage {
    fn name(&self) -> &'static str {
        "publish"
    }

    fn run(
        &self,
        cv: &CloudViews,
        ctx: &mut AttemptCtx<'_>,
    ) -> std::result::Result<(), AttemptFailure> {
        let plan = ctx.plan.as_ref().expect("optimize stage ran");
        let exec = ctx.exec.as_ref().expect("execute stage ran");
        let sim = ctx.sim.as_ref().expect("execute stage ran");
        let built = materialize_marked_views(plan, exec, sim, &cv.cost, ctx.spec.id, ctx.start)
            .map_err(AttemptFailure::Fatal)?;
        let job_end_offset = ctx.lookup_latency
            + sim.latency
            + built.iter().map(|b| b.extra_latency).sum::<SimDuration>();
        for b in built {
            // The builder may die right here — mid-materialization, after
            // winning its build lock, before publishing this view.
            if let Some(inj) = &cv.faults {
                if inj.should_fail(FaultSite::BuilderCrash, ctx.spec.id) {
                    return Err(AttemptFailure::BuilderCrash {
                        wasted_latency: ctx.lookup_latency + sim.latency + ctx.extra_latency,
                    });
                }
            }
            ctx.extra_cpu += b.extra_cpu;
            ctx.extra_latency += b.extra_latency;
            let mut available_at = if cv.early_materialization {
                ctx.start + ctx.lookup_latency + b.available_offset
            } else {
                ctx.start + job_end_offset
            };
            if let Some(inj) = &cv.faults {
                let delay = inj.publication_delay();
                if delay > SimDuration::ZERO {
                    available_at += delay;
                    ctx.faults.delayed_publications += 1;
                }
            }
            let view = scope_engine::optimizer::AvailableView {
                precise: b.file.meta.precise,
                rows: b.file.meta.rows,
                bytes: b.file.meta.bytes,
                props: b.file.props.clone(),
            };
            let expires_at = b.file.meta.expires_at;
            let normalized = b.file.meta.normalized;
            let precise = b.file.meta.precise;
            ctx.views_built.push(precise);
            cv.storage
                .publish_view(b.file)
                .map_err(AttemptFailure::Fatal)?;
            // Elected producer: hand the view to the window's followers the
            // moment it is on storage, with the *measured* subgraph CPU as
            // their recompute proxy (the cost-based reuse gate then makes
            // an honest read-vs-recompute decision). This channel is
            // independent of the metadata report below — a lost report
            // orphans the view for later jobs but not for the window.
            if let Some(w) = ctx.pinned.window {
                if w.is_producer(ctx.pinned.slot, precise) {
                    let recompute_cpu = plan
                        .materialize
                        .iter()
                        .find(|m| m.precise == precise)
                        .map(|m| exec.subgraph_cpu(&plan.physical, m.physical_node))
                        .unwrap_or(SimDuration::ZERO);
                    w.publish(
                        ctx.pinned.slot,
                        precise,
                        view.clone(),
                        available_at,
                        recompute_cpu,
                    );
                }
            }
            // The stored file's fate: the plan may lose or corrupt it right
            // after publication (readers fall back to recomputation).
            if let Some(inj) = &cv.faults {
                inj.apply_view_fate(&cv.storage, precise, ctx.spec.id);
            }
            // The view-side descriptor comes from the *original* logical
            // plan: even when this root was itself compensated by a tier-2
            // rewrite, the materialized bytes equal the original subgraph's
            // output, which is exactly what the descriptor describes.
            let descriptor = view_descriptor(&ctx.spec.graph, &ctx.compiled.infos, precise);
            if cv
                .metadata
                .report(
                    ReportRequest::new(view, normalized, ctx.spec.id, available_at, expires_at)
                        .with_descriptor(descriptor)
                        .for_vc(ctx.spec.vc),
                )
                .is_err()
            {
                // Lost report: the file is orphaned (never visible) and the
                // build lock lapses at its mined expiry.
                ctx.faults.report_faults += 1;
            }
        }
        ctx.cursor += ctx.extra_latency;
        Ok(())
    }
}

/// Stage 5 — close the feedback loop: reconcile the run into the workload
/// repository, reusing the template-cache compile's subgraph records and
/// tags instead of re-enumerating the plan.
struct RecordStage;

impl Stage for RecordStage {
    fn name(&self) -> &'static str {
        "record"
    }

    fn run(
        &self,
        cv: &CloudViews,
        ctx: &mut AttemptCtx<'_>,
    ) -> std::result::Result<(), AttemptFailure> {
        if cv.record_runs {
            let spec = ctx.spec;
            cv.repo
                .record_compiled(
                    JobIdentity {
                        job: spec.id,
                        cluster: spec.cluster,
                        vc: spec.vc,
                        user: spec.user,
                        template: spec.template,
                        instance: spec.instance,
                        submitted_at: ctx.start,
                    },
                    &ctx.compiled.infos,
                    &ctx.compiled.tags,
                    ctx.plan.as_ref().expect("optimize stage ran"),
                    ctx.exec.as_ref().expect("execute stage ran"),
                    ctx.sim.as_ref().expect("execute stage ran"),
                )
                .map_err(AttemptFailure::Fatal)?;
            // Keep the resident analyzer warm: fold the fresh record(s)
            // into its aggregates now, so an analyze_round only re-selects.
            if let Some(analyzer) = &cv.analyzer {
                analyzer.absorb(&cv.repo);
            }
        }
        Ok(())
    }
}

/// Query-side subsumption probes: one descriptor per tier-2-eligible unary
/// root of the job's logical plan. Descriptors embed per-instance values
/// (predicate constants, parameter bindings), so they are computed per
/// attempt from the concrete plan — never cached in the template.
fn subsume_probes(graph: &QueryGraph, infos: &[SubgraphInfo]) -> Vec<SubsumeDescriptor> {
    let precise_of: HashMap<NodeId, Sig128> = infos.iter().map(|i| (i.root, i.precise)).collect();
    infos
        .iter()
        .filter_map(|info| {
            let node = graph.node(info.root).ok()?;
            let child = match node.children.as_slice() {
                [c] => *c,
                _ => return None,
            };
            SubsumeDescriptor::of(graph, info.root, *precise_of.get(&child)?)
        })
        .collect()
}

/// View-side descriptor for a freshly built view whose subgraph root has
/// precise signature `precise` in the job's original logical plan. `None`
/// (non-unary or otherwise ineligible root) keeps the view tier-1-only.
fn view_descriptor(
    graph: &QueryGraph,
    infos: &[SubgraphInfo],
    precise: Sig128,
) -> Option<SubsumeDescriptor> {
    let info = infos.iter().find(|i| i.precise == precise)?;
    let node = graph.node(info.root).ok()?;
    let child = match node.children.as_slice() {
        [c] => *c,
        _ => return None,
    };
    let child_precise = infos.iter().find(|i| i.root == child)?.precise;
    SubsumeDescriptor::of(graph, info.root, child_precise)
}

/// The pipeline, in order. Adding a stage here adds its child span to every
/// job's trace — keep DESIGN.md §9's stage table in sync.
const STAGES: [&dyn Stage; 5] = [
    &LookupStage,
    &OptimizeStage,
    &ExecuteStage,
    &PublishStage,
    &RecordStage,
];

/// One attempt at running a job end to end through the stage pipeline.
///
/// The driver owns the per-stage telemetry: each stage gets a child span of
/// `root` opening at the attempt's simulated cursor and closing at the
/// cursor the stage left behind, labeled with the stage's outcome. A failed
/// stage's span is deliberately dropped unfinished (a crashed builder never
/// reports a publish time).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_attempt(
    cv: &CloudViews,
    spec: &JobSpec,
    mode: RunMode,
    start: SimTime,
    compiled: &CompiledJob,
    faults: &mut JobFaultReport,
    root: &scope_common::telemetry::ActiveSpan,
    window: Option<(&WindowContext, usize)>,
) -> std::result::Result<JobRunReport, AttemptFailure> {
    cv.clock.advance_to(start);
    // An elected producer's window builds must never crowd out the builds
    // its own analyzer annotations would have triggered, so the per-job
    // materialization cap is raised by the number of entries it owes.
    let window_builds = window.map_or(0, |(w, slot)| w.produces_count(slot));
    let mut ctx = AttemptCtx {
        spec,
        mode,
        start,
        cursor: start,
        compiled,
        faults,
        outcome: None,
        pinned: PinnedServices {
            svc: cv.metadata.as_ref(),
            now: start,
            propose_faults: std::cell::Cell::new(0),
            window: window.map(|(w, _)| w),
            slot: window.map_or(0, |(_, slot)| slot),
        },
        opt_config: OptimizerConfig {
            default_dop: cv.cluster.default_dop,
            max_materialize_per_job: cv.max_materialize_per_job + window_builds,
            enable_reuse: mode == RunMode::CloudViews,
            enable_materialize: mode == RunMode::CloudViews,
            enable_subsumption: cv.subsumption,
            ..Default::default()
        },
        annotations: Vec::new(),
        tier2: Vec::new(),
        lookup_latency: SimDuration::ZERO,
        plan: None,
        exec: None,
        sim: None,
        views_built: Vec::new(),
        extra_cpu: SimDuration::ZERO,
        extra_latency: SimDuration::ZERO,
    };
    let tracer = &cv.telemetry.tracer;
    for stage in STAGES {
        let span = tracer.child(root, stage.name(), ctx.cursor);
        stage.run(cv, &mut ctx)?;
        tracer.finish_with(span, ctx.cursor, ctx.outcome.take());
    }
    Ok(ctx.into_report())
}

/// Options for [`CloudViews::run_many`]. The default (all zeros) means one
/// worker per available core and unbounded admission.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineOptions {
    /// Worker threads. `0` means one per available core (and never more
    /// than the number of jobs).
    pub workers: usize,
    /// Jobs admitted concurrently (the admission-control bound). `0` means
    /// unbounded.
    pub max_in_flight: usize,
    /// Run the incremental metadata janitor as a background stage of the
    /// pool: after each job, the finishing worker sweeps one metadata
    /// shard ([`MetadataService::purge_next_shard`]), so expired views and
    /// the annotation/inverted-index entries they strand are reclaimed
    /// continuously instead of in stop-the-world purges.
    pub janitor: bool,
}

/// Counting semaphore (permits + condvar) bounding jobs in flight.
///
/// Poisoning is *recovered*, never propagated: the permit counter is a bare
/// `usize` whose guarded sections cannot themselves panic, so a poisoned
/// mutex (some thread panicked with the lock held — e.g. a pathological job
/// unwinding through the pool) leaves the count intact. Propagating the
/// poison instead would panic inside [`Permit::drop`] during that unwind —
/// aborting the process — or kill every waiter in `acquire`, leaking the
/// crashed job's permit and silently shrinking the admission bound for the
/// rest of the batch.
struct Admission {
    permits: Mutex<usize>,
    freed: Condvar,
}

struct Permit<'a>(&'a Admission);

impl Admission {
    fn new(permits: usize) -> Admission {
        Admission {
            permits: Mutex::new(permits),
            freed: Condvar::new(),
        }
    }

    /// Blocks until a permit is free; `waited` reports whether admission
    /// control actually held the job back.
    fn acquire(&self) -> (Permit<'_>, bool) {
        let mut permits = self
            .permits
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let waited = *permits == 0;
        while *permits == 0 {
            permits = self
                .freed
                .wait(permits)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        *permits -= 1;
        (Permit(self), waited)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        *self
            .0
            .permits
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) += 1;
        self.0.freed.notify_one();
    }
}

/// Pops the next job index: own deque from the front, else steal from the
/// back of the first non-empty victim. Returns `None` when every deque is
/// drained (no stage re-enqueues, so empty-everywhere means done).
fn next_job(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<(usize, bool)> {
    if let Some(idx) = queues[own].lock().expect("queue poisoned").pop_front() {
        return Some((idx, false));
    }
    for offset in 1..queues.len() {
        let victim = (own + offset) % queues.len();
        if let Some(idx) = queues[victim].lock().expect("queue poisoned").pop_back() {
            return Some((idx, true));
        }
    }
    None
}

impl CloudViews {
    /// Runs a batch of jobs on a work-stealing worker pool with bounded
    /// admission — the service-side driver for concurrent arrivals
    /// (Sections 6.4/6.5 at fleet scale).
    ///
    /// Every job is submitted at the same simulated time (the clock's `now`
    /// when the call is made). Jobs are dealt round-robin onto per-worker
    /// deques; idle workers steal. At most `max_in_flight` jobs run
    /// concurrently. Results come back in submission order; a job that
    /// panics or errors yields its own `Err` without disturbing the others.
    pub fn run_many(
        &self,
        specs: Vec<JobSpec>,
        mode: RunMode,
        options: PipelineOptions,
    ) -> Vec<Result<JobRunReport>> {
        let start = self.clock.now();
        self.run_many_inner(specs, mode, options, start, None)
    }

    /// [`CloudViews::run_many`] with an explicit submission time and an
    /// optional sharing-window coordinator ([`CloudViews::run_windowed`]).
    ///
    /// Without a window this is byte-for-byte the classic driver. With one,
    /// two things change: scheduling is readiness-gated (a follower is not
    /// dispatched until every entry it awaits is published or aborted, so a
    /// blocked follower can never occupy a worker its producer needs), and
    /// every job — success, error, *or caught panic* — resolves its window
    /// entries on the way out. That resolve is the publish-or-abort signal
    /// followers wait on: a producer that dies wakes its waiters into the
    /// recompute fallback instead of leaving them hanging.
    pub(crate) fn run_many_inner(
        &self,
        specs: Vec<JobSpec>,
        mode: RunMode,
        options: PipelineOptions,
        start: SimTime,
        window: Option<&WindowContext>,
    ) -> Vec<Result<JobRunReport>> {
        let n = specs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = if options.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            options.workers
        }
        .clamp(1, n);
        let max_in_flight = if options.max_in_flight == 0 {
            n
        } else {
            options.max_in_flight
        };
        // One effective worker needs none of the pool machinery — the
        // queues, the admission semaphore, and the spawned thread only add
        // overhead (the pooled path used to run ~12% slower than the serial
        // driver on a single-core host). Run inline on the calling thread;
        // panic isolation, result order, and the janitor cadence are
        // identical to the pooled path. Submission order dispatches every
        // producer before its followers (producers are the earliest job of
        // their group), so the window's readiness gate is trivially met.
        if workers == 1 {
            return specs
                .iter()
                .enumerate()
                .map(|(slot, spec)| {
                    let job = spec.id;
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        self.run_job_shared(spec, mode, start, window.map(|w| (w, slot)))
                    }));
                    if let Some(w) = window {
                        w.resolve_job(slot);
                    }
                    let result = match outcome {
                        Ok(result) => result,
                        Err(payload) => Err(ScopeError::Execution(format!(
                            "job {job} thread panicked: {}",
                            panic_message(payload.as_ref())
                        ))),
                    };
                    if options.janitor {
                        self.metadata.purge_next_shard();
                    }
                    result
                })
                .collect();
        }
        let admission = Admission::new(max_in_flight);
        let results: Vec<Mutex<Option<Result<JobRunReport>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let specs = &specs;
        let admission = &admission;
        let results = &results;
        if let Some(w) = window {
            // Windowed pool: workers pull from the coordinator's readiness
            // gate instead of the stealing deques. The admission permit is
            // acquired only *after* a ready slot is claimed, so a parked
            // worker never pins a permit a producer needs.
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(move || {
                        while let Some(slot) = w.next_ready() {
                            let (_permit, waited) = admission.acquire();
                            if waited {
                                self.metrics.pipeline_admission_waits.inc();
                            }
                            let spec = &specs[slot];
                            let job = spec.id;
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                self.run_job_shared(spec, mode, start, Some((w, slot)))
                            }));
                            // Publish-or-abort, on *every* exit path: any
                            // entry this job still owes is aborted and its
                            // waiters wake into the recompute fallback.
                            w.resolve_job(slot);
                            let result = match outcome {
                                Ok(result) => result,
                                Err(payload) => Err(ScopeError::Execution(format!(
                                    "job {job} thread panicked: {}",
                                    panic_message(payload.as_ref())
                                ))),
                            };
                            *results[slot].lock().expect("result slot poisoned") = Some(result);
                            if options.janitor {
                                self.metadata.purge_next_shard();
                            }
                        }
                    });
                }
            });
        } else {
            let queues: Vec<Mutex<VecDeque<usize>>> =
                (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
            for idx in 0..n {
                queues[idx % workers]
                    .lock()
                    .expect("queue poisoned")
                    .push_back(idx);
            }
            let queues = &queues;
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    scope.spawn(move || {
                        while let Some((idx, stolen)) = next_job(queues, worker) {
                            if stolen {
                                self.metrics.pipeline_steals.inc();
                            }
                            let (_permit, waited) = admission.acquire();
                            if waited {
                                self.metrics.pipeline_admission_waits.inc();
                            }
                            let spec = &specs[idx];
                            let job = spec.id;
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                self.run_job_at(spec, mode, start)
                            }));
                            let result = match outcome {
                                Ok(result) => result,
                                Err(payload) => Err(ScopeError::Execution(format!(
                                    "job {job} thread panicked: {}",
                                    panic_message(payload.as_ref())
                                ))),
                            };
                            *results[idx].lock().expect("result slot poisoned") = Some(result);
                            if options.janitor {
                                // Background janitor stage: the worker that
                                // just finished a job sweeps one metadata
                                // shard.
                                self.metadata.purge_next_shard();
                            }
                        }
                    });
                }
            });
        }
        results
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("result slot poisoned")
                    .take()
                    .expect("every job produced a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_engine::storage::StorageManager;
    use scope_workload::dists::LogNormal;
    use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};
    use std::sync::Arc;

    fn setup() -> (CloudViews, RecurringWorkload) {
        let workload = RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![ClusterSpec::tiny("pl")],
            seed: 77,
            stream_rows: LogNormal::new(5.8, 0.5, 100.0, 1_200.0),
        })
        .unwrap();
        let storage = Arc::new(StorageManager::new());
        let cv = CloudViews::builder(storage).build();
        (cv, workload)
    }

    #[test]
    fn run_many_matches_submission_order_and_outputs() {
        let (cv, workload) = setup();
        workload
            .register_instance_data(0, 0, &cv.storage, 1.0)
            .unwrap();
        let jobs = workload.jobs_for_instance(0, 0).unwrap();
        let expected: Vec<_> = jobs.iter().map(|s| s.id).collect();
        let reports = cv.run_many(
            jobs,
            RunMode::Baseline,
            PipelineOptions {
                workers: 3,
                max_in_flight: 2,
                janitor: false,
            },
        );
        let ids: Vec<_> = reports.iter().map(|r| r.as_ref().unwrap().job).collect();
        assert_eq!(ids, expected, "results must come back in submission order");
    }

    #[test]
    fn run_many_single_worker_equals_thread_per_job_aggregates() {
        let (cv_a, workload) = setup();
        workload
            .register_instance_data(0, 0, &cv_a.storage, 1.0)
            .unwrap();
        let jobs = workload.jobs_for_instance(0, 0).unwrap();
        let serial = cv_a.run_many(
            jobs.clone(),
            RunMode::Baseline,
            PipelineOptions {
                workers: 1,
                max_in_flight: 1,
                janitor: false,
            },
        );

        let (cv_b, workload_b) = setup();
        workload_b
            .register_instance_data(0, 0, &cv_b.storage, 1.0)
            .unwrap();
        let wide = cv_b.run_many(jobs, RunMode::Baseline, PipelineOptions::default());

        for (a, b) in serial.iter().zip(&wide) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.job, b.job);
            assert_eq!(a.output_checksums, b.output_checksums);
            assert_eq!(a.latency, b.latency);
        }
    }

    #[test]
    fn run_many_isolates_a_panicking_job() {
        let (cv, workload) = setup();
        workload
            .register_instance_data(0, 0, &cv.storage, 1.0)
            .unwrap();
        let mut jobs = workload.jobs_for_instance(0, 0).unwrap();
        // Point one job at data that was never registered: it fails alone.
        let broken = workload.jobs_for_instance(0, 1).unwrap().remove(0);
        let broken_id = broken.id;
        jobs.push(broken);
        let results = cv.run_many(
            jobs,
            RunMode::Baseline,
            PipelineOptions {
                workers: 2,
                max_in_flight: 0,
                janitor: false,
            },
        );
        let (ok, failed): (Vec<_>, Vec<_>) = results.iter().partition(|r| r.is_ok());
        assert_eq!(failed.len(), 1, "exactly the broken job fails");
        assert_eq!(ok.len(), results.len() - 1);
        let _ = broken_id;
    }

    #[test]
    fn admission_bound_never_exceeded() {
        // With max_in_flight=1 the pipeline serializes: total lookups and
        // job counts still match, and nothing deadlocks.
        let (cv, workload) = setup();
        workload
            .register_instance_data(0, 0, &cv.storage, 1.0)
            .unwrap();
        let jobs = workload.jobs_for_instance(0, 0).unwrap();
        let n = jobs.len();
        let reports = cv.run_many(
            jobs,
            RunMode::CloudViews,
            PipelineOptions {
                workers: 4,
                max_in_flight: 1,
                janitor: false,
            },
        );
        assert_eq!(reports.len(), n);
        assert!(reports.iter().all(|r| r.is_ok()));
        assert_eq!(cv.metadata.stats().lookups, n as u64);
    }
}
