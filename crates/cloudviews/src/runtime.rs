//! The CloudViews runtime (paper Section 6): the per-job path.
//!
//! For each incoming job, with CloudViews enabled:
//!
//! 1. the compiler makes **one** metadata lookup with the job's normalized
//!    tags and receives the relevant annotations (Section 6.1);
//! 2. the optimizer rewrites the plan to reuse materialized views and/or
//!    marks subgraphs for materialization after winning build locks
//!    (Sections 6.2/6.3, Figure 10);
//! 3. the job executes; marked subgraph outputs are copied into view files
//!    in the analyzer-mined physical design;
//! 4. each view is *published early* — at its producing stage's completion
//!    time, not the job's end (Section 6.4) — to both the storage manager
//!    and the metadata service;
//! 5. the run is recorded back into the workload repository, closing the
//!    feedback loop.
//!
//! Everything is thread-safe; concurrent jobs exercise the build-build and
//! build-use synchronization exactly as in the paper.

use std::collections::HashMap;
use std::sync::Arc;

use scope_common::hash::Sig128;
use scope_common::ids::JobId;
use scope_common::time::{SimClock, SimDuration, SimTime};
use scope_common::Result;
use scope_engine::cost::CostModel;
use scope_engine::data::multiset_checksum;
use scope_engine::exec::execute_plan;
use scope_engine::job::{materialize_marked_views, JobSpec};
use scope_engine::optimizer::{optimize, OptimizerConfig, OptimizerReport};
use scope_engine::repo::{JobIdentity, WorkloadRepository};
use scope_engine::sim::{simulate, ClusterConfig};
use scope_engine::storage::StorageManager;
use scope_signature::job_tags;

use crate::analyzer::{run_analysis, AnalysisOutcome, AnalyzerConfig};
use crate::metadata::MetadataService;

/// A job-start-pinned view of the metadata service: view availability is
/// judged at the job's submission time, so a job overlapping with the
/// builder does not see a view that was published after this job started.
struct PinnedServices<'a> {
    svc: &'a MetadataService,
    now: SimTime,
}

impl scope_engine::optimizer::ViewServices for PinnedServices<'_> {
    fn view_available(
        &self,
        precise: Sig128,
    ) -> Option<scope_engine::optimizer::AvailableView> {
        self.svc.view_available_at(precise, self.now)
    }

    fn propose_materialize(
        &self,
        precise: Sig128,
        normalized: Sig128,
        job: scope_common::ids::JobId,
        lock_ttl: scope_common::time::SimDuration,
    ) -> bool {
        self.svc.propose_materialize(precise, normalized, job, lock_ttl)
    }
}

/// Whether a job runs with CloudViews on or off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Plain SCOPE: no lookups, no reuse, no materialization.
    Baseline,
    /// CloudViews enabled (the job-submission flag of Section 4).
    CloudViews,
}

/// The result of one job run through the service.
#[derive(Debug)]
pub struct JobRunReport {
    /// Job id.
    pub job: JobId,
    /// Simulated start (submission) time.
    pub started_at: SimTime,
    /// End-to-end latency including metadata lookup and view-write costs.
    pub latency: SimDuration,
    /// Total CPU including view-write costs.
    pub cpu_time: SimDuration,
    /// Metadata lookup latency paid (zero in baseline mode).
    pub lookup_latency: SimDuration,
    /// Views this job materialized.
    pub views_built: Vec<Sig128>,
    /// Views this job reused.
    pub views_reused: Vec<Sig128>,
    /// Optimizer overhead report.
    pub optimizer: OptimizerReport,
    /// Order-insensitive checksum of every output (correctness checks).
    pub output_checksums: HashMap<String, u64>,
    /// Output row counts.
    pub output_rows: HashMap<String, usize>,
}

/// The assembled CloudViews service: storage + metadata + repository +
/// clock + engine configuration.
pub struct CloudViews {
    /// Shared storage manager (datasets + view files).
    pub storage: Arc<StorageManager>,
    /// The metadata service.
    pub metadata: Arc<MetadataService>,
    /// The workload repository (feedback loop).
    pub repo: Arc<WorkloadRepository>,
    /// Shared simulated clock.
    pub clock: Arc<SimClock>,
    /// Cost model used for execution accounting.
    pub cost: CostModel,
    /// Cluster/VC execution parameters.
    pub cluster: ClusterConfig,
    /// Per-job cap on materialized views (job submission parameter).
    pub max_materialize_per_job: usize,
    /// Publish views at stage completion (true) or job completion (false).
    pub early_materialization: bool,
    /// Record runs into the repository.
    pub record_runs: bool,
}

impl CloudViews {
    /// Builds a service over the given storage with default configuration
    /// (5 metadata service threads, early materialization on).
    pub fn new(storage: Arc<StorageManager>) -> CloudViews {
        let clock = Arc::new(SimClock::new());
        CloudViews {
            metadata: Arc::new(MetadataService::new(Arc::clone(&clock), 5)),
            repo: Arc::new(WorkloadRepository::new()),
            storage,
            clock,
            cost: CostModel::default(),
            cluster: ClusterConfig::default(),
            max_materialize_per_job: 1,
            early_materialization: true,
            record_runs: true,
        }
    }

    /// Runs the analyzer over everything recorded so far.
    pub fn analyze(&self, config: &AnalyzerConfig) -> Result<AnalysisOutcome> {
        run_analysis(&self.repo.records(), config)
    }

    /// Installs an analysis outcome into the metadata service.
    pub fn install_analysis(&self, outcome: &AnalysisOutcome) {
        self.metadata.load_annotations(&outcome.selected);
    }

    /// Runs one job starting at simulated time `start`.
    pub fn run_job_at(
        &self,
        spec: &JobSpec,
        mode: RunMode,
        start: SimTime,
    ) -> Result<JobRunReport> {
        self.clock.advance_to(start);

        // 1. Compiler: one metadata lookup per job.
        let (annotations, lookup_latency) = match mode {
            RunMode::Baseline => (Vec::new(), SimDuration::ZERO),
            RunMode::CloudViews => {
                let tags = job_tags(&spec.graph);
                self.metadata.relevant_views_for(&tags)
            }
        };

        // 2. Optimize with the metadata service as the view oracle.
        let opt_config = OptimizerConfig {
            default_dop: self.cluster.default_dop,
            max_materialize_per_job: self.max_materialize_per_job,
            enable_reuse: mode == RunMode::CloudViews,
            enable_materialize: mode == RunMode::CloudViews,
            ..Default::default()
        };
        let pinned = PinnedServices { svc: self.metadata.as_ref(), now: start };
        let plan = optimize(&spec.graph, &annotations, &pinned, &opt_config, spec.id)?;

        // 3. Execute and simulate.
        let exec = execute_plan(&plan.physical, &self.storage, &self.cost, start)?;
        let sim = simulate(&plan.physical, &exec, &self.cluster);

        // 4. Materialize marked views and publish them (early or at end).
        let built =
            materialize_marked_views(&plan, &exec, &sim, &self.cost, spec.id, start)?;
        let mut extra_cpu = SimDuration::ZERO;
        let mut extra_latency = SimDuration::ZERO;
        let mut views_built = Vec::with_capacity(built.len());
        let job_end_offset = lookup_latency
            + sim.latency
            + built.iter().map(|b| b.extra_latency).sum::<SimDuration>();
        for b in built {
            extra_cpu += b.extra_cpu;
            extra_latency += b.extra_latency;
            let available_at = if self.early_materialization {
                start + lookup_latency + b.available_offset
            } else {
                start + job_end_offset
            };
            let view = scope_engine::optimizer::AvailableView {
                precise: b.file.meta.precise,
                rows: b.file.meta.rows,
                bytes: b.file.meta.bytes,
                props: b.file.props.clone(),
            };
            let expires_at = b.file.meta.expires_at;
            views_built.push(b.file.meta.precise);
            self.storage.publish_view(b.file)?;
            self.metadata.report_materialized(view, spec.id, available_at, expires_at);
        }

        let latency = lookup_latency + sim.latency + extra_latency;
        let cpu_time = sim.cpu_time + extra_cpu;

        // 5. Close the feedback loop.
        if self.record_runs {
            self.repo.record(
                JobIdentity {
                    job: spec.id,
                    cluster: spec.cluster,
                    vc: spec.vc,
                    user: spec.user,
                    template: spec.template,
                    instance: spec.instance,
                    submitted_at: start,
                },
                &spec.graph,
                &plan,
                &exec,
                &sim,
            )?;
        }

        self.clock.advance_to(start + latency);

        Ok(JobRunReport {
            job: spec.id,
            started_at: start,
            latency,
            cpu_time,
            lookup_latency,
            views_built,
            views_reused: plan.reused.iter().map(|r| r.precise).collect(),
            optimizer: plan.report.clone(),
            output_checksums: exec
                .outputs
                .iter()
                .map(|(name, t)| (name.clone(), multiset_checksum(t)))
                .collect(),
            output_rows: exec
                .outputs
                .iter()
                .map(|(name, t)| (name.clone(), t.num_rows()))
                .collect(),
        })
    }

    /// Runs jobs back-to-back (each starts when the previous finishes),
    /// like the paper's sequential production experiment.
    pub fn run_sequence(&self, specs: &[JobSpec], mode: RunMode) -> Result<Vec<JobRunReport>> {
        let mut reports = Vec::with_capacity(specs.len());
        let mut now = self.clock.now();
        for spec in specs {
            let report = self.run_job_at(spec, mode, now)?;
            now = report.started_at + report.latency;
            reports.push(report);
        }
        Ok(reports)
    }

    /// Runs jobs on OS threads, all submitted at the same simulated time —
    /// the concurrent-arrival scenario of Sections 6.4/6.5.
    pub fn run_concurrent(
        &self,
        specs: Vec<JobSpec>,
        mode: RunMode,
    ) -> Result<Vec<JobRunReport>>
    where
        Self: Sync,
    {
        let start = self.clock.now();
        let results: Vec<Result<JobRunReport>> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| scope.spawn(move || self.run_job_at(spec, mode, start)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("job thread panicked")).collect()
        });
        results.into_iter().collect()
    }

    /// Purges expired views from both the metadata service and storage;
    /// returns (views purged, bytes reclaimed).
    pub fn purge_expired(&self) -> (usize, u64) {
        let purged = self.metadata.purge_expired();
        let bytes = self.storage.purge_expired(self.clock.now());
        (purged, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{AnalyzerConfig, SelectionPolicy};
    use scope_workload::dists::LogNormal;
    use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

    fn setup() -> (CloudViews, RecurringWorkload) {
        let workload = RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![ClusterSpec::tiny("rt")],
            seed: 99,
            stream_rows: LogNormal::new(5.8, 0.5, 100.0, 1_200.0),
        })
        .unwrap();
        let storage = Arc::new(StorageManager::new());
        let cv = CloudViews::new(storage);
        (cv, workload)
    }

    fn analyzer_cfg() -> AnalyzerConfig {
        AnalyzerConfig {
            policy: SelectionPolicy::TopKUtility { k: 5 },
            ..Default::default()
        }
    }

    /// The full paper loop: baseline instance → analyze → enabled instance.
    #[test]
    fn end_to_end_reuse_cycle_preserves_outputs_and_saves_cpu() {
        let (cv, workload) = setup();

        // Instance 0: baseline, fills the repository.
        workload.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        let day0 = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&day0, RunMode::Baseline).unwrap();

        // Analyze and install.
        let analysis = cv.analyze(&analyzer_cfg()).unwrap();
        assert!(!analysis.selected.is_empty());
        cv.install_analysis(&analysis);

        // Instance 1 (new data, new GUIDs): run twice, baseline vs enabled.
        workload.register_instance_data(0, 1, &cv.storage, 1.0).unwrap();
        let day1 = workload.jobs_for_instance(0, 1).unwrap();
        let baseline: Vec<_> = cv.run_sequence(&day1, RunMode::Baseline).unwrap();
        let enabled: Vec<_> = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();

        // Correctness: identical outputs job by job.
        let mut any_reuse = false;
        for (b, e) in baseline.iter().zip(&enabled) {
            assert_eq!(b.output_checksums, e.output_checksums, "job {} corrupted", b.job);
            any_reuse |= !e.views_reused.is_empty();
        }
        let built: usize = enabled.iter().map(|r| r.views_built.len()).sum();
        assert!(built > 0, "no views were materialized");
        assert!(any_reuse, "no views were reused");

        // Performance: total CPU with CloudViews below baseline.
        let cpu_base: SimDuration = baseline.iter().map(|r| r.cpu_time).sum();
        let cpu_cv: SimDuration = enabled.iter().map(|r| r.cpu_time).sum();
        assert!(
            cpu_cv < cpu_base,
            "CloudViews must save CPU: {cpu_cv} vs {cpu_base}"
        );
    }

    #[test]
    fn baseline_mode_never_touches_metadata() {
        let (cv, workload) = setup();
        workload.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        let jobs = workload.jobs_for_instance(0, 0).unwrap();
        let r = cv.run_job_at(&jobs[0], RunMode::Baseline, SimTime::ZERO).unwrap();
        assert_eq!(r.lookup_latency, SimDuration::ZERO);
        assert_eq!(cv.metadata.stats().lookups, 0);
        assert!(r.views_built.is_empty() && r.views_reused.is_empty());
    }

    #[test]
    fn one_lookup_per_job() {
        let (cv, workload) = setup();
        workload.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        let jobs = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&jobs[..3], RunMode::CloudViews).unwrap();
        assert_eq!(cv.metadata.stats().lookups, 3);
    }

    #[test]
    fn build_build_sync_under_concurrency() {
        let (cv, workload) = setup();
        workload.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        let day0 = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&day0, RunMode::Baseline).unwrap();
        let analysis = cv.analyze(&analyzer_cfg()).unwrap();
        cv.install_analysis(&analysis);

        workload.register_instance_data(0, 1, &cv.storage, 1.0).unwrap();
        let day1 = workload.jobs_for_instance(0, 1).unwrap();
        let reports = cv.run_concurrent(day1, RunMode::CloudViews).unwrap();

        // No view may be built by two jobs.
        let mut built: Vec<Sig128> =
            reports.iter().flat_map(|r| r.views_built.iter().copied()).collect();
        let before = built.len();
        built.sort_unstable();
        built.dedup();
        assert_eq!(built.len(), before, "same view built twice");
        assert!(before > 0);
    }

    #[test]
    fn early_materialization_beats_job_end_publication() {
        let (cv, workload) = setup();
        workload.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        let day0 = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&day0, RunMode::Baseline).unwrap();
        let analysis = cv.analyze(&analyzer_cfg()).unwrap();
        cv.install_analysis(&analysis);

        workload.register_instance_data(0, 1, &cv.storage, 1.0).unwrap();
        let day1 = workload.jobs_for_instance(0, 1).unwrap();
        // Find a job that materializes a view and check availability time
        // precedes its completion.
        let reports = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
        let builder = reports.iter().find(|r| !r.views_built.is_empty()).unwrap();
        let sig = builder.views_built[0];
        // The metadata service has it with created_at before job end.
        assert!(cv.metadata.view_producer(sig).is_some());
    }

    #[test]
    fn purge_reclaims_after_expiry() {
        let (cv, workload) = setup();
        workload.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        let day0 = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&day0, RunMode::Baseline).unwrap();
        let analysis = cv.analyze(&AnalyzerConfig {
            default_ttl: SimDuration::from_secs(1),
            ..analyzer_cfg()
        })
        .unwrap();
        cv.install_analysis(&analysis);
        workload.register_instance_data(0, 1, &cv.storage, 1.0).unwrap();
        let day1 = workload.jobs_for_instance(0, 1).unwrap();
        cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
        assert!(cv.storage.num_views() > 0);
        // Jump far into the future and purge.
        cv.clock.advance(SimDuration::from_secs(10 * 86_400));
        let (purged, bytes) = cv.purge_expired();
        assert!(purged > 0);
        assert!(bytes > 0);
        assert_eq!(cv.storage.num_views(), 0);
        assert_eq!(cv.metadata.num_views(), 0);
    }

    #[test]
    fn signature_change_stops_stale_reuse() {
        // After the analysis, the *workload changes* (different seed ⇒
        // different fragment parameters). Old annotations must never match,
        // so nothing is reused or materialized — the paper's "view
        // materialization stops automatically" property.
        let (cv, workload) = setup();
        workload.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        let day0 = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&day0, RunMode::Baseline).unwrap();
        let analysis = cv.analyze(&analyzer_cfg()).unwrap();
        cv.install_analysis(&analysis);

        let changed = RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![ClusterSpec::tiny("rt")],
            seed: 12345, // workload change
            stream_rows: LogNormal::new(5.8, 0.5, 100.0, 1_200.0),
        })
        .unwrap();
        changed.register_instance_data(0, 1, &cv.storage, 1.0).unwrap();
        let day1 = changed.jobs_for_instance(0, 1).unwrap();
        let reports = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
        for r in &reports {
            assert!(r.views_built.is_empty(), "stale annotation triggered a build");
            assert!(r.views_reused.is_empty());
        }
    }
}
