//! The CloudViews runtime (paper Section 6): the per-job path.
//!
//! For each incoming job, with CloudViews enabled:
//!
//! 1. the compiler makes **one** metadata lookup with the job's normalized
//!    tags and receives the relevant annotations (Section 6.1);
//! 2. the optimizer rewrites the plan to reuse materialized views and/or
//!    marks subgraphs for materialization after winning build locks
//!    (Sections 6.2/6.3, Figure 10);
//! 3. the job executes; marked subgraph outputs are copied into view files
//!    in the analyzer-mined physical design;
//! 4. each view is *published early* — at its producing stage's completion
//!    time, not the job's end (Section 6.4) — to both the storage manager
//!    and the metadata service;
//! 5. the run is recorded back into the workload repository, closing the
//!    feedback loop.
//!
//! Everything is thread-safe; concurrent jobs exercise the build-build and
//! build-use synchronization exactly as in the paper.
//!
//! ## Fault tolerance & degradation
//!
//! When a [`FaultInjector`] is installed ([`CloudViews::install_fault_plan`])
//! the driver degrades instead of failing (paper Section 6, DESIGN.md):
//!
//! * a failed metadata lookup is retried with backoff
//!   ([`DegradationPolicy::lookup_retries`]); once retries are exhausted the
//!   job runs its **baseline plan** (no annotations — no reuse, no builds);
//! * a failed propose call simply skips that materialization;
//! * a matched view that cannot be read back (lost or corrupt file) causes
//!   re-optimization **without reuse** and the dead view is unregistered
//!   from the metadata service so later jobs stop matching it;
//! * a builder that crashes mid-materialization is restarted (up to
//!   [`DegradationPolicy::max_restarts`]); its exclusive build lock is never
//!   explicitly released — the same job re-acquires it on restart, and if
//!   the job never returns the lock lapses at its mined expiry so another
//!   job can take over;
//! * a failed success-report leaves an orphaned view file: never visible to
//!   lookups, reclaimed by expiry-based purging.
//!
//! Every degradation is counted per job in [`JobFaultReport`].

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use scope_common::hash::Sig128;
use scope_common::ids::JobId;
use scope_common::intern::Symbol;
use scope_common::telemetry::{ActiveSpan, Counter, Histogram, MetricUnit, Telemetry};
use scope_common::time::{SimClock, SimDuration, SimTime};
use scope_common::{Result, ScopeError};
use scope_engine::cost::CostModel;
use scope_engine::job::JobSpec;
use scope_engine::optimizer::OptimizerReport;
use scope_engine::repo::WorkloadRepository;
use scope_engine::sim::{ClusterConfig, SimOutcome};
use scope_engine::storage::StorageManager;
use scope_signature::TemplateCache;

use crate::analyzer::{run_analysis, AnalysisOutcome, AnalyzerConfig, IncrementalAnalyzer};
use crate::api::LookupRequest;
use crate::codec::{get_sigs, get_time, put_sigs, put_time};
use crate::faults::{FaultInjector, FaultPlan};
use crate::metadata::MetadataService;
use crate::pipeline::{self, PipelineOptions};
use crate::sharing::WindowContext;
use crate::store::{DurableStore, WalEvent};
use scope_common::codec::{CodecError, Dec, Enc};
use scope_engine::storage::StorageEventSink;

/// Whether a job runs with CloudViews on or off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Plain SCOPE: no lookups, no reuse, no materialization.
    Baseline,
    /// CloudViews enabled (the job-submission flag of Section 4).
    CloudViews,
}

/// How the driver absorbs injected (or real) failures. All knobs bound the
/// work spent degrading, so a pathological fault plan cannot hang a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradationPolicy {
    /// Metadata-lookup retries after the first failure. Once exhausted the
    /// job falls back to its baseline plan.
    pub lookup_retries: u32,
    /// Simulated backoff added to job latency before each lookup retry.
    pub retry_backoff: SimDuration,
    /// Restarts after a builder crash before the job is reported failed
    /// (models the job service's bounded resubmission).
    pub max_restarts: u32,
    /// On a view-read failure, unregister the dead view from the metadata
    /// service so later jobs stop matching it.
    pub unregister_dead_views: bool,
}

impl Default for DegradationPolicy {
    fn default() -> DegradationPolicy {
        DegradationPolicy {
            lookup_retries: 2,
            retry_backoff: SimDuration::from_secs_f64(0.05),
            max_restarts: 3,
            unregister_dead_views: true,
        }
    }
}

/// Per-job fault and degradation counters. Together with
/// [`FaultInjector::injected`](crate::faults::FaultInjector::injected) these
/// close the accounting loop: every injected call-site fault shows up in
/// exactly one job's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobFaultReport {
    /// Metadata lookup calls that failed (across restarts).
    pub lookup_faults: u64,
    /// Lookup retries performed.
    pub lookup_retries: u64,
    /// True when lookup retries were exhausted and the job ran its baseline
    /// plan.
    pub fell_back_to_baseline: bool,
    /// Propose calls that failed (the materialization was skipped).
    pub propose_faults: u64,
    /// Executions aborted by an unreadable matched view, recovered by
    /// re-optimizing without reuse.
    pub view_read_fallbacks: u64,
    /// Dead views this job unregistered from the metadata service after a
    /// read failure.
    pub dead_views_unregistered: u64,
    /// Times this job's builder crashed mid-materialization and the job was
    /// restarted.
    pub builder_crashes: u64,
    /// Success reports that failed (the built file is orphaned and the
    /// build lock lapses at its mined expiry).
    pub report_faults: u64,
    /// Publications delayed by the fault plan.
    pub delayed_publications: u64,
    /// Simulated latency added by retry backoff and crashed attempts.
    pub degraded_latency: SimDuration,
}

impl JobFaultReport {
    /// Total call-site faults this job absorbed (lookup + propose + report +
    /// builder crashes). Stored-file faults are counted at the injector.
    pub fn call_faults(&self) -> u64 {
        self.lookup_faults + self.propose_faults + self.report_faults + self.builder_crashes
    }

    /// True when any fault or degradation was observed.
    pub fn any(&self) -> bool {
        self.call_faults() > 0
            || self.view_read_fallbacks > 0
            || self.delayed_publications > 0
            || self.fell_back_to_baseline
    }

    /// Element-wise sum (aggregation across jobs).
    pub fn accumulate(&mut self, other: &JobFaultReport) {
        self.lookup_faults += other.lookup_faults;
        self.lookup_retries += other.lookup_retries;
        self.fell_back_to_baseline |= other.fell_back_to_baseline;
        self.propose_faults += other.propose_faults;
        self.view_read_fallbacks += other.view_read_fallbacks;
        self.dead_views_unregistered += other.dead_views_unregistered;
        self.builder_crashes += other.builder_crashes;
        self.report_faults += other.report_faults;
        self.delayed_publications += other.delayed_publications;
        self.degraded_latency += other.degraded_latency;
    }
}

/// The result of one job run through the service.
#[derive(Clone, Debug)]
pub struct JobRunReport {
    /// Job id.
    pub job: JobId,
    /// Simulated start (submission) time.
    pub started_at: SimTime,
    /// End-to-end latency including metadata lookup and view-write costs.
    pub latency: SimDuration,
    /// Total CPU including view-write costs.
    pub cpu_time: SimDuration,
    /// Metadata lookup latency paid (zero in baseline mode).
    pub lookup_latency: SimDuration,
    /// Views this job materialized.
    pub views_built: Vec<Sig128>,
    /// Views this job reused.
    pub views_reused: Vec<Sig128>,
    /// Optimizer overhead report.
    pub optimizer: OptimizerReport,
    /// Order-insensitive checksum of every output (correctness checks).
    pub output_checksums: HashMap<String, u64>,
    /// Output row counts.
    pub output_rows: HashMap<String, usize>,
    /// Faults absorbed and degradations taken while running this job.
    pub faults: JobFaultReport,
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// string literal or a formatted `String` covers practically every panic in
/// this workspace).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// Why one attempt at a job did not produce a report.
pub(crate) enum AttemptFailure {
    /// The fault injector killed the builder mid-materialization; the
    /// driver restarts the job (its build lock stays held and is
    /// re-acquired by the restart, or lapses at its mined expiry).
    BuilderCrash {
        /// Simulated latency the dead attempt had already accumulated.
        wasted_latency: SimDuration,
    },
    /// A real error: propagated to the caller.
    Fatal(ScopeError),
}

/// Typed result of [`CloudViews::purge_expired`] (replaces the old
/// `(usize, u64)` tuple).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PurgeReport {
    /// Views dropped from the metadata service.
    pub views_purged: usize,
    /// Annotation entries (with their inverted-index postings) swept
    /// because their views died and their GC horizon lapsed.
    pub annotations_purged: usize,
    /// Bytes of expired view files reclaimed from storage.
    pub bytes_reclaimed: u64,
}

/// Cached telemetry handles for the per-job path, resolved once at service
/// construction so each job pays a handful of atomic operations.
pub(crate) struct RuntimeMetrics {
    jobs: Counter,
    jobs_reuse_hit: Counter,
    jobs_build: Counter,
    jobs_baseline_fallback: Counter,
    jobs_failed: Counter,
    job_restarts: Counter,
    views_built: Counter,
    views_reused: Counter,
    job_latency: Histogram,
    job_cpu: Histogram,
    job_wall: Histogram,
    stages: Counter,
    vertices: Counter,
    stage_vertices: Histogram,
    token_occupancy: Histogram,
    template_hits: Counter,
    template_misses: Counter,
    pub(crate) pipeline_steals: Counter,
    pub(crate) pipeline_admission_waits: Counter,
    pub(crate) sharing: SharingMetrics,
}

/// Pre-resolved handles for the in-flight sharing coordinator
/// (`cloudviews::sharing`): one counter per lifecycle edge plus the
/// follower-wait and size histograms. All are drained centrally by
/// [`CloudViews::run_windowed`] after each window, never from inside the
/// worker pool.
pub(crate) struct SharingMetrics {
    pub(crate) windows: Counter,
    pub(crate) window_jobs: Counter,
    pub(crate) shared_subgraphs: Counter,
    pub(crate) published: Counter,
    pub(crate) aborts: Counter,
    pub(crate) follower_reuses: Counter,
    pub(crate) follower_fallbacks: Counter,
    pub(crate) wait: Histogram,
    pub(crate) window_size: Histogram,
    pub(crate) group_size: Histogram,
}

impl RuntimeMetrics {
    fn new(sink: &Telemetry) -> RuntimeMetrics {
        let m = &sink.metrics;
        RuntimeMetrics {
            jobs: m.counter("cv_jobs_total"),
            jobs_reuse_hit: m.counter("cv_jobs_reuse_hit_total"),
            jobs_build: m.counter("cv_jobs_build_total"),
            jobs_baseline_fallback: m.counter("cv_jobs_baseline_fallback_total"),
            jobs_failed: m.counter("cv_jobs_failed_total"),
            job_restarts: m.counter("cv_jobs_restarts_total"),
            views_built: m.counter("cv_views_built_total"),
            views_reused: m.counter("cv_views_reused_total"),
            job_latency: m.histogram("cv_job_latency_sim_micros", MetricUnit::SimMicros),
            job_cpu: m.histogram("cv_job_cpu_sim_micros", MetricUnit::SimMicros),
            job_wall: m.histogram("cv_job_wall_micros", MetricUnit::WallMicros),
            stages: m.counter("cv_sim_stages_total"),
            vertices: m.counter("cv_sim_vertices_total"),
            stage_vertices: m.histogram("cv_sim_stage_vertices", MetricUnit::Count),
            token_occupancy: m.histogram("cv_sim_token_occupancy_pct", MetricUnit::Count),
            template_hits: m.counter("cv_template_cache_hits_total"),
            template_misses: m.counter("cv_template_cache_misses_total"),
            pipeline_steals: m.counter("cv_pipeline_steals_total"),
            pipeline_admission_waits: m.counter("cv_pipeline_admission_waits_total"),
            sharing: SharingMetrics {
                windows: m.counter("cv_sharing_windows_total"),
                window_jobs: m.counter("cv_sharing_window_jobs_total"),
                shared_subgraphs: m.counter("cv_sharing_shared_subgraphs_total"),
                published: m.counter("cv_sharing_producer_publishes_total"),
                aborts: m.counter("cv_sharing_producer_aborts_total"),
                follower_reuses: m.counter("cv_sharing_follower_reuses_total"),
                follower_fallbacks: m.counter("cv_sharing_follower_fallbacks_total"),
                wait: m.histogram("cv_sharing_wait_sim_micros", MetricUnit::SimMicros),
                window_size: m.histogram("cv_sharing_window_size_jobs", MetricUnit::Count),
                group_size: m.histogram("cv_sharing_group_size_jobs", MetricUnit::Count),
            },
        }
    }
}

/// The assembled CloudViews service: storage + metadata + repository +
/// clock + engine configuration. Construct one with [`CloudViewsBuilder`]
/// (or [`CloudViews::builder`]).
pub struct CloudViews {
    /// Shared storage manager (datasets + view files).
    pub storage: Arc<StorageManager>,
    /// The metadata service.
    pub metadata: Arc<MetadataService>,
    /// The workload repository (feedback loop).
    pub repo: Arc<WorkloadRepository>,
    /// Shared simulated clock.
    pub clock: Arc<SimClock>,
    /// Cost model used for execution accounting.
    pub cost: CostModel,
    /// Cluster/VC execution parameters.
    pub cluster: ClusterConfig,
    /// Per-job cap on materialized views (job submission parameter).
    pub max_materialize_per_job: usize,
    /// Publish views at stage completion (true) or job completion (false).
    pub early_materialization: bool,
    /// Tier-2 subsumption matching in the lookup/optimize cascade (on by
    /// default; tier-1 exact matching is unaffected).
    pub subsumption: bool,
    /// Record runs into the repository.
    pub record_runs: bool,
    /// How to absorb failures (see DESIGN.md "Fault tolerance & degradation").
    pub degradation: DegradationPolicy,
    /// Installed fault injector, if any (shared with the metadata service).
    pub faults: Option<Arc<FaultInjector>>,
    /// Telemetry sink shared by every instrumented component.
    pub telemetry: Arc<Telemetry>,
    /// Compile-path template cache: recurring jobs whose normalized
    /// signatures match a cached skeleton skip subgraph enumeration and
    /// property derivation, re-deriving only the precise hashes.
    pub templates: Arc<TemplateCache>,
    /// The resident incremental analyzer, when one was installed via
    /// [`CloudViewsBuilder::incremental_analyzer`]. The pipeline's record
    /// stage feeds it each record as it lands; [`CloudViews::analyze_round`]
    /// re-selects from its aggregates.
    pub analyzer: Option<Arc<IncrementalAnalyzer>>,
    /// The durable store, when constructed via
    /// [`CloudViewsBuilder::durable`]: every metadata mutation, repository
    /// append, and view publish is logged before it is acknowledged, and
    /// [`CloudViews::snapshot_now`] / the post-job snapshot check compact
    /// the log. `None` keeps the service purely in-memory.
    pub durable: Option<Arc<DurableStore>>,
    /// Pre-resolved metric handles for the per-job path.
    pub(crate) metrics: RuntimeMetrics,
}

/// Fluent construction for [`CloudViews`]: every collaborating service
/// (clock, fault plan, degradation policy, telemetry sink) is wired up
/// before the service exists, so no caller can observe a half-configured
/// runtime.
///
/// ```
/// use std::sync::Arc;
/// use cloudviews::CloudViewsBuilder;
/// use scope_engine::storage::StorageManager;
///
/// let cv = CloudViewsBuilder::new(Arc::new(StorageManager::new()))
///     .max_materialize_per_job(2)
///     .build();
/// assert!(cv.telemetry.is_enabled());
/// ```
pub struct CloudViewsBuilder {
    storage: Arc<StorageManager>,
    clock: Arc<SimClock>,
    metadata_threads: usize,
    metadata_shards: usize,
    cost: CostModel,
    cluster: ClusterConfig,
    max_materialize_per_job: usize,
    early_materialization: bool,
    subsumption: bool,
    record_runs: bool,
    degradation: DegradationPolicy,
    fault_plan: Option<FaultPlan>,
    telemetry: Arc<Telemetry>,
    templates: Arc<TemplateCache>,
    incremental_analyzer: Option<AnalyzerConfig>,
    analyzer_workers: usize,
    durable: Option<PathBuf>,
    snapshot_threshold: u64,
}

impl CloudViewsBuilder {
    /// A builder with the default configuration: fresh clock, 5 metadata
    /// service threads, early materialization on, telemetry enabled.
    pub fn new(storage: Arc<StorageManager>) -> CloudViewsBuilder {
        CloudViewsBuilder {
            storage,
            clock: Arc::new(SimClock::new()),
            metadata_threads: 5,
            metadata_shards: 16,
            cost: CostModel::default(),
            cluster: ClusterConfig::default(),
            max_materialize_per_job: 1,
            early_materialization: true,
            subsumption: true,
            record_runs: true,
            degradation: DegradationPolicy::default(),
            fault_plan: None,
            telemetry: Telemetry::new(),
            templates: Arc::new(TemplateCache::new()),
            incremental_analyzer: None,
            analyzer_workers: 1,
            durable: None,
            snapshot_threshold: crate::store::DEFAULT_SNAPSHOT_THRESHOLD,
        }
    }

    /// Persists service state under `path` (DESIGN.md §16): metadata
    /// mutations and analyzer-feeding repository appends are logged before
    /// they are acknowledged, published view files are mirrored to a
    /// segment store, and a cold start from the same path replays
    /// snapshot + WAL tail into byte-identical in-memory state (see
    /// `MetadataService::fingerprint` / `AnalyzerState::fingerprint`).
    pub fn durable(mut self, path: impl Into<PathBuf>) -> Self {
        self.durable = Some(path.into());
        self
    }

    /// WAL size (bytes) past which the post-job check compacts the log
    /// into a snapshot. Only meaningful with [`CloudViewsBuilder::durable`].
    pub fn snapshot_threshold(mut self, bytes: u64) -> Self {
        self.snapshot_threshold = bytes;
        self
    }

    /// Shares an existing simulated clock (e.g. across services).
    pub fn clock(mut self, clock: Arc<SimClock>) -> Self {
        self.clock = clock;
        self
    }

    /// Metadata service thread count (affects modeled lookup latency).
    /// `build` clamps `0` to 1; `try_build` rejects it with a typed error.
    pub fn metadata_threads(mut self, threads: usize) -> Self {
        self.metadata_threads = threads;
        self
    }

    /// Metadata service shard count (clamped to a power of two in
    /// `1..=1024`). `1` gives the pre-shard global-lock layout, useful as
    /// a contention baseline.
    pub fn metadata_shards(mut self, shards: usize) -> Self {
        self.metadata_shards = shards;
        self
    }

    /// Cost model used for execution accounting.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Cluster/VC execution parameters.
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Per-job cap on materialized views.
    pub fn max_materialize_per_job(mut self, max: usize) -> Self {
        self.max_materialize_per_job = max;
        self
    }

    /// Publish views at stage completion (true) or job completion (false).
    pub fn early_materialization(mut self, early: bool) -> Self {
        self.early_materialization = early;
        self
    }

    /// Record runs into the workload repository.
    pub fn record_runs(mut self, record: bool) -> Self {
        self.record_runs = record;
        self
    }

    /// Toggle tier-2 subsumption matching (exact-only ablation when off).
    pub fn subsumption(mut self, enabled: bool) -> Self {
        self.subsumption = enabled;
        self
    }

    /// How to absorb failures.
    pub fn degradation(mut self, policy: DegradationPolicy) -> Self {
        self.degradation = policy;
        self
    }

    /// Installs a fault plan at construction; read the injected-fault
    /// ledger afterwards via [`CloudViews::faults`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Shares a telemetry sink (e.g. one registry across services, or a
    /// disabled sink for overhead baselines).
    pub fn telemetry(mut self, sink: Arc<Telemetry>) -> Self {
        self.telemetry = sink;
        self
    }

    /// Shares a compile-path template cache (e.g. one cache across service
    /// instances, or a pre-warmed cache in benchmarks).
    pub fn template_cache(mut self, templates: Arc<TemplateCache>) -> Self {
        self.templates = templates;
        self
    }

    /// Installs a resident incremental analyzer selecting under `config`.
    /// The pipeline's record stage then feeds it every record as it lands,
    /// and [`CloudViews::analyze_round`] re-selects from the maintained
    /// aggregates instead of replaying the repository.
    pub fn incremental_analyzer(mut self, config: AnalyzerConfig) -> Self {
        self.incremental_analyzer = Some(config);
        self
    }

    /// Worker threads for the analyzer's parallel overlap fold (`0` = one
    /// per available core; the fold runs inline when one worker suffices).
    pub fn analyzer_workers(mut self, workers: usize) -> Self {
        self.analyzer_workers = workers;
        self
    }

    /// Like [`CloudViewsBuilder::build`], but rejects configurations the
    /// infallible path silently corrects: `metadata_threads == 0` would
    /// make the modeled lookup latency divide by zero (the service clamps
    /// it, but a caller setting 0 explicitly almost certainly miscomputed
    /// a thread count and should hear about it).
    pub fn try_build(self) -> Result<CloudViews> {
        if self.metadata_threads == 0 {
            return Err(ScopeError::Metadata(
                "metadata_threads must be >= 1 (the modeled lookup latency \
                 divides the service term by the thread count)"
                    .into(),
            ));
        }
        self.build_inner()
    }

    /// Assembles the service: builds the metadata service on the shared
    /// clock and wires the fault injector and telemetry sink into every
    /// component.
    ///
    /// Panics when [`CloudViewsBuilder::durable`] was set and opening or
    /// replaying the on-disk state fails; use
    /// [`CloudViewsBuilder::try_build`] to handle that as a `Result`.
    pub fn build(self) -> CloudViews {
        self.build_inner()
            .expect("CloudViews durable-state recovery failed")
    }

    fn build_inner(self) -> Result<CloudViews> {
        let metadata = Arc::new(MetadataService::with_shards(
            Arc::clone(&self.clock),
            self.metadata_threads,
            self.metadata_shards,
        ));
        metadata.set_telemetry(Some(Arc::clone(&self.telemetry)));
        self.storage
            .set_telemetry(Some(Arc::clone(&self.telemetry)));
        let faults = self.fault_plan.map(FaultInjector::new);
        if let Some(inj) = &faults {
            metadata.set_fault_injector(Some(Arc::clone(inj)));
        }
        let metrics = RuntimeMetrics::new(&self.telemetry);
        let analyzer = self
            .incremental_analyzer
            .map(|cfg| Arc::new(IncrementalAnalyzer::new(cfg, self.analyzer_workers)));

        let (repo, durable) = match &self.durable {
            Some(path) => {
                let (store, recovered) = DurableStore::open(path, self.snapshot_threshold)
                    .map_err(|e| ScopeError::Storage(format!("durable store open: {e}")))?;
                fn corrupt(what: &'static str) -> impl Fn(CodecError) -> ScopeError {
                    move |e| ScopeError::Storage(format!("durable snapshot {what}: {}", e.0))
                }
                // Replay order: snapshot first (state as of `wal.N`), then
                // the WAL tail, then the bulk stores. The clock advances to
                // the latest *pinned* instant the log proves happened —
                // never a lease expiry, which would instantly lapse every
                // recovered lock.
                let mut max_t = SimTime::ZERO;
                if let Some(snap) = &recovered.snapshot {
                    let mut d = Dec::new(snap);
                    max_t = max_t.max(get_time(&mut d).map_err(corrupt("clock"))?);
                    metadata
                        .import_state(&mut d)
                        .map_err(corrupt("metadata state"))?;
                    let prev = get_sigs(&mut d).map_err(corrupt("selection baseline"))?;
                    d.finish().map_err(corrupt("trailing bytes"))?;
                    if let Some(a) = &analyzer {
                        a.set_prev_selected(prev);
                    }
                }
                for ev in &recovered.events {
                    match ev {
                        WalEvent::LoadAnnotations { now, .. } => max_t = max_t.max(*now),
                        WalEvent::LockGranted { at, .. } => max_t = max_t.max(*at),
                        WalEvent::Register(req) => max_t = max_t.max(req.available_at),
                        WalEvent::PurgeShard { now, .. } | WalEvent::Unregister { now, .. } => {
                            max_t = max_t.max(*now)
                        }
                    }
                    metadata.apply_event(ev);
                }
                for r in &recovered.records {
                    max_t = max_t.max(r.submitted_at + r.latency);
                }
                let repo = Arc::new(WorkloadRepository::from_records(recovered.records));
                for vf in recovered.views {
                    max_t = max_t.max(vf.meta.created_at);
                    self.storage.publish_view(vf)?;
                }
                // The analyzer's aggregates are a deterministic fold over
                // the record stream (bit-identical whatever the thread
                // count), so recovery re-folds the recovered repository
                // instead of snapshotting aggregates.
                if let Some(a) = &analyzer {
                    a.absorb(&repo);
                }
                self.clock.advance_to(max_t);
                // Hooks attach *last*: everything above is replay and must
                // not be re-logged.
                metadata.set_durable(Some(Arc::clone(&store)));
                self.storage
                    .set_event_sink(Some(Arc::clone(&store) as Arc<dyn StorageEventSink>));
                let sink_store = Arc::clone(&store);
                repo.set_record_sink(Some(Arc::new(move |seq, rec| {
                    sink_store.record_job(seq, rec)
                })));
                (repo, Some(store))
            }
            None => (Arc::new(WorkloadRepository::new()), None),
        };

        Ok(CloudViews {
            storage: self.storage,
            metadata,
            repo,
            clock: self.clock,
            cost: self.cost,
            cluster: self.cluster,
            max_materialize_per_job: self.max_materialize_per_job,
            early_materialization: self.early_materialization,
            subsumption: self.subsumption,
            record_runs: self.record_runs,
            degradation: self.degradation,
            faults,
            telemetry: self.telemetry,
            templates: self.templates,
            analyzer,
            durable,
            metrics,
        })
    }
}

impl CloudViews {
    /// Starts a [`CloudViewsBuilder`] over the given storage.
    pub fn builder(storage: Arc<StorageManager>) -> CloudViewsBuilder {
        CloudViewsBuilder::new(storage)
    }

    /// Serializes the durable snapshot payload: the pinned clock, the
    /// metadata catalog, and the analyzer's selection baseline. The layout
    /// is owned here (the store treats it as opaque bytes) and decoded by
    /// the builder's recovery path.
    fn snapshot_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        put_time(&mut e, self.clock.now());
        e.buf.extend_from_slice(&self.metadata.export_state());
        let prev = self
            .analyzer
            .as_ref()
            .map(|a| a.prev_selected())
            .unwrap_or_default();
        put_sigs(&mut e, &prev);
        e.buf
    }

    /// Compacts the durable WAL into a snapshot if it has outgrown the
    /// configured threshold (called after every job). Returns `true` when
    /// a snapshot was written; always `false` without durability.
    pub fn maybe_snapshot(&self) -> bool {
        match &self.durable {
            Some(store) => store
                .maybe_snapshot(|| self.snapshot_payload())
                .expect("scope-store: snapshot failed"),
            None => false,
        }
    }

    /// Unconditionally snapshots and compacts the durable WAL (e.g. before
    /// a planned shutdown). Returns `false` without durability or when
    /// another snapshot is already in flight.
    pub fn snapshot_now(&self) -> bool {
        match &self.durable {
            Some(store) => store
                .snapshot_now(|| self.snapshot_payload())
                .expect("scope-store: snapshot failed"),
            None => false,
        }
    }

    /// Installs a fault plan: builds the injector and shares it with the
    /// metadata service. Returns the injector so callers can read the
    /// injected-fault ledger afterwards.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) -> Arc<FaultInjector> {
        let injector = FaultInjector::new(plan);
        self.metadata
            .set_fault_injector(Some(Arc::clone(&injector)));
        self.faults = Some(Arc::clone(&injector));
        injector
    }

    /// Runs the analyzer over everything recorded so far. Phase timings and
    /// candidate/selected counts land in the `cv_analyzer_*` series.
    pub fn analyze(&self, config: &AnalyzerConfig) -> Result<AnalysisOutcome> {
        let span = self
            .telemetry
            .tracer
            .root("analysis", None, self.clock.now());
        let outcome = run_analysis(&self.repo.records(), config)?;
        let m = &self.telemetry.metrics;
        m.counter("cv_analyzer_runs_total").inc();
        m.counter("cv_analyzer_jobs_analyzed_total")
            .add(outcome.jobs_analyzed as u64);
        m.counter("cv_analyzer_candidates_total")
            .add(outcome.groups.len() as u64);
        m.counter("cv_analyzer_selected_total")
            .add(outcome.selected.len() as u64);
        if self.telemetry.is_enabled() {
            let p = &outcome.phase_times;
            for (name, d) in [
                ("cv_analyzer_filter_wall_micros", p.filter),
                ("cv_analyzer_mining_wall_micros", p.mining),
                ("cv_analyzer_selection_wall_micros", p.selection),
                ("cv_analyzer_design_wall_micros", p.design),
                ("cv_analyzer_total_wall_micros", outcome.wall_time),
            ] {
                m.histogram(name, MetricUnit::WallMicros)
                    .record(d.as_micros() as u64);
            }
        }
        self.telemetry.tracer.finish(span, self.clock.now());
        Ok(outcome)
    }

    /// One incremental analyzer round: absorbs any repository records not
    /// yet ingested into the resident [`IncrementalAnalyzer`] and
    /// re-selects from its aggregates — the cost is the record delta plus
    /// selection, not the repository's age. Requires
    /// [`CloudViewsBuilder::incremental_analyzer`]; round deltas land in
    /// the `cv_analyzer_round_*` series and [`IncrementalAnalyzer::last_delta`].
    pub fn analyze_round(&self) -> Result<AnalysisOutcome> {
        let analyzer = self.analyzer.as_ref().ok_or_else(|| {
            ScopeError::Metadata(
                "no incremental analyzer installed \
                 (CloudViewsBuilder::incremental_analyzer)"
                    .into(),
            )
        })?;
        let span = self
            .telemetry
            .tracer
            .root("analyzer_round", None, self.clock.now());
        let outcome = analyzer.round(&self.repo)?;
        let m = &self.telemetry.metrics;
        m.counter("cv_analyzer_rounds_total").inc();
        m.counter("cv_analyzer_candidates_total")
            .add(outcome.groups.len() as u64);
        m.counter("cv_analyzer_selected_total")
            .add(outcome.selected.len() as u64);
        if let Some(delta) = analyzer.last_delta() {
            m.counter("cv_analyzer_round_ingested_jobs_total")
                .add(delta.ingested_jobs as u64);
            m.counter("cv_analyzer_round_newly_selected_total")
                .add(delta.newly_selected.len() as u64);
            m.counter("cv_analyzer_round_dropped_total")
                .add(delta.dropped.len() as u64);
            if self.telemetry.is_enabled() {
                m.histogram(
                    "cv_analyzer_round_ingest_wall_micros",
                    MetricUnit::WallMicros,
                )
                .record(delta.ingest_wall.as_micros() as u64);
                m.histogram(
                    "cv_analyzer_round_select_wall_micros",
                    MetricUnit::WallMicros,
                )
                .record(delta.select_wall.as_micros() as u64);
            }
        }
        self.telemetry.tracer.finish(span, self.clock.now());
        Ok(outcome)
    }

    /// Installs an analysis outcome into the metadata service.
    pub fn install_analysis(&self, outcome: &AnalysisOutcome) {
        self.metadata.load_annotations(&outcome.selected);
    }

    /// Runs one job starting at simulated time `start`.
    ///
    /// The job is retried when its builder crashes mid-materialization
    /// (bounded by [`DegradationPolicy::max_restarts`], modeling the job
    /// service resubmitting a failed job); all other injected faults are
    /// absorbed *within* an attempt by the degradation policy.
    pub fn run_job_at(
        &self,
        spec: &JobSpec,
        mode: RunMode,
        start: SimTime,
    ) -> Result<JobRunReport> {
        self.run_job_shared(spec, mode, start, None)
    }

    /// [`CloudViews::run_job_at`] with an optional sharing-window
    /// coordinator and this job's slot in it — the per-job entry point used
    /// by [`CloudViews::run_windowed`]'s pool.
    pub(crate) fn run_job_shared(
        &self,
        spec: &JobSpec,
        mode: RunMode,
        start: SimTime,
        window: Option<(&WindowContext, usize)>,
    ) -> Result<JobRunReport> {
        let root = self.telemetry.tracer.root("job", Some(spec.id), start);
        let wall_start = std::time::Instant::now();
        let result = self.drive_attempts(spec, mode, start, &root, window);
        self.finish_job(root, start, wall_start, &result);
        result
    }

    /// The pre-resolved `cv_sharing_*` handles (for the window driver).
    pub(crate) fn sharing_metrics(&self) -> &SharingMetrics {
        &self.metrics.sharing
    }

    /// Compiles the job once through the template cache, then drives
    /// attempts through the stage pipeline until one succeeds, the builder
    /// crash budget is exhausted, or a fatal error surfaces.
    fn drive_attempts(
        &self,
        spec: &JobSpec,
        mode: RunMode,
        start: SimTime,
        root: &ActiveSpan,
        window: Option<(&WindowContext, usize)>,
    ) -> Result<JobRunReport> {
        // One signature/enumeration compile per job — shared by the lookup,
        // optimize, and record stages across every restart.
        let compiled = self.templates.compile(&spec.graph)?;
        if compiled.template_hit {
            self.metrics.template_hits.inc();
        } else {
            self.metrics.template_misses.inc();
        }
        let mut faults = JobFaultReport::default();
        let mut restarts = 0u32;
        loop {
            match pipeline::run_attempt(
                self,
                spec,
                mode,
                start,
                &compiled,
                &mut faults,
                root,
                window,
            ) {
                Ok(mut report) => {
                    report.latency += faults.degraded_latency;
                    report.faults = faults;
                    self.clock.advance_to(start + report.latency);
                    return Ok(report);
                }
                Err(AttemptFailure::BuilderCrash { wasted_latency }) => {
                    faults.builder_crashes += 1;
                    faults.degraded_latency += wasted_latency;
                    self.metrics.job_restarts.inc();
                    restarts += 1;
                    if restarts > self.degradation.max_restarts {
                        return Err(ScopeError::Execution(format!(
                            "job {} failed: builder crashed {restarts} times \
                             (max_restarts={})",
                            spec.id, self.degradation.max_restarts
                        )));
                    }
                }
                Err(AttemptFailure::Fatal(e)) => return Err(e),
            }
        }
    }

    /// Closes the job's root span and updates the per-job outcome counters.
    /// The reuse/build/fallback counters are defined to match the returned
    /// [`JobRunReport`]s exactly (asserted in `tests/telemetry.rs`).
    fn finish_job(
        &self,
        root: ActiveSpan,
        start: SimTime,
        wall_start: std::time::Instant,
        result: &Result<JobRunReport>,
    ) {
        let m = &self.metrics;
        match result {
            Ok(report) => {
                m.jobs.inc();
                if !report.views_reused.is_empty() {
                    m.jobs_reuse_hit.inc();
                }
                if !report.views_built.is_empty() {
                    m.jobs_build.inc();
                }
                if report.faults.fell_back_to_baseline {
                    m.jobs_baseline_fallback.inc();
                }
                m.views_built.add(report.views_built.len() as u64);
                m.views_reused.add(report.views_reused.len() as u64);
                let outcome = if !report.views_reused.is_empty() {
                    "reuse"
                } else if !report.views_built.is_empty() {
                    "build"
                } else if report.faults.fell_back_to_baseline {
                    "baseline_fallback"
                } else {
                    "baseline"
                };
                if self.telemetry.is_enabled() {
                    m.job_latency.record(report.latency.micros());
                    m.job_cpu.record(report.cpu_time.micros());
                    m.job_wall.record(wall_start.elapsed().as_micros() as u64);
                }
                self.telemetry
                    .tracer
                    .finish_with(root, start + report.latency, Some(outcome));
            }
            Err(_) => {
                m.jobs_failed.inc();
                self.telemetry
                    .tracer
                    .finish_with(root, self.clock.now(), Some("failed"));
            }
        }
        // Durable mode: compact the WAL once it outgrows the threshold.
        // Cheap when it hasn't (one tail-size read), a no-op in-memory.
        self.maybe_snapshot();
    }

    /// The per-job cascade lookup with bounded retry, pinned to the job's
    /// submission time `at`. A timed-out call still pays the modeled lookup
    /// latency, plus backoff before each retry; exhausted retries degrade to
    /// the baseline plan (no annotations, no tier-2 candidates).
    pub(crate) fn lookup_with_retry(
        &self,
        job: JobId,
        tags: &[Symbol],
        probes: &[scope_signature::SubsumeDescriptor],
        at: SimTime,
        faults: &mut JobFaultReport,
    ) -> (
        Vec<scope_engine::optimizer::Annotation>,
        Vec<scope_engine::optimizer::SubsumedView>,
        SimDuration,
    ) {
        let mut latency = SimDuration::ZERO;
        let req = LookupRequest::new(job, tags, at).with_probes(probes.to_vec());
        for attempt in 0..=self.degradation.lookup_retries {
            match self.metadata.lookup(&req) {
                Ok(resp) => return (resp.annotations, resp.tier2, latency + resp.latency),
                Err(_) => {
                    faults.lookup_faults += 1;
                    latency += self.metadata.lookup_latency();
                    if attempt < self.degradation.lookup_retries {
                        faults.lookup_retries += 1;
                        // Backoff is charged once, via degraded_latency,
                        // when the final report is assembled.
                        faults.degraded_latency += self.degradation.retry_backoff;
                    }
                }
            }
        }
        faults.fell_back_to_baseline = true;
        (Vec::new(), Vec::new(), latency)
    }

    /// Records per-stage vertex counts and token occupancy from one job's
    /// simulation (the paper's token model: occupancy is the fraction of
    /// the VC's token-seconds the job's CPU time actually used).
    pub(crate) fn record_sim_metrics(&self, sim: &SimOutcome) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let m = &self.metrics;
        m.stages.add(sim.stages.len() as u64);
        m.vertices.add(sim.vertices as u64);
        for stage in &sim.stages {
            m.stage_vertices.record(stage.dop as u64);
        }
        let capacity = sim
            .latency
            .micros()
            .saturating_mul(self.cluster.tokens.max(1) as u64);
        if let Some(pct) = sim
            .cpu_time
            .micros()
            .saturating_mul(100)
            .checked_div(capacity)
        {
            m.token_occupancy.record(pct.min(100));
        }
    }

    /// Runs jobs back-to-back (each starts when the previous finishes),
    /// like the paper's sequential production experiment.
    pub fn run_sequence(&self, specs: &[JobSpec], mode: RunMode) -> Result<Vec<JobRunReport>> {
        let mut reports = Vec::with_capacity(specs.len());
        let mut now = self.clock.now();
        for spec in specs {
            let report = self.run_job_at(spec, mode, now)?;
            now = report.started_at + report.latency;
            reports.push(report);
        }
        Ok(reports)
    }

    /// Runs jobs all submitted at the same simulated time — the
    /// concurrent-arrival scenario of Sections 6.4/6.5. Returns one
    /// `Result` per job, in submission order: a job whose worker panics (or
    /// errors) yields its own `Err` without aborting the driver or the
    /// other jobs.
    ///
    /// This is [`CloudViews::run_many`] with one worker per job and no
    /// admission bound (maximum contention on the build/use locks).
    pub fn run_concurrent_results(
        &self,
        specs: Vec<JobSpec>,
        mode: RunMode,
    ) -> Vec<Result<JobRunReport>> {
        let workers = specs.len().max(1);
        self.run_many(
            specs,
            mode,
            PipelineOptions {
                workers,
                max_in_flight: 0,
                janitor: false,
            },
        )
    }

    /// Like [`CloudViews::run_concurrent_results`], collected into one
    /// `Result`: the first failing job's error is returned, but only after
    /// every job has finished (a pathological job cannot abort the driver
    /// mid-flight).
    pub fn run_concurrent(&self, specs: Vec<JobSpec>, mode: RunMode) -> Result<Vec<JobRunReport>> {
        self.run_concurrent_results(specs, mode)
            .into_iter()
            .collect()
    }

    /// Purges expired views from both the metadata service and storage
    /// (a full sweep of every metadata shard; the incremental alternative
    /// is the pipeline janitor, `PipelineOptions::janitor`).
    pub fn purge_expired(&self) -> PurgeReport {
        let sweep = self.metadata.purge_expired();
        let bytes_reclaimed = self.storage.purge_expired(self.clock.now());
        PurgeReport {
            views_purged: sweep.views_purged,
            annotations_purged: sweep.annotations_purged,
            bytes_reclaimed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{AnalyzerConfig, SelectionPolicy};
    use scope_workload::dists::LogNormal;
    use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

    fn setup() -> (CloudViews, RecurringWorkload) {
        let workload = RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![ClusterSpec::tiny("rt")],
            seed: 99,
            stream_rows: LogNormal::new(5.8, 0.5, 100.0, 1_200.0),
        })
        .unwrap();
        let storage = Arc::new(StorageManager::new());
        let cv = CloudViews::builder(storage).build();
        (cv, workload)
    }

    fn analyzer_cfg() -> AnalyzerConfig {
        AnalyzerConfig {
            policy: SelectionPolicy::TopKUtility { k: 5 },
            ..Default::default()
        }
    }

    /// The full paper loop: baseline instance → analyze → enabled instance.
    #[test]
    fn end_to_end_reuse_cycle_preserves_outputs_and_saves_cpu() {
        let (cv, workload) = setup();

        // Instance 0: baseline, fills the repository.
        workload
            .register_instance_data(0, 0, &cv.storage, 1.0)
            .unwrap();
        let day0 = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&day0, RunMode::Baseline).unwrap();

        // Analyze and install.
        let analysis = cv.analyze(&analyzer_cfg()).unwrap();
        assert!(!analysis.selected.is_empty());
        cv.install_analysis(&analysis);

        // Instance 1 (new data, new GUIDs): run twice, baseline vs enabled.
        workload
            .register_instance_data(0, 1, &cv.storage, 1.0)
            .unwrap();
        let day1 = workload.jobs_for_instance(0, 1).unwrap();
        let baseline: Vec<_> = cv.run_sequence(&day1, RunMode::Baseline).unwrap();
        let enabled: Vec<_> = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();

        // Correctness: identical outputs job by job.
        let mut any_reuse = false;
        for (b, e) in baseline.iter().zip(&enabled) {
            assert_eq!(
                b.output_checksums, e.output_checksums,
                "job {} corrupted",
                b.job
            );
            any_reuse |= !e.views_reused.is_empty();
        }
        let built: usize = enabled.iter().map(|r| r.views_built.len()).sum();
        assert!(built > 0, "no views were materialized");
        assert!(any_reuse, "no views were reused");

        // Performance: total CPU with CloudViews below baseline.
        let cpu_base: SimDuration = baseline.iter().map(|r| r.cpu_time).sum();
        let cpu_cv: SimDuration = enabled.iter().map(|r| r.cpu_time).sum();
        assert!(
            cpu_cv < cpu_base,
            "CloudViews must save CPU: {cpu_cv} vs {cpu_base}"
        );
    }

    #[test]
    fn baseline_mode_never_touches_metadata() {
        let (cv, workload) = setup();
        workload
            .register_instance_data(0, 0, &cv.storage, 1.0)
            .unwrap();
        let jobs = workload.jobs_for_instance(0, 0).unwrap();
        let r = cv
            .run_job_at(&jobs[0], RunMode::Baseline, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.lookup_latency, SimDuration::ZERO);
        assert_eq!(cv.metadata.stats().lookups, 0);
        assert!(r.views_built.is_empty() && r.views_reused.is_empty());
    }

    #[test]
    fn one_lookup_per_job() {
        let (cv, workload) = setup();
        workload
            .register_instance_data(0, 0, &cv.storage, 1.0)
            .unwrap();
        let jobs = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&jobs[..3], RunMode::CloudViews).unwrap();
        assert_eq!(cv.metadata.stats().lookups, 3);
    }

    #[test]
    fn build_build_sync_under_concurrency() {
        let (cv, workload) = setup();
        workload
            .register_instance_data(0, 0, &cv.storage, 1.0)
            .unwrap();
        let day0 = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&day0, RunMode::Baseline).unwrap();
        let analysis = cv.analyze(&analyzer_cfg()).unwrap();
        cv.install_analysis(&analysis);

        workload
            .register_instance_data(0, 1, &cv.storage, 1.0)
            .unwrap();
        let day1 = workload.jobs_for_instance(0, 1).unwrap();
        let reports = cv.run_concurrent(day1, RunMode::CloudViews).unwrap();

        // No view may be built by two jobs.
        let mut built: Vec<Sig128> = reports
            .iter()
            .flat_map(|r| r.views_built.iter().copied())
            .collect();
        let before = built.len();
        built.sort_unstable();
        built.dedup();
        assert_eq!(built.len(), before, "same view built twice");
        assert!(before > 0);
    }

    #[test]
    fn early_materialization_beats_job_end_publication() {
        let (cv, workload) = setup();
        workload
            .register_instance_data(0, 0, &cv.storage, 1.0)
            .unwrap();
        let day0 = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&day0, RunMode::Baseline).unwrap();
        let analysis = cv.analyze(&analyzer_cfg()).unwrap();
        cv.install_analysis(&analysis);

        workload
            .register_instance_data(0, 1, &cv.storage, 1.0)
            .unwrap();
        let day1 = workload.jobs_for_instance(0, 1).unwrap();
        // Find a job that materializes a view and check availability time
        // precedes its completion.
        let reports = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
        let builder = reports.iter().find(|r| !r.views_built.is_empty()).unwrap();
        let sig = builder.views_built[0];
        // The metadata service has it with created_at before job end.
        assert!(cv.metadata.view_producer(sig).is_some());
    }

    #[test]
    fn purge_reclaims_after_expiry() {
        let (cv, workload) = setup();
        workload
            .register_instance_data(0, 0, &cv.storage, 1.0)
            .unwrap();
        let day0 = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&day0, RunMode::Baseline).unwrap();
        let analysis = cv
            .analyze(&AnalyzerConfig {
                default_ttl: SimDuration::from_secs(1),
                ..analyzer_cfg()
            })
            .unwrap();
        cv.install_analysis(&analysis);
        workload
            .register_instance_data(0, 1, &cv.storage, 1.0)
            .unwrap();
        let day1 = workload.jobs_for_instance(0, 1).unwrap();
        cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
        assert!(cv.storage.num_views() > 0);
        // Jump far into the future and purge.
        cv.clock.advance(SimDuration::from_secs(10 * 86_400));
        let report = cv.purge_expired();
        assert!(report.views_purged > 0);
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(cv.storage.num_views(), 0);
        assert_eq!(cv.metadata.num_views(), 0);
    }

    #[test]
    fn signature_change_stops_stale_reuse() {
        // After the analysis, the *workload changes* (different seed ⇒
        // different fragment parameters). Old annotations must never match,
        // so nothing is reused or materialized — the paper's "view
        // materialization stops automatically" property.
        let (cv, workload) = setup();
        workload
            .register_instance_data(0, 0, &cv.storage, 1.0)
            .unwrap();
        let day0 = workload.jobs_for_instance(0, 0).unwrap();
        cv.run_sequence(&day0, RunMode::Baseline).unwrap();
        let analysis = cv.analyze(&analyzer_cfg()).unwrap();
        cv.install_analysis(&analysis);

        let changed = RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![ClusterSpec::tiny("rt")],
            seed: 12345, // workload change
            stream_rows: LogNormal::new(5.8, 0.5, 100.0, 1_200.0),
        })
        .unwrap();
        changed
            .register_instance_data(0, 1, &cv.storage, 1.0)
            .unwrap();
        let day1 = changed.jobs_for_instance(0, 1).unwrap();
        let reports = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
        for r in &reports {
            assert!(
                r.views_built.is_empty(),
                "stale annotation triggered a build"
            );
            assert!(r.views_reused.is_empty());
        }
    }
}
