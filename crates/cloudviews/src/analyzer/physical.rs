//! View physical design (paper Section 5.3).
//!
//! "Materialized views with poor physical design end up not being used
//! because the computation savings get over-shadowed by any additional
//! repartitioning or sorting." The analyzer therefore mines the output
//! physical properties observed at each overlapping subgraph's root (they
//! are what downstream operators expect) and stores views in that design.
//! The default strategy picks the most popular property set; when there is
//! no clear winner the caller may treat each design as a separate view
//! ([`design_variants`]).

use scope_plan::PhysicalProps;

use super::overlap::OverlapGroup;

/// Picks the physical design for a view: the most popular observed output
/// property set (falling back to "no guarantees" if nothing was observed).
pub fn choose_design(group: &OverlapGroup) -> PhysicalProps {
    group
        .props_votes
        .first()
        .map(|(p, _)| (**p).clone())
        .unwrap_or_else(PhysicalProps::any)
}

/// True when one design clearly dominates (strictly more votes than every
/// other observed design).
pub fn has_clear_choice(group: &OverlapGroup) -> bool {
    match group.props_votes.as_slice() {
        [] | [_] => true,
        [first, second, ..] => first.1 > second.1,
    }
}

/// All observed designs worth materializing separately when there is no
/// clear choice ("we treat multiple physical designs of the same view as
/// different views and feed them to the view selection routine"): every
/// design tied with the most popular one.
pub fn design_variants(group: &OverlapGroup) -> Vec<PhysicalProps> {
    let Some(top) = group.props_votes.first().map(|(_, c)| *c) else {
        return vec![PhysicalProps::any()];
    };
    group
        .props_votes
        .iter()
        .filter(|(_, c)| *c == top)
        .map(|(p, _)| (**p).clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::hash::sip128;
    use scope_common::ids::{JobId, TemplateId, UserId, VcId};
    use scope_common::time::SimDuration;
    use scope_plan::OpKind;

    fn group_with_votes(votes: Vec<(PhysicalProps, usize)>) -> OverlapGroup {
        let votes = votes
            .into_iter()
            .map(|(p, c)| (std::sync::Arc::new(p), c))
            .collect();
        OverlapGroup {
            normalized: sip128(b"g"),
            sample_precise: sip128(b"p"),
            occurrences: 3,
            instances: 1,
            jobs: vec![JobId::new(1)],
            users: vec![UserId::new(1)],
            vcs: vec![VcId::new(1)],
            templates: vec![TemplateId::new(1)],
            root_kind: OpKind::Exchange,
            num_nodes: 3,
            has_user_code: false,
            input_tags: vec![],
            avg_cumulative_cpu: SimDuration::from_secs(1),
            avg_out_rows: 1,
            avg_out_bytes: 1,
            avg_job_cpu: SimDuration::from_secs(4),
            props_votes: votes,
        }
    }

    #[test]
    fn most_popular_wins() {
        let a = PhysicalProps::hashed(vec![0], 8);
        let b = PhysicalProps::hashed(vec![1], 8);
        let g = group_with_votes(vec![(a.clone(), 5), (b, 2)]);
        assert_eq!(choose_design(&g), a);
        assert!(has_clear_choice(&g));
        assert_eq!(design_variants(&g).len(), 1);
    }

    #[test]
    fn tie_produces_variants() {
        let a = PhysicalProps::hashed(vec![0], 8);
        let b = PhysicalProps::hashed(vec![1], 8);
        let g = group_with_votes(vec![(a, 3), (b, 3)]);
        assert!(!has_clear_choice(&g));
        assert_eq!(design_variants(&g).len(), 2);
    }

    #[test]
    fn no_observations_fall_back_to_any() {
        let g = group_with_votes(vec![]);
        assert_eq!(choose_design(&g), PhysicalProps::any());
        assert!(has_clear_choice(&g));
        assert_eq!(design_variants(&g), vec![PhysicalProps::any()]);
    }
}
