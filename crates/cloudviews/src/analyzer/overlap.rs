//! Overlap mining: finding the computations that repeat.
//!
//! Figure 7 step 1/2 of the paper: within the analyzed window, subgraph
//! occurrences are matched by **precise** signature (the same bytes really
//! ran twice) and then folded by **normalized** signature so one group
//! represents the recurring computation across instances. Everything the
//! selection policies, the physical-design chooser, and the reporting
//! dashboards need is aggregated here from the repository's reconciled
//! runtime statistics — never from optimizer estimates.

use std::collections::HashMap;
use std::sync::Arc;

use scope_common::hash::Sig128;
use scope_common::ids::{JobId, TemplateId, UserId, VcId};
use scope_common::intern::Symbol;
use scope_common::time::SimDuration;
use scope_engine::repo::JobRecord;
use scope_plan::{OpKind, PhysicalProps};

/// One overlapping computation, folded across recurring instances.
#[derive(Clone, Debug)]
pub struct OverlapGroup {
    /// Normalized signature identifying the computation across instances.
    pub normalized: Sig128,
    /// A recently observed precise signature (drill-down/debugging).
    pub sample_precise: Sig128,
    /// Total occurrences across all jobs and instances.
    pub occurrences: u64,
    /// Distinct precise signatures observed (≈ number of recurring
    /// instances the computation appeared in).
    pub instances: u64,
    /// Distinct jobs containing the computation.
    pub jobs: Vec<JobId>,
    /// Distinct users running it.
    pub users: Vec<UserId>,
    /// Distinct VCs running it.
    pub vcs: Vec<VcId>,
    /// Distinct templates containing it.
    pub templates: Vec<TemplateId>,
    /// Root operator kind (Figure 4a).
    pub root_kind: OpKind,
    /// Subgraph size in plan nodes.
    pub num_nodes: usize,
    /// Whether user code runs inside.
    pub has_user_code: bool,
    /// Normalized input names feeding it (inverted-index tags, interned).
    pub input_tags: Vec<Symbol>,
    /// Mean cumulative CPU of computing the subgraph (utility unit).
    pub avg_cumulative_cpu: SimDuration,
    /// Mean output rows.
    pub avg_out_rows: u64,
    /// Mean output bytes (the storage cost of materializing it).
    pub avg_out_bytes: u64,
    /// Mean total CPU of the jobs containing it (for the view-to-query
    /// cost ratio of Figure 5d).
    pub avg_job_cpu: SimDuration,
    /// Observed output physical properties with vote counts (Section 5.3).
    /// Shapes are shared with the enumeration's property pool.
    pub props_votes: Vec<(Arc<PhysicalProps>, usize)>,
}

impl OverlapGroup {
    /// Average occurrences per recurring instance — the "frequency" of the
    /// paper's Figure 5(a).
    pub fn per_instance_frequency(&self) -> u64 {
        (self.occurrences as f64 / self.instances.max(1) as f64).round() as u64
    }

    /// Per-instance reuse utility: every occurrence after the first reads
    /// the view instead of recomputing.
    pub fn utility(&self) -> SimDuration {
        let freq = self.per_instance_frequency();
        self.avg_cumulative_cpu
            .mul_f64(freq.saturating_sub(1) as f64)
    }

    /// Utility per stored byte (selection heuristic).
    pub fn utility_per_byte(&self) -> f64 {
        self.utility().micros() as f64 / self.avg_out_bytes.max(1) as f64
    }

    /// View-to-query cost ratio (Figure 5d).
    pub fn cost_ratio(&self) -> f64 {
        let job = self.avg_job_cpu.micros().max(1) as f64;
        (self.avg_cumulative_cpu.micros() as f64 / job).min(1.0)
    }
}

/// Mines overlap groups from job records.
///
/// Terminal `Output`/`Write` subgraphs are kept (the paper's "reusing
/// existing outputs" lesson found real redundancy there), as are whole-job
/// overlaps; selection constraints decide what to do with them.
///
/// One-shot wrapper over [`AnalyzerState`](super::AnalyzerState): a fresh
/// state folds the records serially and materializes the groups. The
/// incremental fold is the single mining implementation — batch and
/// round-based callers see identical aggregates by construction.
pub fn mine_overlaps(records: &[&JobRecord]) -> Vec<OverlapGroup> {
    let state = super::AnalyzerState::new(super::AnalyzerConfig::default(), 1);
    state.ingest_refs(records.iter().copied());
    state.groups()
}

/// Workload-wide overlap metrics: the series behind Figures 1–5.
#[derive(Clone, Debug, Default)]
pub struct OverlapMetrics {
    /// Total jobs analyzed.
    pub jobs_total: usize,
    /// Jobs containing at least one overlapping subgraph.
    pub jobs_overlapping: usize,
    /// Total user entities seen.
    pub users_total: usize,
    /// Users with at least one overlapping job.
    pub users_overlapping: usize,
    /// Distinct subgraphs (by precise signature).
    pub subgraphs_total: usize,
    /// Distinct subgraphs appearing at least twice.
    pub subgraphs_overlapping: usize,
    /// Total subgraph occurrences (every node of every job).
    pub occurrences_total: u64,
    /// Occurrences whose precise signature appears at least twice — the
    /// duplicated share of the executed plan-node mass (Figure 1's
    /// "overlapping subgraphs" bar).
    pub occurrences_overlapping: u64,
    /// Overlapping-subgraph count per job.
    pub per_job: HashMap<JobId, u64>,
    /// Overlapping-subgraph count per user.
    pub per_user: HashMap<UserId, u64>,
    /// Overlapping-subgraph count per VC.
    pub per_vc: HashMap<VcId, u64>,
    /// Consumption count per input tag, counting only inputs consumed by
    /// the same subgraph at least twice (Figure 3b).
    pub per_input: HashMap<Symbol, u64>,
    /// Jobs per VC (for percentage denominators).
    pub vc_jobs: HashMap<VcId, (usize, usize)>,
    /// Precise-signature frequency of every overlapping subgraph.
    pub overlap_frequencies: Vec<u64>,
}

impl OverlapMetrics {
    /// Percentage of jobs with overlap.
    pub fn pct_jobs_overlapping(&self) -> f64 {
        100.0 * self.jobs_overlapping as f64 / self.jobs_total.max(1) as f64
    }

    /// Percentage of users with overlapping jobs.
    pub fn pct_users_overlapping(&self) -> f64 {
        100.0 * self.users_overlapping as f64 / self.users_total.max(1) as f64
    }

    /// Percentage of subgraph *occurrences* that are duplicated work.
    pub fn pct_subgraphs_overlapping(&self) -> f64 {
        100.0 * self.occurrences_overlapping as f64 / self.occurrences_total.max(1) as f64
    }

    /// Percentage of *distinct* subgraphs appearing at least twice.
    pub fn pct_distinct_subgraphs_overlapping(&self) -> f64 {
        100.0 * self.subgraphs_overlapping as f64 / self.subgraphs_total.max(1) as f64
    }

    /// Per-VC (percent overlapping jobs, average overlap frequency of the
    /// VC's overlapping subgraphs) — Figure 2.
    pub fn vc_overlap_pct(&self) -> HashMap<VcId, f64> {
        self.vc_jobs
            .iter()
            .map(|(vc, (total, overlapping))| {
                (*vc, 100.0 * *overlapping as f64 / (*total).max(1) as f64)
            })
            .collect()
    }
}

/// Computes workload-wide overlap metrics.
///
/// Like [`mine_overlaps`], a one-shot wrapper over the incremental
/// [`AnalyzerState`](super::AnalyzerState).
pub fn overlap_metrics(records: &[&JobRecord]) -> OverlapMetrics {
    let state = super::AnalyzerState::new(super::AnalyzerConfig::default(), 1);
    state.ingest_refs(records.iter().copied());
    state.metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::testutil::baseline_run;

    fn mined() -> (Vec<OverlapGroup>, OverlapMetrics, usize) {
        let (repo, ..) = baseline_run(2, 3);
        let records = repo.records();
        let refs: Vec<&JobRecord> = records.iter().collect();
        let groups = mine_overlaps(&refs);
        let metrics = overlap_metrics(&refs);
        (groups, metrics, records.len())
    }

    #[test]
    fn groups_fold_across_instances() {
        let (groups, ..) = mined();
        assert!(!groups.is_empty());
        // With two instances analyzed, recurring overlaps appear under one
        // normalized signature with two distinct precise signatures.
        let multi_instance = groups.iter().filter(|g| g.instances >= 2).count();
        assert!(multi_instance > 0, "no group folded across instances");
        for g in &groups {
            assert!(g.occurrences >= 2);
            assert!(g.avg_cumulative_cpu > SimDuration::ZERO);
            assert!(!g.jobs.is_empty());
            assert!(g.cost_ratio() > 0.0 && g.cost_ratio() <= 1.0);
        }
    }

    #[test]
    fn groups_sorted_by_utility() {
        let (groups, ..) = mined();
        for w in groups.windows(2) {
            assert!(w[0].utility() >= w[1].utility());
        }
    }

    #[test]
    fn frequency_and_utility_consistent() {
        let (groups, ..) = mined();
        for g in &groups {
            let f = g.per_instance_frequency();
            assert!(f >= 1);
            if f == 1 {
                assert_eq!(g.utility(), SimDuration::ZERO);
            } else {
                assert!(g.utility() > SimDuration::ZERO);
            }
            assert!(g.utility_per_byte() >= 0.0);
        }
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let (_, m, n_jobs) = mined();
        assert_eq!(m.jobs_total, n_jobs);
        assert!(m.jobs_overlapping <= m.jobs_total);
        assert!(m.users_overlapping <= m.users_total);
        assert!(m.subgraphs_overlapping <= m.subgraphs_total);
        assert!(m.pct_jobs_overlapping() > 0.0);
        assert!(m.pct_subgraphs_overlapping() > 0.0);
        // VC job counts add up.
        let vc_total: usize = m.vc_jobs.values().map(|(t, _)| t).sum();
        assert_eq!(vc_total, m.jobs_total);
        // All frequencies ≥ 2.
        assert!(m.overlap_frequencies.iter().all(|&f| f >= 2));
    }

    #[test]
    fn props_votes_ranked() {
        let (groups, ..) = mined();
        for g in &groups {
            assert!(!g.props_votes.is_empty());
            for w in g.props_votes.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn empty_records_yield_empty() {
        let groups = mine_overlaps(&[]);
        assert!(groups.is_empty());
        let m = overlap_metrics(&[]);
        assert_eq!(m.jobs_total, 0);
        assert_eq!(m.pct_jobs_overlapping(), 0.0);
    }
}
