//! The CloudViews workload analyzer (paper Section 5).
//!
//! Periodically (or on demand, from the admin CLI) the analyzer replays the
//! workload repository — compile-time plans already reconciled with runtime
//! statistics — and produces everything the runtime needs:
//!
//! * [`overlap`] — mining of overlapping computations and the workload-wide
//!   overlap metrics behind the paper's Figures 1–5;
//! * [`selection`] — pluggable view-selection policies: top-k by utility,
//!   top-k by utility-per-byte, per-job caps, and BigSubs-style packing
//!   under a storage budget (the companion work cited as \[24\]);
//! * [`physical`] — per-view physical design from observed output
//!   properties (Section 5.3);
//! * [`expiry`] — input-lineage-based view TTLs (Section 5.4);
//! * [`coordination`] — job submission order hints (Section 6.5);
//! * [`incremental`] — the persistent [`AnalyzerState`] behind all of the
//!   above: overlap statistics folded incrementally (and in parallel) as
//!   records arrive, so a round costs the delta, not the history.

pub mod coordination;
pub mod expiry;
pub mod incremental;
pub mod overlap;
pub mod physical;
pub mod selection;

use scope_common::hash::Sig128;
use scope_common::ids::VcId;
use scope_common::intern::Symbol;
use scope_common::time::{SimDuration, SimTime};
use scope_common::Result;
use scope_engine::optimizer::Annotation;
use scope_engine::repo::JobRecord;

pub use incremental::{AnalyzerState, IncrementalAnalyzer, IngestReport, RoundDelta};
pub use overlap::{mine_overlaps, overlap_metrics, OverlapGroup, OverlapMetrics};
pub use selection::{SelectionConstraints, SelectionPolicy};

/// One view the analyzer decided to materialize and reuse.
#[derive(Clone, Debug)]
pub struct SelectedView {
    /// The annotation shipped to the metadata service.
    pub annotation: Annotation,
    /// Tags for the inverted index (normalized input names, interned).
    pub input_tags: Vec<Symbol>,
    /// Estimated per-instance utility (CPU saved by reuse).
    pub utility: SimDuration,
    /// Observed per-instance occurrence count.
    pub frequency: u64,
    /// The most recent precise signature observed (debugging/drill-down).
    pub precise_last_seen: Sig128,
}

/// Analyzer configuration — the admin interface of Section 5.5.
#[derive(Clone, Debug)]
pub struct AnalyzerConfig {
    /// Only analyze jobs submitted in `[window_from, window_to)`.
    pub window_from: SimTime,
    /// Window end (exclusive); `SimTime::MAX` = everything.
    pub window_to: SimTime,
    /// Admins can include only certain VCs...
    pub include_vcs: Option<Vec<VcId>>,
    /// ...or exclude certain VCs from the analysis.
    pub exclude_vcs: Vec<VcId>,
    /// Selection policy.
    pub policy: SelectionPolicy,
    /// Selection constraints (frequency, cost-ratio, per-job caps, custom
    /// filters).
    pub constraints: SelectionConstraints,
    /// TTL used when lineage gives no answer.
    pub default_ttl: SimDuration,
    /// Optional storage budget (bytes) applied on top of the top-k
    /// policies: the ranked candidates are packed under this budget with
    /// an exchange-improvement pass (Section 5.3). `None` = unbounded.
    pub storage_budget_bytes: Option<u64>,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            window_from: SimTime::ZERO,
            window_to: SimTime::MAX,
            include_vcs: None,
            exclude_vcs: Vec::new(),
            policy: SelectionPolicy::TopKUtility { k: 10 },
            constraints: SelectionConstraints::default(),
            default_ttl: SimDuration::from_secs(86_400),
            storage_budget_bytes: None,
        }
    }
}

/// Wall-clock time per analyzer phase (Section 7.3 overhead, drilled down
/// for the `cv_analyzer_*` telemetry series).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalysisPhaseTimes {
    /// Window/VC filtering of repository records.
    pub filter: std::time::Duration,
    /// Overlap enumeration: mining, workload metrics, lineage tracking.
    pub mining: std::time::Duration,
    /// View selection under the configured policy and constraints.
    pub selection: std::time::Duration,
    /// Physical design, TTL assignment, and coordination hints.
    pub design: std::time::Duration,
}

/// The analyzer's output: annotations plus coordination hints.
#[derive(Clone, Debug)]
pub struct AnalysisOutcome {
    /// Selected views, ready for `MetadataService::load_annotations`.
    pub selected: Vec<SelectedView>,
    /// All mined overlap groups (reporting / drill-down).
    pub groups: Vec<OverlapGroup>,
    /// Workload-wide overlap metrics (Figures 1–5 series).
    pub metrics: OverlapMetrics,
    /// Submission-order hint: templates to run first (view builders).
    pub order_hints: Vec<scope_common::ids::TemplateId>,
    /// Wall-clock time of the analysis (Section 7.3 overhead).
    pub wall_time: std::time::Duration,
    /// Per-phase breakdown of `wall_time`.
    pub phase_times: AnalysisPhaseTimes,
    /// Jobs analyzed after window/VC filtering.
    pub jobs_analyzed: usize,
}

/// Runs the full analysis over repository records.
///
/// One-shot convenience over [`AnalyzerState`]: a fresh state ingests all
/// `records` serially and selects once. Long-lived callers should keep an
/// [`IncrementalAnalyzer`] instead and pay only for the delta each round —
/// this entry point re-folds history every call.
pub fn run_analysis(records: &[JobRecord], config: &AnalyzerConfig) -> Result<AnalysisOutcome> {
    let start = std::time::Instant::now();
    let state = AnalyzerState::new(config.clone(), 1);
    let (_report, mut outcome) = state.round(records)?;
    outcome.wall_time = start.elapsed();
    Ok(outcome)
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared scaffolding: runs a tiny workload through the real engine so
    //! analyzer tests mine genuine reconciled records.
    use scope_common::ids::JobId;
    use scope_common::time::{SimDuration, SimTime};
    use scope_engine::cost::CostModel;
    use scope_engine::exec::execute_plan;
    use scope_engine::job::JobSpec;
    use scope_engine::optimizer::{optimize, NoViewServices, OptimizerConfig};
    use scope_engine::repo::{JobIdentity, WorkloadRepository};
    use scope_engine::sim::{simulate, ClusterConfig};
    use scope_engine::storage::StorageManager;
    use scope_workload::dists::LogNormal;
    use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

    /// Runs `instances` recurring instances of a tiny workload baseline
    /// (no CloudViews) and returns the repository + storage + workload.
    pub fn baseline_run(
        instances: u64,
        seed: u64,
    ) -> (WorkloadRepository, StorageManager, RecurringWorkload) {
        let workload = RecurringWorkload::generate(WorkloadConfig {
            clusters: vec![ClusterSpec::tiny("t")],
            seed,
            stream_rows: LogNormal::new(5.5, 0.6, 80.0, 900.0),
        })
        .unwrap();
        let storage = StorageManager::new();
        let repo = WorkloadRepository::new();
        let model = CostModel::default();
        let cluster = ClusterConfig::default();
        let mut now = SimTime::ZERO;
        for inst in 0..instances {
            workload
                .register_instance_data(0, inst, &storage, 1.0)
                .unwrap();
            for spec in workload.jobs_for_instance(0, inst).unwrap() {
                run_one(&spec, &storage, &repo, &model, &cluster, now);
                now += SimDuration::from_secs(30);
            }
            now += SimDuration::from_secs(3600);
        }
        (repo, storage, workload)
    }

    pub fn run_one(
        spec: &JobSpec,
        storage: &StorageManager,
        repo: &WorkloadRepository,
        model: &CostModel,
        cluster: &ClusterConfig,
        now: SimTime,
    ) {
        let cfg = OptimizerConfig {
            enable_reuse: false,
            enable_materialize: false,
            ..Default::default()
        };
        let plan = optimize(&spec.graph, &[], &NoViewServices, &cfg, spec.id).unwrap();
        let exec = execute_plan(&plan.physical, storage, model, now).unwrap();
        let sim = simulate(&plan.physical, &exec, cluster);
        repo.record(
            JobIdentity {
                job: JobId::new(spec.id.raw()),
                cluster: spec.cluster,
                vc: spec.vc,
                user: spec.user,
                template: spec.template,
                instance: spec.instance,
                submitted_at: now,
            },
            &spec.graph,
            &plan,
            &exec,
            &sim,
        )
        .unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_analysis_selects_views() {
        let (repo, _storage, _w) = testutil::baseline_run(1, 11);
        let records = repo.records();
        let outcome = run_analysis(&records, &AnalyzerConfig::default()).unwrap();
        assert_eq!(outcome.jobs_analyzed, records.len());
        assert!(!outcome.groups.is_empty(), "tiny workload must overlap");
        assert!(!outcome.selected.is_empty());
        assert!(outcome.selected.len() <= 10);
        // Selected views are sorted by utility, descending.
        for w in outcome.selected.windows(2) {
            assert!(w[0].utility >= w[1].utility);
        }
        // Every selected view carries tags and positive mined stats.
        for s in &outcome.selected {
            assert!(!s.input_tags.is_empty());
            assert!(s.annotation.avg_cpu > SimDuration::ZERO);
            assert!(s.frequency >= 2);
        }
        assert!(!outcome.order_hints.is_empty());
    }

    #[test]
    fn vc_filters_apply() {
        let (repo, ..) = testutil::baseline_run(1, 11);
        let records = repo.records();
        let all = run_analysis(&records, &AnalyzerConfig::default()).unwrap();
        let only_vc0 = run_analysis(
            &records,
            &AnalyzerConfig {
                include_vcs: Some(vec![VcId::new(0)]),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(only_vc0.jobs_analyzed < all.jobs_analyzed);
        let excluded = run_analysis(
            &records,
            &AnalyzerConfig {
                exclude_vcs: vec![VcId::new(0)],
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            excluded.jobs_analyzed + only_vc0.jobs_analyzed,
            all.jobs_analyzed
        );
    }

    #[test]
    fn window_filter_applies() {
        let (repo, ..) = testutil::baseline_run(2, 11);
        let records = repo.records();
        let all = run_analysis(&records, &AnalyzerConfig::default()).unwrap();
        let early = run_analysis(
            &records,
            &AnalyzerConfig {
                window_to: SimTime(3_600_000_000),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(early.jobs_analyzed < all.jobs_analyzed);
        assert!(early.jobs_analyzed > 0);
    }
}
