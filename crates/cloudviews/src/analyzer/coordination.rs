//! Job coordination hints (paper Section 6.5).
//!
//! Concurrent jobs containing the same overlapping computation all
//! recompute it (only one wins the build lock). The analyzer therefore also
//! emits a submission *order*: "grouping jobs having the same number of
//! overlaps, and picking the shortest job in terms of runtime, or least
//! overlapping job in case of a tie, from each group. The deduplicated list
//! of the above jobs will create the materialized views that could be used
//! by all others, and so we propose to run them first (ordered by their
//! runtime and breaking ties using the number of overlaps)."
//!
//! Hints are expressed as *templates* (not job ids): the next recurring
//! instance has fresh job ids, but templates persist.

use std::collections::HashMap;

use scope_common::ids::{JobId, TemplateId};
use scope_common::time::SimDuration;
use scope_engine::repo::JobRecord;

use super::overlap::OverlapGroup;

/// Builds the run-first template list from the selected overlap groups.
pub fn order_hints(selected: &[OverlapGroup], records: &[&JobRecord]) -> Vec<TemplateId> {
    order_hints_from_jobs(
        selected,
        records.iter().map(|r| (r.job, r.template, r.latency)),
    )
}

/// [`order_hints`] over bare job metadata — what the incremental analyzer
/// keeps per admitted record instead of the records themselves. Duplicate
/// job ids resolve last-wins, matching record iteration order.
pub fn order_hints_from_jobs(
    selected: &[OverlapGroup],
    jobs: impl IntoIterator<Item = (JobId, TemplateId, SimDuration)>,
) -> Vec<TemplateId> {
    let mut latency: HashMap<JobId, SimDuration> = HashMap::new();
    let mut template_of: HashMap<JobId, TemplateId> = HashMap::new();
    for (job, template, lat) in jobs {
        latency.insert(job, lat);
        template_of.insert(job, template);
    }

    // Overlap count per job across the selected groups.
    let mut overlaps_per_job: HashMap<JobId, usize> = HashMap::new();
    for g in selected {
        for j in &g.jobs {
            *overlaps_per_job.entry(*j).or_default() += 1;
        }
    }

    // Group jobs by overlap count; pick the shortest (tie: least
    // overlapping, then id for determinism) from each group.
    let mut by_count: HashMap<usize, Vec<JobId>> = HashMap::new();
    for (job, count) in &overlaps_per_job {
        by_count.entry(*count).or_default().push(*job);
    }
    let mut builders: Vec<JobId> = Vec::new();
    for jobs in by_count.values() {
        let best = jobs.iter().copied().min_by(|a, b| {
            let la = latency.get(a).copied().unwrap_or(SimDuration::ZERO);
            let lb = latency.get(b).copied().unwrap_or(SimDuration::ZERO);
            la.cmp(&lb)
                .then_with(|| overlaps_per_job[a].cmp(&overlaps_per_job[b]))
                .then_with(|| a.cmp(b))
        });
        if let Some(j) = best {
            builders.push(j);
        }
    }

    // Dedup and order by runtime, ties by overlap count.
    builders.sort_by(|a, b| {
        let la = latency.get(a).copied().unwrap_or(SimDuration::ZERO);
        let lb = latency.get(b).copied().unwrap_or(SimDuration::ZERO);
        la.cmp(&lb)
            .then_with(|| overlaps_per_job[a].cmp(&overlaps_per_job[b]))
            .then_with(|| a.cmp(b))
    });
    builders.dedup();

    let mut templates: Vec<TemplateId> = Vec::new();
    for j in builders {
        if let Some(t) = template_of.get(&j) {
            if !templates.contains(t) {
                templates.push(*t);
            }
        }
    }
    templates
}

/// Reorders a job list so that jobs of hinted templates run first (in hint
/// order), preserving the original relative order otherwise. This is the
/// client-side submission-tool behaviour the paper describes.
pub fn apply_order<T, F: Fn(&T) -> TemplateId>(
    jobs: Vec<T>,
    hints: &[TemplateId],
    template_of: F,
) -> Vec<T> {
    let rank =
        |t: &TemplateId| -> usize { hints.iter().position(|h| h == t).unwrap_or(usize::MAX) };
    let mut indexed: Vec<(usize, T)> = jobs.into_iter().enumerate().collect();
    indexed.sort_by(|(ia, a), (ib, b)| {
        rank(&template_of(a))
            .cmp(&rank(&template_of(b)))
            .then_with(|| ia.cmp(ib))
    });
    indexed.into_iter().map(|(_, j)| j).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::hash::sip128;
    use scope_common::ids::{ClusterId, UserId, VcId};
    use scope_common::time::SimTime;
    use scope_plan::{OpKind, PhysicalProps};

    fn rec(job: u64, template: u64, latency_s: u64) -> JobRecord {
        JobRecord {
            job: JobId::new(job),
            cluster: ClusterId::new(0),
            vc: VcId::new(0),
            user: UserId::new(0),
            template: TemplateId::new(template),
            instance: 0,
            submitted_at: SimTime::ZERO,
            latency: SimDuration::from_secs(latency_s),
            cpu_time: SimDuration::from_secs(latency_s * 4),
            tags: vec![],
            subgraphs: vec![],
        }
    }

    fn grp(name: &str, jobs: &[u64]) -> OverlapGroup {
        OverlapGroup {
            normalized: sip128(name.as_bytes()),
            sample_precise: sip128(name.as_bytes()),
            occurrences: jobs.len() as u64,
            instances: 1,
            jobs: jobs.iter().map(|&j| JobId::new(j)).collect(),
            users: vec![],
            vcs: vec![],
            templates: vec![],
            root_kind: OpKind::Sort,
            num_nodes: 2,
            has_user_code: false,
            input_tags: vec![],
            avg_cumulative_cpu: SimDuration::from_secs(1),
            avg_out_rows: 1,
            avg_out_bytes: 1,
            avg_job_cpu: SimDuration::from_secs(4),
            props_votes: vec![(std::sync::Arc::new(PhysicalProps::any()), 1)],
        }
    }

    #[test]
    fn shortest_job_per_group_runs_first() {
        // Jobs 1 (slow) and 2 (fast) share one overlap; the fast one should
        // be hinted to build.
        let records = [rec(1, 10, 100), rec(2, 20, 5)];
        let refs: Vec<&JobRecord> = records.iter().collect();
        let hints = order_hints(&[grp("v", &[1, 2])], &refs);
        assert_eq!(hints, vec![TemplateId::new(20)]);
    }

    #[test]
    fn multiple_groups_ordered_by_runtime() {
        // Group with 1 overlap: jobs 1,2 (fastest 2). Group with 2
        // overlaps: job 3 alone (in both groups).
        let records = [rec(1, 10, 50), rec(2, 20, 5), rec(3, 30, 20)];
        let refs: Vec<&JobRecord> = records.iter().collect();
        let hints = order_hints(&[grp("a", &[1, 2, 3]), grp("b", &[3])], &refs);
        // Job 2 (1 overlap, 5s) and job 3 (2 overlaps, 20s): runtime order.
        assert_eq!(hints, vec![TemplateId::new(20), TemplateId::new(30)]);
    }

    #[test]
    fn apply_order_moves_builders_first() {
        let jobs = vec![(0u64, 10u64), (1, 20), (2, 30), (3, 20)];
        let hints = vec![TemplateId::new(30), TemplateId::new(20)];
        let ordered = apply_order(jobs, &hints, |&(_, t)| TemplateId::new(t));
        let templates: Vec<u64> = ordered.iter().map(|&(_, t)| t).collect();
        // 30 first, then both 20s in original order, then the rest.
        assert_eq!(templates, vec![30, 20, 20, 10]);
        // Stable for unhinted jobs.
        assert_eq!(ordered[3], (0, 10));
    }

    #[test]
    fn empty_inputs() {
        assert!(order_hints(&[], &[]).is_empty());
        let jobs: Vec<u64> = vec![1, 2];
        let out = apply_order(jobs.clone(), &[], |_| TemplateId::new(0));
        assert_eq!(out, jobs);
    }
}
