//! View selection (paper Section 5.2).
//!
//! Two families of approaches, both over the mined [`OverlapGroup`]s:
//!
//! 1. **top-k heuristics** — rank by total utility or utility normalized by
//!    storage cost, optionally limiting to one subgraph per job; custom
//!    filters can be plugged in through [`SelectionConstraints::custom`];
//! 2. **packing** — pick the best set under a storage budget (the
//!    companion "subexpression packing" work \[24\]): greedy by density plus
//!    a swap-based local-search improvement pass.
//!
//! A `MinUtility` policy inverts the objective for the admin space-
//! reclamation flow of Section 5.4 ("replacing the max objective function
//! with a min").

use scope_common::ids::JobId;
use scope_common::time::SimDuration;
use std::collections::HashSet;

use super::overlap::OverlapGroup;

/// Which selection algorithm to run.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectionPolicy {
    /// Top-k groups by total utility.
    TopKUtility {
        /// Number of views to select.
        k: usize,
    },
    /// Top-k groups by utility per stored byte.
    TopKUtilityPerByte {
        /// Number of views to select.
        k: usize,
    },
    /// Best set under a storage budget (greedy + local search).
    Packing {
        /// Total bytes the selected views may occupy.
        storage_budget_bytes: u64,
    },
    /// k *least* useful views — the eviction objective of Section 5.4.
    MinUtility {
        /// Number of views to pick for removal.
        k: usize,
    },
}

/// Pre-selection filters — the knobs of the admin CLI (Section 5.5:
/// "users can provide custom constraints, e.g. storage costs, latency,
/// CPU hours, or frequency").
#[derive(Clone)]
pub struct SelectionConstraints {
    /// Minimum per-instance occurrence count (the paper's production
    /// experiment used "appearing at least thrice").
    pub min_frequency: u64,
    /// Minimum view-to-query cost ratio (production experiment: ≥ 20%).
    pub min_cost_ratio: f64,
    /// Minimum average cumulative CPU (prunes the 26% of sub-second
    /// overlaps Figure 5b shows).
    pub min_cpu: SimDuration,
    /// Maximum stored bytes per view.
    pub max_bytes: u64,
    /// Minimum subgraph size in plan nodes. The default of 2 rejects bare
    /// scans — materializing a copy of an input is never useful.
    pub min_nodes: usize,
    /// At most this many selected views containing any single job
    /// (production experiment: one per job).
    pub per_job_cap: Option<usize>,
    /// Skip subgraphs rooted at terminal outputs.
    pub exclude_outputs: bool,
    /// Extra user-supplied predicate.
    pub custom: Option<fn(&OverlapGroup) -> bool>,
}

impl Default for SelectionConstraints {
    fn default() -> Self {
        SelectionConstraints {
            min_frequency: 2,
            min_cost_ratio: 0.0,
            min_cpu: SimDuration::ZERO,
            max_bytes: u64::MAX,
            min_nodes: 2,
            per_job_cap: None,
            exclude_outputs: true,
            custom: None,
        }
    }
}

impl std::fmt::Debug for SelectionConstraints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectionConstraints")
            .field("min_frequency", &self.min_frequency)
            .field("min_cost_ratio", &self.min_cost_ratio)
            .field("min_cpu", &self.min_cpu)
            .field("max_bytes", &self.max_bytes)
            .field("min_nodes", &self.min_nodes)
            .field("per_job_cap", &self.per_job_cap)
            .field("exclude_outputs", &self.exclude_outputs)
            .field("custom", &self.custom.map(|_| "fn"))
            .finish()
    }
}

impl SelectionConstraints {
    /// The production-experiment preset of Section 7.1: frequency ≥ 3,
    /// view-to-query cost ratio ≥ 20%, one view per job.
    pub fn paper_production() -> Self {
        SelectionConstraints {
            min_frequency: 3,
            min_cost_ratio: 0.2,
            per_job_cap: Some(1),
            ..Default::default()
        }
    }

    fn admits(&self, g: &OverlapGroup) -> bool {
        g.per_instance_frequency() >= self.min_frequency
            && g.cost_ratio() >= self.min_cost_ratio
            && g.avg_cumulative_cpu >= self.min_cpu
            && g.avg_out_bytes <= self.max_bytes
            && g.num_nodes >= self.min_nodes
            && !(self.exclude_outputs
                && matches!(
                    g.root_kind,
                    scope_plan::OpKind::Output | scope_plan::OpKind::Write
                ))
            && self.custom.map(|f| f(g)).unwrap_or(true)
    }
}

/// Runs the selection policy over mined groups, returning the chosen groups
/// (cloned) ranked by the policy's objective.
pub fn select(
    groups: &[OverlapGroup],
    policy: &SelectionPolicy,
    constraints: &SelectionConstraints,
) -> Vec<OverlapGroup> {
    select_budgeted(groups, policy, constraints, None)
}

/// [`select`] with an optional storage budget layered on top of the top-k
/// policies: the policy ranks, then the ranked list is packed under
/// `budget` with an exchange-improvement pass. `None` = unbounded (pure
/// top-k). `Packing` uses its own budget (intersected with `budget` when
/// both are set); `MinUtility` ranks for eviction and ignores the budget.
pub fn select_budgeted(
    groups: &[OverlapGroup],
    policy: &SelectionPolicy,
    constraints: &SelectionConstraints,
    budget: Option<u64>,
) -> Vec<OverlapGroup> {
    let mut candidates: Vec<&OverlapGroup> =
        groups.iter().filter(|g| constraints.admits(g)).collect();

    let picked: Vec<&OverlapGroup> = match policy {
        SelectionPolicy::TopKUtility { k } => {
            candidates.sort_by_key(|g| std::cmp::Reverse(g.utility()));
            match budget {
                None => take_with_job_cap(&candidates, *k, constraints.per_job_cap),
                Some(b) => pack_ranked(&candidates, b, *k, constraints.per_job_cap),
            }
        }
        SelectionPolicy::TopKUtilityPerByte { k } => {
            candidates.sort_by(|a, b| {
                b.utility_per_byte()
                    .partial_cmp(&a.utility_per_byte())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            match budget {
                None => take_with_job_cap(&candidates, *k, constraints.per_job_cap),
                Some(b) => pack_ranked(&candidates, b, *k, constraints.per_job_cap),
            }
        }
        SelectionPolicy::MinUtility { k } => {
            candidates.sort_by_key(|a| a.utility());
            candidates.into_iter().take(*k).collect()
        }
        SelectionPolicy::Packing {
            storage_budget_bytes,
        } => {
            candidates.sort_by(|a, b| {
                b.utility_per_byte()
                    .partial_cmp(&a.utility_per_byte())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let b = budget
                .map(|outer| outer.min(*storage_budget_bytes))
                .unwrap_or(*storage_budget_bytes);
            pack_ranked(&candidates, b, usize::MAX, constraints.per_job_cap)
        }
    };
    picked.into_iter().cloned().collect()
}

/// Greedy take honoring an optional per-job cap.
fn take_with_job_cap<'a>(
    ranked: &[&'a OverlapGroup],
    k: usize,
    cap: Option<usize>,
) -> Vec<&'a OverlapGroup> {
    let mut out = Vec::new();
    let mut job_use: std::collections::HashMap<JobId, usize> = std::collections::HashMap::new();
    for g in ranked {
        if out.len() >= k {
            break;
        }
        if let Some(cap) = cap {
            if g.jobs
                .iter()
                .any(|j| job_use.get(j).copied().unwrap_or(0) >= cap)
            {
                continue;
            }
        }
        for j in &g.jobs {
            *job_use.entry(*j).or_default() += 1;
        }
        out.push(*g);
    }
    out
}

/// Storage-budget packing over an already-ranked candidate list: greedy in
/// rank order under the byte budget (honoring the per-job cap and the `k`
/// limit), then a bounded exchange pass swapping one selected view for an
/// unselected one when the swap raises total utility within budget, and a
/// final fill of any space the swaps freed.
fn pack_ranked<'a>(
    ranked: &[&'a OverlapGroup],
    budget: u64,
    k: usize,
    cap: Option<usize>,
) -> Vec<&'a OverlapGroup> {
    fn size(g: &OverlapGroup) -> u64 {
        g.avg_out_bytes.max(1)
    }
    fn fits_cap(
        job_use: &std::collections::HashMap<JobId, usize>,
        cap: Option<usize>,
        g: &OverlapGroup,
    ) -> bool {
        match cap {
            Some(cap) => !g
                .jobs
                .iter()
                .any(|j| job_use.get(j).copied().unwrap_or(0) >= cap),
            None => true,
        }
    }

    let mut selected: Vec<&OverlapGroup> = Vec::new();
    let mut used: u64 = 0;
    let mut job_use: std::collections::HashMap<JobId, usize> = std::collections::HashMap::new();
    for g in ranked {
        if selected.len() >= k {
            break;
        }
        if used + size(g) > budget || !fits_cap(&job_use, cap, g) {
            continue;
        }
        for j in &g.jobs {
            *job_use.entry(*j).or_default() += 1;
        }
        used += size(g);
        selected.push(*g);
    }

    // Exchange improvement: replace a selected view with the best-utility
    // unselected one that fits in the freed space (greedy packs by the
    // policy objective, which can strand one large high-utility view).
    let selected_set: HashSet<scope_common::Sig128> =
        selected.iter().map(|g| g.normalized).collect();
    let mut unselected: Vec<&OverlapGroup> = ranked
        .iter()
        .filter(|g| !selected_set.contains(&g.normalized))
        .copied()
        .collect();
    unselected.sort_by_key(|g| std::cmp::Reverse(g.utility()));

    let mut improved = true;
    let mut passes = 0;
    while improved && passes < 3 {
        improved = false;
        passes += 1;
        for slot in selected.iter_mut() {
            let outgoing = *slot;
            let freed = used - size(outgoing);
            // Release the outgoing view's job slots while probing the cap.
            for j in &outgoing.jobs {
                if let Some(u) = job_use.get_mut(j) {
                    *u -= 1;
                }
            }
            let pos = unselected.iter().position(|c| {
                freed + size(c) <= budget
                    && c.utility() > outgoing.utility()
                    && fits_cap(&job_use, cap, c)
            });
            match pos {
                Some(pos) => {
                    let incoming = unselected.remove(pos);
                    for j in &incoming.jobs {
                        *job_use.entry(*j).or_default() += 1;
                    }
                    used = freed + size(incoming);
                    *slot = incoming;
                    unselected.push(outgoing);
                    unselected.sort_by_key(|g| std::cmp::Reverse(g.utility()));
                    improved = true;
                }
                None => {
                    for j in &outgoing.jobs {
                        *job_use.entry(*j).or_default() += 1;
                    }
                }
            }
        }
    }

    // Fill: swaps may have freed budget another candidate now fits.
    for g in &unselected {
        if selected.len() >= k {
            break;
        }
        if used + size(g) > budget || !fits_cap(&job_use, cap, g) {
            continue;
        }
        for j in &g.jobs {
            *job_use.entry(*j).or_default() += 1;
        }
        used += size(g);
        selected.push(*g);
    }

    selected.sort_by_key(|g| std::cmp::Reverse(g.utility()));
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::hash::sip128;
    use scope_common::ids::{TemplateId, UserId, VcId};
    use scope_plan::{OpKind, PhysicalProps};

    /// Hand-built group with the given utility profile.
    fn group(
        name: &str,
        freq: u64,
        cpu_secs: u64,
        bytes: u64,
        jobs: &[u64],
        root: OpKind,
    ) -> OverlapGroup {
        OverlapGroup {
            normalized: sip128(name.as_bytes()),
            sample_precise: sip128(format!("{name}/p").as_bytes()),
            occurrences: freq,
            instances: 1,
            jobs: jobs.iter().map(|&j| JobId::new(j)).collect(),
            users: vec![UserId::new(0)],
            vcs: vec![VcId::new(0)],
            templates: vec![TemplateId::new(0)],
            root_kind: root,
            num_nodes: 3,
            has_user_code: false,
            input_tags: vec!["in".into()],
            avg_cumulative_cpu: SimDuration::from_secs(cpu_secs),
            avg_out_rows: 10,
            avg_out_bytes: bytes,
            avg_job_cpu: SimDuration::from_secs(cpu_secs * 4),
            props_votes: vec![(std::sync::Arc::new(PhysicalProps::any()), 1)],
        }
    }

    #[test]
    fn topk_utility_ranks_by_savings() {
        let groups = vec![
            group("small", 2, 1, 100, &[1, 2], OpKind::Filter),
            group("big", 5, 10, 100, &[3, 4, 5], OpKind::Sort),
            group("medium", 3, 5, 100, &[6, 7], OpKind::Exchange),
        ];
        let sel = select(
            &groups,
            &SelectionPolicy::TopKUtility { k: 2 },
            &SelectionConstraints::default(),
        );
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[0].normalized, sip128(b"big"));
        assert_eq!(sel[1].normalized, sip128(b"medium"));
    }

    #[test]
    fn utility_per_byte_prefers_dense() {
        let groups = vec![
            group("fat", 5, 10, 1_000_000, &[1], OpKind::Sort), // 40s / MB
            group("dense", 3, 5, 1_000, &[2], OpKind::Filter),  // 10s / KB
        ];
        let sel = select(
            &groups,
            &SelectionPolicy::TopKUtilityPerByte { k: 1 },
            &SelectionConstraints::default(),
        );
        assert_eq!(sel[0].normalized, sip128(b"dense"));
    }

    #[test]
    fn constraints_filter() {
        let groups = vec![
            group("rare", 2, 100, 100, &[1], OpKind::Sort),
            group("frequent", 4, 100, 100, &[2], OpKind::Sort),
        ];
        let c = SelectionConstraints {
            min_frequency: 3,
            ..Default::default()
        };
        let sel = select(&groups, &SelectionPolicy::TopKUtility { k: 10 }, &c);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].normalized, sip128(b"frequent"));
    }

    #[test]
    fn outputs_excluded_by_default_but_optional() {
        let groups = vec![group("out", 4, 100, 100, &[1], OpKind::Write)];
        let sel = select(
            &groups,
            &SelectionPolicy::TopKUtility { k: 10 },
            &SelectionConstraints::default(),
        );
        assert!(sel.is_empty());
        let sel = select(
            &groups,
            &SelectionPolicy::TopKUtility { k: 10 },
            &SelectionConstraints {
                exclude_outputs: false,
                ..Default::default()
            },
        );
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn per_job_cap_blocks_second_view_on_same_job() {
        let groups = vec![
            group("a", 5, 10, 100, &[1, 2], OpKind::Sort),
            group("b", 4, 9, 100, &[2, 3], OpKind::Sort), // shares job 2
            group("c", 3, 8, 100, &[4], OpKind::Sort),
        ];
        let c = SelectionConstraints {
            per_job_cap: Some(1),
            ..Default::default()
        };
        let sel = select(&groups, &SelectionPolicy::TopKUtility { k: 3 }, &c);
        let names: Vec<_> = sel.iter().map(|g| g.normalized).collect();
        assert!(names.contains(&sip128(b"a")));
        assert!(!names.contains(&sip128(b"b")), "job 2 already covered");
        assert!(names.contains(&sip128(b"c")));
    }

    #[test]
    fn packing_respects_budget() {
        let groups = vec![
            group("g1", 5, 10, 600, &[1], OpKind::Sort),
            group("g2", 5, 9, 600, &[2], OpKind::Sort),
            group("g3", 5, 8, 600, &[3], OpKind::Sort),
        ];
        let sel = select(
            &groups,
            &SelectionPolicy::Packing {
                storage_budget_bytes: 1_300,
            },
            &SelectionConstraints::default(),
        );
        assert_eq!(sel.len(), 2);
        let total: u64 = sel.iter().map(|g| g.avg_out_bytes).sum();
        assert!(total <= 1_300);
    }

    #[test]
    fn packing_local_search_beats_pure_density() {
        // Density greedy picks the dense small one (u=4, 10B) but the
        // budget fits the single high-utility fat one (u=40, 100B) instead.
        let groups = vec![
            group("dense", 5, 1, 10, &[1], OpKind::Sort), // utility 4s, 0.4/B
            group("fat", 5, 10, 100, &[2], OpKind::Sort), // utility 40s, 0.4/B... tie
        ];
        // Make dense strictly denser.
        let mut groups = groups;
        groups[0].avg_out_bytes = 5;
        let sel = select(
            &groups,
            &SelectionPolicy::Packing {
                storage_budget_bytes: 100,
            },
            &SelectionConstraints::default(),
        );
        // Local search should end with the fat one (utility 40 > 4).
        let total_utility: u64 = sel.iter().map(|g| g.utility().micros()).sum();
        assert!(total_utility >= SimDuration::from_secs(40).micros());
    }

    #[test]
    fn min_utility_for_eviction() {
        let groups = vec![
            group("keep", 5, 10, 100, &[1], OpKind::Sort),
            group("evict", 2, 1, 100, &[2], OpKind::Sort),
        ];
        let sel = select(
            &groups,
            &SelectionPolicy::MinUtility { k: 1 },
            &SelectionConstraints::default(),
        );
        assert_eq!(sel[0].normalized, sip128(b"evict"));
    }

    #[test]
    fn custom_filter_applies() {
        let groups = vec![
            group("sortish", 4, 10, 100, &[1], OpKind::Sort),
            group("filterish", 4, 10, 100, &[2], OpKind::Filter),
        ];
        let c = SelectionConstraints {
            custom: Some(|g| g.root_kind == OpKind::Sort),
            ..Default::default()
        };
        let sel = select(&groups, &SelectionPolicy::TopKUtility { k: 10 }, &c);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].root_kind, OpKind::Sort);
    }

    #[test]
    fn paper_production_preset() {
        let c = SelectionConstraints::paper_production();
        assert_eq!(c.min_frequency, 3);
        assert!((c.min_cost_ratio - 0.2).abs() < f64::EPSILON);
        assert_eq!(c.per_job_cap, Some(1));
    }
}
