//! The incremental, parallel analyzer state (DESIGN.md §11).
//!
//! `run_analysis` used to be a one-shot batch: every round re-enumerated
//! every `JobRecord` ever recorded, so analysis cost grew linearly with
//! repository age. [`AnalyzerState`] keeps the overlap statistics *live*
//! across rounds instead: [`AnalyzerState::ingest`] folds only the delta of
//! new records into persistent per-signature aggregates, and
//! [`AnalyzerState::select`] re-runs view selection from those aggregates —
//! no re-enumeration of old instances.
//!
//! ## The transition-flush trick
//!
//! Batch mining is two passes: count occurrences by precise signature, then
//! fold the occurrences whose precise count is ≥ 2 by normalized signature.
//! A naive incremental port would have to re-scan history whenever a
//! signature crosses the threshold. Instead each [`PreciseAcc`] buffers its
//! *first* occurrence; when the second arrives (count 1 → 2) the buffered
//! occurrence is flushed retroactively into the normalized accumulator
//! together with the new one, and every later occurrence folds directly.
//! Each occurrence is therefore touched exactly once, and the normalized
//! aggregates are at all times identical to what the batch two-pass would
//! produce over the same prefix.
//!
//! ## Parallel merge semantics
//!
//! Ingest is two phases. A serial *admit* phase applies the window/VC
//! filter, assigns each record a record sequence number and each occurrence
//! a global sequence number, and maintains the per-record metadata
//! (lineage observations, job metas). A parallel *fold* phase then deals
//! record batches over a work-stealing pool (the `run_many` pattern) and
//! applies them to [`scope_common::shard::Sharded`] accumulator tables.
//! Every normalized-accumulator update commutes: sums, sets, and vote
//! counts are order-free, while the order-sensitive fields are guarded by
//! the pre-assigned sequence numbers (min-seq for the "first occurrence"
//! fields, max-seq for `sample_precise`, min-seq tie-breaks for property
//! votes). The outcome is bit-identical whatever the thread count or the
//! partitioning of the stream — property-tested in
//! `tests/analyzer_incremental.rs`.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use scope_common::hash::Sig128;
use scope_common::ids::{JobId, TemplateId, UserId, VcId};
use scope_common::intern::Symbol;
use scope_common::shard::Sharded;
use scope_common::time::{SimDuration, SimTime};
use scope_common::Result;
use scope_engine::repo::{JobRecord, SubgraphRun, WorkloadRepository};
use scope_plan::{OpKind, PhysicalProps};

use super::overlap::{OverlapGroup, OverlapMetrics};
use super::{
    coordination, expiry, physical, selection, AnalysisOutcome, AnalysisPhaseTimes, AnalyzerConfig,
    SelectedView,
};

/// Shards for the precise-signature table (the hot, high-cardinality one).
const PRECISE_SHARDS: usize = 64;
/// Shards for the normalized-accumulator table.
const NORM_SHARDS: usize = 32;
/// Records per work-stealing chunk in the parallel fold.
const FOLD_CHUNK: usize = 16;

fn sig_key(sig: Sig128) -> u64 {
    sig.lo ^ sig.hi
}

/// The buffered first occurrence of a precise signature — everything needed
/// to fold it retroactively once the signature proves overlapping.
struct FirstOcc {
    seq: u64,
    record_seq: u64,
    job: JobId,
    user: UserId,
    vc: VcId,
    template: TemplateId,
    job_cpu: SimDuration,
    precise: Sig128,
    normalized: Sig128,
    root_kind: OpKind,
    num_nodes: usize,
    has_user_code: bool,
    input_tags: Vec<Symbol>,
    props: Arc<PhysicalProps>,
    cum_cpu: SimDuration,
    out_rows: u64,
    out_bytes: u64,
}

/// Per-precise-signature accumulator: a count plus the buffered first
/// occurrence (present only while the count is exactly 1).
struct PreciseAcc {
    count: u64,
    first: Option<Box<FirstOcc>>,
}

struct PropsVote {
    count: usize,
    /// Sequence of the earliest occurrence voting for this design — the
    /// deterministic tie-break when two designs draw the same vote count.
    first_seq: u64,
}

/// Per-normalized-signature aggregates, maintained incrementally. All
/// updates commute (see the module docs), so parallel folding is exact.
struct NormAcc {
    /// Sequence of the earliest overlapping occurrence: guards the
    /// "first occurrence" fields below.
    first_seq: u64,
    /// Sequence of the latest overlapping occurrence: guards
    /// `sample_precise`.
    last_seq: u64,
    sample_precise: Sig128,
    root_kind: OpKind,
    num_nodes: usize,
    has_user_code: bool,
    input_tags: Vec<Symbol>,
    occurrences: u64,
    /// Distinct precise signatures that crossed the overlap threshold.
    instances: u64,
    jobs: HashSet<JobId>,
    users: HashSet<UserId>,
    vcs: HashSet<VcId>,
    templates: HashSet<TemplateId>,
    cum_cpu_sum: u128,
    rows_sum: u128,
    bytes_sum: u128,
    job_cpu_sum: u128,
    props_votes: HashMap<Arc<PhysicalProps>, PropsVote>,
}

impl NormAcc {
    fn new() -> NormAcc {
        NormAcc {
            first_seq: u64::MAX,
            last_seq: 0,
            sample_precise: Sig128::ZERO,
            root_kind: OpKind::Output,
            num_nodes: 0,
            has_user_code: false,
            input_tags: Vec::new(),
            occurrences: 0,
            instances: 0,
            jobs: HashSet::new(),
            users: HashSet::new(),
            vcs: HashSet::new(),
            templates: HashSet::new(),
            cum_cpu_sum: 0,
            rows_sum: 0,
            bytes_sum: 0,
            job_cpu_sum: 0,
            props_votes: HashMap::new(),
        }
    }
}

/// Per-admitted-record metadata kept for the metrics and coordination
/// passes (the record itself is never re-read).
struct JobMeta {
    job: JobId,
    user: UserId,
    vc: VcId,
    template: TemplateId,
    latency: SimDuration,
}

/// Serial-phase state: everything the admit pass owns.
#[derive(Default)]
struct AdmitState {
    metas: Vec<JobMeta>,
    occurrences_total: u64,
    skipped: u64,
    /// Template → instance → earliest observed submission (lineage input).
    template_times: HashMap<TemplateId, BTreeMap<u64, SimTime>>,
    /// Input tag → consuming templates, insertion-ordered.
    consumers: HashMap<Symbol, Vec<TemplateId>>,
}

/// What one [`AnalyzerState::ingest`] call did.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestReport {
    /// Records admitted past the window/VC filter this call.
    pub admitted: usize,
    /// Records the filter rejected this call.
    pub skipped: usize,
    /// Subgraph occurrences folded (admitted records × their subgraphs).
    pub occurrences: u64,
    /// Wall time of the serial admit (filter + sequence assignment) phase.
    pub filter_wall: Duration,
    /// Wall time of the (possibly parallel) fold phase.
    pub fold_wall: Duration,
}

/// One occurrence as seen by the fold, borrowing from the record where
/// possible (only the buffered first occurrence per precise signature pays
/// an owned copy).
struct OccView<'a> {
    seq: u64,
    record_seq: u64,
    job: JobId,
    user: UserId,
    vc: VcId,
    template: TemplateId,
    job_cpu: SimDuration,
    precise: Sig128,
    normalized: Sig128,
    root_kind: OpKind,
    num_nodes: usize,
    has_user_code: bool,
    input_tags: &'a [Symbol],
    props: &'a Arc<PhysicalProps>,
    cum_cpu: SimDuration,
    out_rows: u64,
    out_bytes: u64,
}

impl<'a> OccView<'a> {
    fn from_sub(meta: &RecordCtx<'_>, seq: u64, sub: &'a SubgraphRun) -> OccView<'a> {
        OccView {
            seq,
            record_seq: meta.record_seq,
            job: meta.job,
            user: meta.user,
            vc: meta.vc,
            template: meta.template,
            job_cpu: meta.job_cpu,
            precise: sub.precise,
            normalized: sub.normalized,
            root_kind: sub.root_kind,
            num_nodes: sub.num_nodes,
            has_user_code: sub.has_user_code,
            input_tags: &sub.input_tags,
            props: &sub.props,
            cum_cpu: sub.cumulative_cpu,
            out_rows: sub.out_rows,
            out_bytes: sub.out_bytes,
        }
    }

    fn from_first(first: &'a FirstOcc) -> OccView<'a> {
        OccView {
            seq: first.seq,
            record_seq: first.record_seq,
            job: first.job,
            user: first.user,
            vc: first.vc,
            template: first.template,
            job_cpu: first.job_cpu,
            precise: first.precise,
            normalized: first.normalized,
            root_kind: first.root_kind,
            num_nodes: first.num_nodes,
            has_user_code: first.has_user_code,
            input_tags: &first.input_tags,
            props: &first.props,
            cum_cpu: first.cum_cpu,
            out_rows: first.out_rows,
            out_bytes: first.out_bytes,
        }
    }

    fn to_first(&self) -> FirstOcc {
        FirstOcc {
            seq: self.seq,
            record_seq: self.record_seq,
            job: self.job,
            user: self.user,
            vc: self.vc,
            template: self.template,
            job_cpu: self.job_cpu,
            precise: self.precise,
            normalized: self.normalized,
            root_kind: self.root_kind,
            num_nodes: self.num_nodes,
            has_user_code: self.has_user_code,
            input_tags: self.input_tags.to_vec(),
            props: Arc::clone(self.props),
            cum_cpu: self.cum_cpu,
            out_rows: self.out_rows,
            out_bytes: self.out_bytes,
        }
    }
}

/// Per-record identity shared by all of a record's occurrences during fold.
struct RecordCtx<'a> {
    record: &'a JobRecord,
    record_seq: u64,
    base_seq: u64,
    job: JobId,
    user: UserId,
    vc: VcId,
    template: TemplateId,
    job_cpu: SimDuration,
}

/// The persistent analyzer state: ingest deltas, select from aggregates.
pub struct AnalyzerState {
    config: AnalyzerConfig,
    /// Worker threads for the fold phase (`0` = one per available core).
    workers: usize,
    /// Serializes whole ingest/select rounds; the sharded tables below are
    /// only contended *within* a parallel fold.
    round: Mutex<()>,
    admit: Mutex<AdmitState>,
    precise: Sharded<Mutex<HashMap<Sig128, PreciseAcc>>>,
    norm: Sharded<Mutex<HashMap<Sig128, NormAcc>>>,
    /// Overlapping-occurrence count per admitted record, indexed by record
    /// sequence (atomic so parallel folds can bump concurrently).
    rec_overlaps: RwLock<Vec<AtomicU64>>,
}

impl AnalyzerState {
    /// A fresh state for `config`, folding with `workers` threads
    /// (`0` = one per available core; ingest falls back to inline folding
    /// whenever one worker would do).
    pub fn new(config: AnalyzerConfig, workers: usize) -> AnalyzerState {
        AnalyzerState {
            config,
            workers,
            round: Mutex::new(()),
            admit: Mutex::new(AdmitState::default()),
            precise: Sharded::new(PRECISE_SHARDS, |_| Mutex::new(HashMap::new())),
            norm: Sharded::new(NORM_SHARDS, |_| Mutex::new(HashMap::new())),
            rec_overlaps: RwLock::new(Vec::new()),
        }
    }

    /// The configuration this state selects under.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Records admitted so far (post window/VC filter).
    pub fn jobs_admitted(&self) -> usize {
        let _g = self.round.lock();
        self.admit.lock().metas.len()
    }

    /// Records the filter rejected so far.
    pub fn jobs_skipped(&self) -> u64 {
        let _g = self.round.lock();
        self.admit.lock().skipped
    }

    /// Distinct precise signatures tracked.
    pub fn distinct_subgraphs(&self) -> usize {
        let _g = self.round.lock();
        self.precise.iter().map(|s| s.lock().len()).sum()
    }

    /// Normalized overlap groups currently live.
    pub fn groups_tracked(&self) -> usize {
        let _g = self.round.lock();
        self.norm.iter().map(|s| s.lock().len()).sum()
    }

    /// 128-bit digest of the mining aggregates, canonical (maps globally
    /// sorted, symbols hashed by string so interning order is irrelevant,
    /// property votes sorted by encoded design). Two states with the same
    /// fingerprint select identical views under the same config; the
    /// recovery CI gate asserts that re-folding the recovered repository
    /// reproduces the pre-crash analyzer exactly. Because ingest is a
    /// deterministic fold over the record stream (bit-identical whatever
    /// the thread count — see the module docs), recovery does not snapshot
    /// aggregates at all: it replays the recovered records from sequence 0.
    pub fn fingerprint(&self) -> Sig128 {
        use crate::codec::{put_opkind, put_props, put_symbol};
        use scope_common::codec::Enc;

        let _g = self.round.lock();
        let mut e = Enc::new();

        let admit = self.admit.lock();
        e.put_u32(admit.metas.len() as u32);
        for m in &admit.metas {
            e.put_u64(m.job.raw());
            e.put_u64(m.user.raw());
            e.put_u64(m.vc.raw());
            e.put_u64(m.template.raw());
            e.put_u64(m.latency.micros());
        }
        e.put_u64(admit.occurrences_total);
        e.put_u64(admit.skipped);
        let mut templates: Vec<_> = admit.template_times.iter().collect();
        templates.sort_by_key(|(t, _)| t.raw());
        e.put_u32(templates.len() as u32);
        for (t, times) in templates {
            e.put_u64(t.raw());
            e.put_u32(times.len() as u32);
            for (instance, at) in times {
                e.put_u64(*instance);
                e.put_u64(at.micros());
            }
        }
        let mut consumers: Vec<_> = admit.consumers.iter().collect();
        consumers.sort_by_key(|(s, _)| s.as_str());
        e.put_u32(consumers.len() as u32);
        for (tag, templates) in consumers {
            put_symbol(&mut e, *tag);
            e.put_u32(templates.len() as u32);
            for t in templates {
                e.put_u64(t.raw());
            }
        }
        drop(admit);

        let mut precise: Vec<(Sig128, u64, Option<Vec<u8>>)> = Vec::new();
        for shard in &self.precise {
            for (sig, acc) in shard.lock().iter() {
                let first = acc.first.as_ref().map(|f| {
                    let mut fe = Enc::new();
                    fe.put_u64(f.seq);
                    fe.put_u64(f.record_seq);
                    fe.put_u64(f.job.raw());
                    fe.put_u64(f.user.raw());
                    fe.put_u64(f.vc.raw());
                    fe.put_u64(f.template.raw());
                    fe.put_u64(f.job_cpu.micros());
                    fe.put_u64(f.precise.hi);
                    fe.put_u64(f.precise.lo);
                    fe.put_u64(f.normalized.hi);
                    fe.put_u64(f.normalized.lo);
                    put_opkind(&mut fe, f.root_kind);
                    fe.put_u64(f.num_nodes as u64);
                    fe.put_bool(f.has_user_code);
                    fe.put_u32(f.input_tags.len() as u32);
                    for &t in &f.input_tags {
                        put_symbol(&mut fe, t);
                    }
                    put_props(&mut fe, &f.props);
                    fe.put_u64(f.cum_cpu.micros());
                    fe.put_u64(f.out_rows);
                    fe.put_u64(f.out_bytes);
                    fe.buf
                });
                precise.push((*sig, acc.count, first));
            }
        }
        precise.sort_by_key(|(sig, ..)| *sig);
        e.put_u32(precise.len() as u32);
        for (sig, count, first) in &precise {
            e.put_u64(sig.hi);
            e.put_u64(sig.lo);
            e.put_u64(*count);
            match first {
                Some(bytes) => {
                    e.put_bool(true);
                    e.buf.extend_from_slice(bytes);
                }
                None => e.put_bool(false),
            }
        }

        let mut norms: Vec<(Sig128, Vec<u8>)> = Vec::new();
        for shard in &self.norm {
            for (sig, acc) in shard.lock().iter() {
                let mut ne = Enc::new();
                ne.put_u64(acc.first_seq);
                ne.put_u64(acc.last_seq);
                ne.put_u64(acc.sample_precise.hi);
                ne.put_u64(acc.sample_precise.lo);
                put_opkind(&mut ne, acc.root_kind);
                ne.put_u64(acc.num_nodes as u64);
                ne.put_bool(acc.has_user_code);
                ne.put_u32(acc.input_tags.len() as u32);
                for &t in &acc.input_tags {
                    put_symbol(&mut ne, t);
                }
                ne.put_u64(acc.occurrences);
                ne.put_u64(acc.instances);
                for set in [
                    {
                        let mut v: Vec<u64> = acc.jobs.iter().map(|x| x.raw()).collect();
                        v.sort_unstable();
                        v
                    },
                    {
                        let mut v: Vec<u64> = acc.users.iter().map(|x| x.raw()).collect();
                        v.sort_unstable();
                        v
                    },
                    {
                        let mut v: Vec<u64> = acc.vcs.iter().map(|x| x.raw()).collect();
                        v.sort_unstable();
                        v
                    },
                    {
                        let mut v: Vec<u64> = acc.templates.iter().map(|x| x.raw()).collect();
                        v.sort_unstable();
                        v
                    },
                ] {
                    ne.put_u32(set.len() as u32);
                    for raw in set {
                        ne.put_u64(raw);
                    }
                }
                for sum in [
                    acc.cum_cpu_sum,
                    acc.rows_sum,
                    acc.bytes_sum,
                    acc.job_cpu_sum,
                ] {
                    ne.put_u64((sum >> 64) as u64);
                    ne.put_u64(sum as u64);
                }
                let mut votes: Vec<(Vec<u8>, usize, u64)> = acc
                    .props_votes
                    .iter()
                    .map(|(props, vote)| {
                        let mut pe = Enc::new();
                        put_props(&mut pe, props);
                        (pe.buf, vote.count, vote.first_seq)
                    })
                    .collect();
                votes.sort();
                ne.put_u32(votes.len() as u32);
                for (props_bytes, count, first_seq) in votes {
                    ne.put_u32(props_bytes.len() as u32);
                    ne.buf.extend_from_slice(&props_bytes);
                    ne.put_u64(count as u64);
                    ne.put_u64(first_seq);
                }
                norms.push((*sig, ne.buf));
            }
        }
        norms.sort_by_key(|(sig, _)| *sig);
        e.put_u32(norms.len() as u32);
        for (sig, bytes) in &norms {
            e.put_u64(sig.hi);
            e.put_u64(sig.lo);
            e.buf.extend_from_slice(bytes);
        }

        let overlaps = self.rec_overlaps.read();
        e.put_u32(overlaps.len() as u32);
        for c in overlaps.iter() {
            e.put_u64(c.load(Ordering::Relaxed));
        }
        drop(overlaps);

        scope_common::hash::sip128(&e.buf)
    }

    fn admits(&self, r: &JobRecord) -> bool {
        r.submitted_at >= self.config.window_from
            && r.submitted_at < self.config.window_to
            && self
                .config
                .include_vcs
                .as_ref()
                .map(|inc| inc.contains(&r.vc))
                .unwrap_or(true)
            && !self.config.exclude_vcs.contains(&r.vc)
    }

    /// Folds a delta of new records into the state. Only the delta is
    /// touched; history lives entirely in the aggregates.
    pub fn ingest(&self, records: &[JobRecord]) -> IngestReport {
        let _g = self.round.lock();
        self.ingest_locked(records.iter())
    }

    /// [`AnalyzerState::ingest`] over borrowed records (the batch entry
    /// points hold `&[&JobRecord]`).
    pub fn ingest_refs<'a>(
        &self,
        records: impl IntoIterator<Item = &'a JobRecord>,
    ) -> IngestReport {
        let _g = self.round.lock();
        self.ingest_locked(records.into_iter())
    }

    fn ingest_locked<'a>(&self, records: impl Iterator<Item = &'a JobRecord>) -> IngestReport {
        let t_admit = std::time::Instant::now();
        let mut work: Vec<RecordCtx<'a>> = Vec::new();
        let mut skipped = 0usize;
        {
            let mut admit = self.admit.lock();
            let mut overlaps = self.rec_overlaps.write();
            for r in records {
                if !self.admits(r) {
                    admit.skipped += 1;
                    skipped += 1;
                    continue;
                }
                let record_seq = admit.metas.len() as u64;
                let base_seq = admit.occurrences_total;
                admit.occurrences_total += r.subgraphs.len() as u64;
                admit.metas.push(JobMeta {
                    job: r.job,
                    user: r.user,
                    vc: r.vc,
                    template: r.template,
                    latency: r.latency,
                });
                overlaps.push(AtomicU64::new(0));
                // Lineage observations: earliest submission per (template,
                // instance) — duplicate instances (baseline + enabled runs)
                // resolve deterministically to the min.
                let slot = admit
                    .template_times
                    .entry(r.template)
                    .or_default()
                    .entry(r.instance)
                    .or_insert(r.submitted_at);
                if r.submitted_at < *slot {
                    *slot = r.submitted_at;
                }
                for &tag in &r.tags {
                    let list = admit.consumers.entry(tag).or_default();
                    if !list.contains(&r.template) {
                        list.push(r.template);
                    }
                }
                work.push(RecordCtx {
                    record: r,
                    record_seq,
                    base_seq,
                    job: r.job,
                    user: r.user,
                    vc: r.vc,
                    template: r.template,
                    job_cpu: r.cpu_time,
                });
            }
        }
        let filter_wall = t_admit.elapsed();

        let t_fold = std::time::Instant::now();
        let workers = self.effective_workers(work.len());
        if workers <= 1 {
            let overlaps = self.rec_overlaps.read();
            for ctx in &work {
                self.fold_record(ctx, &overlaps);
            }
        } else {
            self.fold_parallel(&work, workers);
        }
        let fold_wall = t_fold.elapsed();

        IngestReport {
            admitted: work.len(),
            skipped,
            occurrences: work.iter().map(|w| w.record.subgraphs.len() as u64).sum(),
            filter_wall,
            fold_wall,
        }
    }

    fn effective_workers(&self, jobs: usize) -> usize {
        let configured = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        };
        configured.clamp(1, jobs.max(1))
    }

    /// Parallel fold: chunks of records dealt round-robin onto per-worker
    /// deques; idle workers steal from the back of a victim's (the
    /// `run_many` pool shape, without admission control — folding has no
    /// external side effects to bound).
    fn fold_parallel(&self, work: &[RecordCtx<'_>], workers: usize) {
        let chunks: Vec<std::ops::Range<usize>> = (0..work.len())
            .step_by(FOLD_CHUNK)
            .map(|lo| lo..(lo + FOLD_CHUNK).min(work.len()))
            .collect();
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, _) in chunks.iter().enumerate() {
            queues[i % workers].lock().push_back(i);
        }
        let chunks = &chunks;
        let queues = &queues;
        std::thread::scope(|scope| {
            for worker in 0..workers {
                scope.spawn(move || {
                    let overlaps = self.rec_overlaps.read();
                    while let Some(ci) = next_chunk(queues, worker) {
                        for ctx in &work[chunks[ci].clone()] {
                            self.fold_record(ctx, &overlaps);
                        }
                    }
                });
            }
        });
    }

    fn fold_record(&self, ctx: &RecordCtx<'_>, overlaps: &[AtomicU64]) {
        for (i, sub) in ctx.record.subgraphs.iter().enumerate() {
            let occ = OccView::from_sub(ctx, ctx.base_seq + i as u64, sub);
            self.fold_occurrence(occ, overlaps);
        }
    }

    /// One occurrence through the transition-flush accumulator: buffer at
    /// count 1, flush the buffered first plus this one at count 2, fold
    /// directly afterwards.
    fn fold_occurrence(&self, occ: OccView<'_>, overlaps: &[AtomicU64]) {
        let flushed: Option<Box<FirstOcc>>;
        let count;
        {
            let mut shard = self.precise.for_key(sig_key(occ.precise)).lock();
            let acc = shard.entry(occ.precise).or_insert(PreciseAcc {
                count: 0,
                first: None,
            });
            acc.count += 1;
            count = acc.count;
            if count == 1 {
                acc.first = Some(Box::new(occ.to_first()));
                return;
            }
            flushed = acc.first.take();
        }
        if let Some(first) = flushed {
            // This occurrence just proved the signature overlapping: the
            // buffered first occurrence enters the aggregates retroactively
            // and carries the new-instance increment.
            self.fold_norm(OccView::from_first(&first), true, overlaps);
        }
        self.fold_norm(occ, false, overlaps);
    }

    /// Applies one overlapping occurrence to its normalized accumulator.
    /// Every update commutes; see the module docs for the merge rules.
    fn fold_norm(&self, occ: OccView<'_>, new_instance: bool, overlaps: &[AtomicU64]) {
        overlaps[occ.record_seq as usize].fetch_add(1, Ordering::Relaxed);
        let mut shard = self.norm.for_key(sig_key(occ.normalized)).lock();
        let acc = shard.entry(occ.normalized).or_insert_with(NormAcc::new);
        acc.occurrences += 1;
        if new_instance {
            acc.instances += 1;
        }
        if occ.seq < acc.first_seq {
            acc.first_seq = occ.seq;
            acc.root_kind = occ.root_kind;
            acc.num_nodes = occ.num_nodes;
            acc.has_user_code = occ.has_user_code;
            acc.input_tags = occ.input_tags.to_vec();
        }
        if acc.occurrences == 1 || occ.seq > acc.last_seq {
            acc.last_seq = occ.seq;
            acc.sample_precise = occ.precise;
        }
        acc.jobs.insert(occ.job);
        acc.users.insert(occ.user);
        acc.vcs.insert(occ.vc);
        acc.templates.insert(occ.template);
        acc.cum_cpu_sum += occ.cum_cpu.micros() as u128;
        acc.rows_sum += occ.out_rows as u128;
        acc.bytes_sum += occ.out_bytes as u128;
        acc.job_cpu_sum += occ.job_cpu.micros() as u128;
        let vote = acc
            .props_votes
            .entry(Arc::clone(occ.props))
            .or_insert(PropsVote {
                count: 0,
                first_seq: occ.seq,
            });
        vote.count += 1;
        if occ.seq < vote.first_seq {
            vote.first_seq = occ.seq;
        }
    }

    /// Materializes the current overlap groups from the aggregates,
    /// deterministically ordered (utility descending, then signature).
    pub fn groups(&self) -> Vec<OverlapGroup> {
        let _g = self.round.lock();
        self.groups_locked()
    }

    fn groups_locked(&self) -> Vec<OverlapGroup> {
        let mut groups: Vec<OverlapGroup> = Vec::new();
        for shard in self.norm.iter() {
            let shard = shard.lock();
            for (&normalized, acc) in shard.iter() {
                let n = acc.occurrences.max(1) as u128;
                let mut props_votes: Vec<(Arc<PhysicalProps>, usize, u64)> = acc
                    .props_votes
                    .iter()
                    .map(|(p, v)| (Arc::clone(p), v.count, v.first_seq))
                    .collect();
                props_votes
                    .sort_by_key(|(_, count, first_seq)| (std::cmp::Reverse(*count), *first_seq));
                let mut jobs: Vec<JobId> = acc.jobs.iter().copied().collect();
                jobs.sort_unstable();
                let mut users: Vec<UserId> = acc.users.iter().copied().collect();
                users.sort_unstable();
                let mut vcs: Vec<VcId> = acc.vcs.iter().copied().collect();
                vcs.sort_unstable();
                let mut templates: Vec<TemplateId> = acc.templates.iter().copied().collect();
                templates.sort_unstable();
                groups.push(OverlapGroup {
                    normalized,
                    sample_precise: acc.sample_precise,
                    occurrences: acc.occurrences,
                    instances: acc.instances,
                    jobs,
                    users,
                    vcs,
                    templates,
                    root_kind: acc.root_kind,
                    num_nodes: acc.num_nodes,
                    has_user_code: acc.has_user_code,
                    input_tags: acc.input_tags.clone(),
                    avg_cumulative_cpu: SimDuration::from_micros((acc.cum_cpu_sum / n) as u64),
                    avg_out_rows: (acc.rows_sum / n) as u64,
                    avg_out_bytes: (acc.bytes_sum / n) as u64,
                    avg_job_cpu: SimDuration::from_micros((acc.job_cpu_sum / n) as u64),
                    props_votes: props_votes
                        .into_iter()
                        .map(|(p, count, _)| (p, count))
                        .collect(),
                });
            }
        }
        groups.sort_by(|a, b| {
            b.utility()
                .cmp(&a.utility())
                .then(a.normalized.cmp(&b.normalized))
        });
        groups
    }

    /// Workload-wide overlap metrics from the maintained aggregates.
    pub fn metrics(&self) -> OverlapMetrics {
        let _g = self.round.lock();
        self.metrics_locked()
    }

    fn metrics_locked(&self) -> OverlapMetrics {
        let admit = self.admit.lock();
        let overlaps = self.rec_overlaps.read();
        let mut m = OverlapMetrics {
            jobs_total: admit.metas.len(),
            occurrences_total: admit.occurrences_total,
            ..Default::default()
        };
        for shard in self.precise.iter() {
            let shard = shard.lock();
            m.subgraphs_total += shard.len();
            for acc in shard.values() {
                if acc.count >= 2 {
                    m.subgraphs_overlapping += 1;
                    m.overlap_frequencies.push(acc.count);
                }
            }
        }
        // Deterministic regardless of shard layout and fold order.
        m.overlap_frequencies.sort_unstable_by(|a, b| b.cmp(a));
        for shard in self.norm.iter() {
            let shard = shard.lock();
            for acc in shard.values() {
                m.occurrences_overlapping += acc.occurrences;
                for &tag in &acc.input_tags {
                    *m.per_input.entry(tag).or_default() += acc.occurrences;
                }
            }
        }
        let mut users: HashSet<UserId> = HashSet::new();
        let mut users_overlapping: HashSet<UserId> = HashSet::new();
        for (meta, ov) in admit.metas.iter().zip(overlaps.iter()) {
            let job_overlaps = ov.load(Ordering::Relaxed);
            users.insert(meta.user);
            let entry = m.vc_jobs.entry(meta.vc).or_default();
            entry.0 += 1;
            if job_overlaps > 0 {
                m.jobs_overlapping += 1;
                users_overlapping.insert(meta.user);
                entry.1 += 1;
            }
            *m.per_job.entry(meta.job).or_default() += job_overlaps;
            *m.per_user.entry(meta.user).or_default() += job_overlaps;
            *m.per_vc.entry(meta.vc).or_default() += job_overlaps;
        }
        m.users_total = users.len();
        m.users_overlapping = users_overlapping.len();
        m
    }

    fn lineage_locked(&self) -> expiry::LineageTracker {
        let admit = self.admit.lock();
        expiry::LineageTracker::from_observations(&admit.template_times, admit.consumers.clone())
    }

    /// Re-runs view selection from the maintained aggregates: groups →
    /// policy/constraints (budget-aware) → physical design → lineage TTLs →
    /// coordination hints. No record is re-read.
    pub fn select(&self) -> Result<AnalysisOutcome> {
        let _g = self.round.lock();
        self.select_locked()
    }

    fn select_locked(&self) -> Result<AnalysisOutcome> {
        let start = std::time::Instant::now();
        let mut phase_times = AnalysisPhaseTimes::default();

        let phase = std::time::Instant::now();
        let groups = self.groups_locked();
        let metrics = self.metrics_locked();
        let lineage = self.lineage_locked();
        phase_times.mining = phase.elapsed();

        let phase = std::time::Instant::now();
        let chosen = selection::select_budgeted(
            &groups,
            &self.config.policy,
            &self.config.constraints,
            self.config.storage_budget_bytes,
        );
        phase_times.selection = phase.elapsed();

        let phase = std::time::Instant::now();
        let mut selected = Vec::with_capacity(chosen.len());
        for g in &chosen {
            let props = physical::choose_design(g);
            let ttl = lineage.ttl_for_tags(&g.input_tags, self.config.default_ttl);
            selected.push(SelectedView {
                annotation: scope_engine::optimizer::Annotation {
                    normalized: g.normalized,
                    props,
                    ttl,
                    avg_cpu: g.avg_cumulative_cpu,
                    avg_rows: g.avg_out_rows,
                    avg_bytes: g.avg_out_bytes,
                },
                input_tags: g.input_tags.clone(),
                utility: g.utility(),
                frequency: g.per_instance_frequency(),
                precise_last_seen: g.sample_precise,
            });
        }
        let order_hints = {
            let admit = self.admit.lock();
            coordination::order_hints_from_jobs(
                &chosen,
                admit.metas.iter().map(|m| (m.job, m.template, m.latency)),
            )
        };
        phase_times.design = phase.elapsed();

        let jobs_analyzed = self.admit.lock().metas.len();
        Ok(AnalysisOutcome {
            selected,
            groups,
            metrics,
            order_hints,
            wall_time: start.elapsed(),
            phase_times,
            jobs_analyzed,
        })
    }

    /// One full round under a single lock acquisition: ingest the delta,
    /// then select. Returns the ingest report alongside the outcome.
    pub fn round(&self, records: &[JobRecord]) -> Result<(IngestReport, AnalysisOutcome)> {
        let _g = self.round.lock();
        let report = self.ingest_locked(records.iter());
        let mut outcome = self.select_locked()?;
        outcome.phase_times.filter = report.filter_wall;
        outcome.phase_times.mining += report.fold_wall;
        Ok((report, outcome))
    }
}

/// Pops the next chunk index: own deque from the front, else steal from the
/// back of the first non-empty victim.
fn next_chunk(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<usize> {
    if let Some(idx) = queues[own].lock().pop_front() {
        return Some(idx);
    }
    for offset in 1..queues.len() {
        let victim = (own + offset) % queues.len();
        if let Some(idx) = queues[victim].lock().pop_back() {
            return Some(idx);
        }
    }
    None
}

/// What changed between two consecutive analyzer rounds (admin drill-down).
#[derive(Clone, Debug)]
pub struct RoundDelta {
    /// Round number (1-based).
    pub round: u64,
    /// Records ingested by this round.
    pub ingested_jobs: usize,
    /// Total records admitted across all rounds.
    pub jobs_total: usize,
    /// Overlap groups live after this round.
    pub groups_total: usize,
    /// Views selected by this round.
    pub selected_total: usize,
    /// Views selected now but not in the previous round.
    pub newly_selected: Vec<Sig128>,
    /// Views selected previously but dropped now.
    pub dropped: Vec<Sig128>,
    /// Wall time of the delta ingest.
    pub ingest_wall: Duration,
    /// Wall time of selection from aggregates.
    pub select_wall: Duration,
}

/// The analyzer as a *service*: an [`AnalyzerState`] plus a cursor into the
/// workload repository, so each round pulls exactly the records that
/// arrived since the last one. The pipeline's record stage hands new
/// records over as they are recorded (`CloudViews::analyzer`), keeping the
/// state warm between rounds.
pub struct IncrementalAnalyzer {
    state: AnalyzerState,
    /// Index of the first repository record not yet ingested.
    cursor: Mutex<usize>,
    rounds: AtomicU64,
    last_delta: Mutex<Option<RoundDelta>>,
    prev_selected: Mutex<Vec<Sig128>>,
}

impl IncrementalAnalyzer {
    /// A fresh service selecting under `config`, folding with `workers`
    /// threads (`0` = one per core).
    pub fn new(config: AnalyzerConfig, workers: usize) -> IncrementalAnalyzer {
        IncrementalAnalyzer {
            state: AnalyzerState::new(config, workers),
            cursor: Mutex::new(0),
            rounds: AtomicU64::new(0),
            last_delta: Mutex::new(None),
            prev_selected: Mutex::new(Vec::new()),
        }
    }

    /// The underlying state (introspection/dashboards).
    pub fn state(&self) -> &AnalyzerState {
        &self.state
    }

    /// Completed rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// The last round's delta, if any round has run.
    pub fn last_delta(&self) -> Option<RoundDelta> {
        self.last_delta.lock().clone()
    }

    /// The normalized signatures selected by the most recent round (the
    /// baseline the next round diffs against). Persisted in snapshots so a
    /// recovered analyzer's first round reports newly/dropped views against
    /// the pre-crash selection instead of against an empty set.
    pub fn prev_selected(&self) -> Vec<Sig128> {
        self.prev_selected.lock().clone()
    }

    /// Restores the previous-round selection baseline (recovery only).
    /// The round counter and last delta are *not* restored — they are
    /// process-local reporting, reset to zero/`None` on restart.
    pub fn set_prev_selected(&self, selected: Vec<Sig128>) {
        *self.prev_selected.lock() = selected;
    }

    /// Ingests any repository records that arrived since the last call.
    /// Cheap when nothing is new; called by the pipeline's record stage.
    pub fn absorb(&self, repo: &WorkloadRepository) -> IngestReport {
        let mut cursor = self.cursor.lock();
        repo.with_records(|all| {
            if *cursor >= all.len() {
                return IngestReport::default();
            }
            let report = self.state.ingest(&all[*cursor..]);
            *cursor = all.len();
            report
        })
    }

    /// One analyzer round: absorb the repository delta, re-select from the
    /// aggregates, and publish the round delta.
    pub fn round(&self, repo: &WorkloadRepository) -> Result<AnalysisOutcome> {
        let t_ingest = std::time::Instant::now();
        let report = self.absorb(repo);
        let ingest_wall = t_ingest.elapsed();

        let t_select = std::time::Instant::now();
        let mut outcome = self.state.select()?;
        let select_wall = t_select.elapsed();
        outcome.phase_times.filter = report.filter_wall;
        outcome.phase_times.mining += report.fold_wall;
        outcome.wall_time = ingest_wall + select_wall;

        let round = self.rounds.fetch_add(1, Ordering::Relaxed) + 1;
        let selected_now: Vec<Sig128> = outcome
            .selected
            .iter()
            .map(|s| s.annotation.normalized)
            .collect();
        let mut prev = self.prev_selected.lock();
        let prev_set: HashSet<Sig128> = prev.iter().copied().collect();
        let now_set: HashSet<Sig128> = selected_now.iter().copied().collect();
        let delta = RoundDelta {
            round,
            ingested_jobs: report.admitted,
            jobs_total: outcome.jobs_analyzed,
            groups_total: outcome.groups.len(),
            selected_total: selected_now.len(),
            newly_selected: selected_now
                .iter()
                .filter(|s| !prev_set.contains(s))
                .copied()
                .collect(),
            dropped: prev
                .iter()
                .filter(|s| !now_set.contains(s))
                .copied()
                .collect(),
            ingest_wall,
            select_wall,
        };
        *prev = selected_now;
        *self.last_delta.lock() = Some(delta);
        Ok(outcome)
    }
}
