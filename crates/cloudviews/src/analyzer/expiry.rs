//! View expiry from input lineage (paper Section 5.4).
//!
//! Removing views after every recurring instance is wasteful because hourly
//! outputs feed weekly and monthly jobs. "A better option is to track the
//! lineage of the inputs of the view, i.e., for each of the view inputs,
//! check the longest duration that it gets used by any of the recurring
//! jobs. The maximum of all such durations gives a good estimate of the
//! view expiry."
//!
//! [`LineageTracker`] rebuilds that lineage from the workload repository:
//! for every input tag, the recurrence *period* of each consuming template
//! (observed gap between its instances); a view over some inputs expires
//! after the slowest consumer's period (times a safety factor).

use std::collections::{BTreeMap, HashMap};

use scope_common::ids::TemplateId;
use scope_common::intern::Symbol;
use scope_common::time::{SimDuration, SimTime};
use scope_engine::repo::JobRecord;

/// Safety multiplier over the observed consumer period.
const SAFETY_FACTOR: f64 = 2.0;

/// Input-tag lineage: who consumes each input, and how often they recur.
#[derive(Debug, Default)]
pub struct LineageTracker {
    /// Per-template observed recurrence period.
    template_period: HashMap<TemplateId, SimDuration>,
    /// Input tag → consuming templates.
    consumers: HashMap<Symbol, Vec<TemplateId>>,
}

impl LineageTracker {
    /// Builds lineage from repository records.
    pub fn from_records(records: &[&JobRecord]) -> LineageTracker {
        // Observed submission times per template instance (duplicate
        // instance observations — e.g. a baseline and an enabled run —
        // resolve deterministically to the earliest submission).
        let mut times: HashMap<TemplateId, BTreeMap<u64, SimTime>> = HashMap::new();
        let mut consumers: HashMap<Symbol, Vec<TemplateId>> = HashMap::new();
        for r in records {
            let slot = times
                .entry(r.template)
                .or_default()
                .entry(r.instance)
                .or_insert(r.submitted_at);
            if r.submitted_at < *slot {
                *slot = r.submitted_at;
            }
            for &tag in &r.tags {
                let list = consumers.entry(tag).or_default();
                if !list.contains(&r.template) {
                    list.push(r.template);
                }
            }
        }
        Self::from_observations(&times, consumers)
    }

    /// Builds lineage from already-maintained observations: per-template
    /// instance→submission maps plus the tag→consumers index. This is what
    /// the incremental analyzer accumulates at ingest, so no record replay
    /// is needed at selection time.
    pub fn from_observations(
        times: &HashMap<TemplateId, BTreeMap<u64, SimTime>>,
        consumers: HashMap<Symbol, Vec<TemplateId>>,
    ) -> LineageTracker {
        let mut template_period = HashMap::new();
        for (template, observed) in times {
            // Max gap between consecutive instances, normalized by the
            // instance-index gap (a weekly job analyzed over one day shows
            // no second instance — handled by the default TTL fallback).
            let mut period = SimDuration::ZERO;
            let mut prev: Option<(u64, SimTime)> = None;
            for (&inst, &at) in observed {
                if let Some((i0, t0)) = prev {
                    let gap = at.since(t0);
                    let steps = (inst - i0).max(1);
                    let per_step = SimDuration::from_micros(gap.micros() / steps);
                    period = period.max(per_step);
                }
                prev = Some((inst, at));
            }
            if period > SimDuration::ZERO {
                template_period.insert(*template, period);
            }
        }
        LineageTracker {
            template_period,
            consumers,
        }
    }

    /// The recurrence period of a template, if at least two instances were
    /// observed.
    pub fn template_period(&self, template: TemplateId) -> Option<SimDuration> {
        self.template_period.get(&template).copied()
    }

    /// TTL for a view over the given input tags: the slowest consuming
    /// template's period times a safety factor; `default_ttl` when no
    /// consumer period is known.
    pub fn ttl_for_tags(&self, tags: &[Symbol], default_ttl: SimDuration) -> SimDuration {
        let mut max_period = SimDuration::ZERO;
        for tag in tags {
            if let Some(templates) = self.consumers.get(tag) {
                for t in templates {
                    if let Some(p) = self.template_period.get(t) {
                        max_period = max_period.max(*p);
                    }
                }
            }
        }
        if max_period == SimDuration::ZERO {
            default_ttl
        } else {
            max_period.mul_f64(SAFETY_FACTOR).max(default_ttl)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::ids::{ClusterId, JobId, UserId, VcId};

    fn record(template: u64, instance: u64, at_secs: u64, tags: &[&str]) -> JobRecord {
        JobRecord {
            job: JobId::new(template * 100 + instance),
            cluster: ClusterId::new(0),
            vc: VcId::new(0),
            user: UserId::new(0),
            template: TemplateId::new(template),
            instance,
            submitted_at: SimTime(at_secs * 1_000_000),
            latency: SimDuration::from_secs(1),
            cpu_time: SimDuration::from_secs(4),
            tags: tags.iter().map(|s| Symbol::intern(s)).collect(),
            subgraphs: vec![],
        }
    }

    const HOUR: u64 = 3_600;
    const DAY: u64 = 86_400;

    #[test]
    fn period_mined_from_instances() {
        let records = [
            record(1, 0, 0, &["in/a"]),
            record(1, 1, HOUR, &["in/a"]),
            record(1, 2, 2 * HOUR, &["in/a"]),
        ];
        let refs: Vec<&JobRecord> = records.iter().collect();
        let lineage = LineageTracker::from_records(&refs);
        assert_eq!(
            lineage.template_period(TemplateId::new(1)),
            Some(SimDuration::from_secs(HOUR))
        );
    }

    #[test]
    fn ttl_uses_slowest_consumer() {
        // Hourly template 1 and daily template 2 both consume in/a.
        let records = [
            record(1, 0, 0, &["in/a"]),
            record(1, 1, HOUR, &["in/a"]),
            record(2, 0, 0, &["in/a", "in/b"]),
            record(2, 1, DAY, &["in/a", "in/b"]),
        ];
        let refs: Vec<&JobRecord> = records.iter().collect();
        let lineage = LineageTracker::from_records(&refs);
        let ttl = lineage.ttl_for_tags(&["in/a".into()], SimDuration::from_secs(HOUR));
        // Daily consumer wins: TTL = 2 days, not 2 hours.
        assert_eq!(ttl, SimDuration::from_secs(2 * DAY));
        // A tag only the hourly template consumes gets the smaller TTL,
        // floored at the default.
        let ttl_b = lineage.ttl_for_tags(&["in/b".into()], SimDuration::from_secs(HOUR));
        assert_eq!(ttl_b, SimDuration::from_secs(2 * DAY));
    }

    #[test]
    fn unknown_tags_get_default() {
        let lineage = LineageTracker::from_records(&[]);
        let ttl = lineage.ttl_for_tags(&["never/seen".into()], SimDuration::from_secs(42));
        assert_eq!(ttl, SimDuration::from_secs(42));
    }

    #[test]
    fn single_instance_templates_fall_back() {
        let records = [record(1, 0, 0, &["in/a"])];
        let refs: Vec<&JobRecord> = records.iter().collect();
        let lineage = LineageTracker::from_records(&refs);
        assert_eq!(lineage.template_period(TemplateId::new(1)), None);
        assert_eq!(
            lineage.ttl_for_tags(&["in/a".into()], SimDuration::from_secs(7)),
            SimDuration::from_secs(7)
        );
    }

    #[test]
    fn missing_instances_normalize_gap() {
        // Instances 0 and 4 observed, 4 hours apart ⇒ hourly period.
        let records = [
            record(1, 0, 0, &["in/a"]),
            record(1, 4, 4 * HOUR, &["in/a"]),
        ];
        let refs: Vec<&JobRecord> = records.iter().collect();
        let lineage = LineageTracker::from_records(&refs);
        assert_eq!(
            lineage.template_period(TemplateId::new(1)),
            Some(SimDuration::from_secs(HOUR))
        );
    }

    #[test]
    fn ttl_never_below_default() {
        let records = [
            record(1, 0, 0, &["in/a"]),
            record(1, 1, 60, &["in/a"]), // minutely recurrence
        ];
        let refs: Vec<&JobRecord> = records.iter().collect();
        let lineage = LineageTracker::from_records(&refs);
        let ttl = lineage.ttl_for_tags(&["in/a".into()], SimDuration::from_secs(DAY));
        assert_eq!(ttl, SimDuration::from_secs(DAY));
    }
}
