//! CLOUDVIEWS — automatic computation reuse in an analytics job service.
//!
//! Reproduction of *"Computation Reuse in Analytics Job Service at
//! Microsoft"* (Jindal et al., SIGMOD 2018). CloudViews detects overlapping
//! subgraph computations across the jobs of a shared analytics service,
//! materializes the most valuable ones as views — **online**, as part of
//! ordinary query processing — and transparently rewrites future jobs to
//! reuse them. No user script changes; correctness guaranteed by precise
//! plan signatures that pin input GUIDs, parameters, and user-code versions.
//!
//! The crate mirrors the paper's two-sided architecture (Figure 6):
//!
//! * **[`analyzer`]** — the periodic workload analyzer: mines overlapping
//!   computations from the workload repository's reconciled runtime
//!   statistics (the feedback loop of Section 5.1), selects the views to
//!   materialize under pluggable policies and constraints (Section 5.2),
//!   picks each view's physical design from observed output properties
//!   (Section 5.3), estimates expiry from input lineage (Section 5.4), and
//!   emits job-submission-order hints (Section 6.5).
//! * **[`metadata`]** — the always-on metadata service (Section 6.1): a
//!   tag-inverted index answering one lookup per job, exclusive build locks
//!   with mined expiries, and the registry of currently materialized views.
//! * **[`runtime`]** — the per-job runtime path (Sections 6.2–6.4): fetch
//!   annotations, optimize with reuse + follow-up materialization, execute,
//!   publish views early (before job completion), and record the run back
//!   into the repository.
//! * **[`reporting`]** — the admin dashboards (Section 5.5): overlap
//!   summaries, top-overlap drill-downs, and impact reports.
//! * **[`admin`]** — operator tooling: storage reclamation with the §5.4
//!   min-objective eviction, selection explanations, and view provenance
//!   traces (the §4 debuggability requirement).
//!
//! # Quickstart
//!
//! ```no_run
//! use cloudviews::{CloudViews, analyzer::AnalyzerConfig};
//! use scope_engine::storage::StorageManager;
//! use std::sync::Arc;
//!
//! let service = CloudViews::builder(Arc::new(StorageManager::new())).build();
//! // 1. run jobs with CloudViews disabled to fill the workload repository,
//! // 2. run the analyzer,
//! // 3. run the next recurring instance with CloudViews enabled.
//! let analysis = service.analyze(&AnalyzerConfig::default()).unwrap();
//! service.install_analysis(&analysis);
//! // Observability: every run lands in `service.telemetry`.
//! println!("{}", service.telemetry.metrics.prometheus_text());
//! ```

pub mod admin;
pub mod analyzer;
pub mod api;
pub mod codec;
pub mod faults;
pub mod metadata;
pub mod pipeline;
pub mod reporting;
pub mod runtime;
pub mod sharing;
pub mod store;

pub use analyzer::{
    AnalysisOutcome, AnalyzerConfig, AnalyzerState, IncrementalAnalyzer, IngestReport, RoundDelta,
    SelectedView, SelectionPolicy,
};
pub use api::{LookupRequest, ProposeRequest, ReportRequest};
pub use faults::{FaultInjector, FaultPlan, FaultSite, InjectedFaults, ScriptedFault};
pub use metadata::{LockOutcome, LookupResponse, MetadataService, MetadataStats, PurgeSweep};
pub use pipeline::PipelineOptions;
pub use runtime::{
    CloudViews, CloudViewsBuilder, DegradationPolicy, JobFaultReport, JobRunReport, PurgeReport,
    RunMode,
};
pub use scope_signature::{TemplateCache, TemplateCacheStats};
pub use sharing::{JobArrival, SharingConfig, SharingSummary, WindowOutcome};
pub use store::{DurableStore, RecoveredState, WalEvent};
