//! Admin reporting (paper Sections 4 requirement 7 and 5.5).
//!
//! The production system ships a Power BI dashboard; here the same content
//! renders as plain-text tables: workload overlap summaries, the
//! top-overlapping-computations drill-down, and before/after impact
//! reports. The figure-regeneration harness in `cloudviews-bench` builds on
//! these series.

use scope_common::time::SimDuration;
use scope_plan::OpKind;

use crate::analyzer::{OverlapGroup, OverlapMetrics};
use crate::runtime::{JobFaultReport, JobRunReport};

/// One-line overlap summary (the Figure 1 bars for one cluster).
pub fn overlap_summary(name: &str, m: &OverlapMetrics) -> String {
    format!(
        "{name}\tjobs={} overlapping_jobs={:.1}% users={:.1}% subgraphs={:.1}%",
        m.jobs_total,
        m.pct_jobs_overlapping(),
        m.pct_users_overlapping(),
        m.pct_subgraphs_overlapping(),
    )
}

/// Drill-down of the top-N overlapping computations (the paper's top-100
/// dashboard). TSV with one row per computation.
pub fn top_overlaps(groups: &[OverlapGroup], n: usize) -> String {
    let mut out = String::from(
        "rank\tnormalized\troot\tnodes\tfreq\tjobs\tusers\tavg_cpu\tavg_bytes\tcost_ratio\tutility\n",
    );
    for (i, g) in groups.iter().take(n).enumerate() {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.3}\t{}\n",
            i + 1,
            g.normalized.short(),
            g.root_kind,
            g.num_nodes,
            g.per_instance_frequency(),
            g.jobs.len(),
            g.users.len(),
            g.avg_cumulative_cpu,
            g.avg_out_bytes,
            g.cost_ratio(),
            g.utility(),
        ));
    }
    out
}

/// Operator-wise share of overlapping subgraphs (Figure 4a): percentage of
/// overlapping-subgraph occurrences rooted at each operator kind.
pub fn operator_breakdown(groups: &[OverlapGroup]) -> Vec<(OpKind, f64)> {
    let total: u64 = groups.iter().map(|g| g.occurrences).sum();
    let mut out: Vec<(OpKind, f64)> = OpKind::ALL
        .iter()
        .map(|&kind| {
            let count: u64 = groups
                .iter()
                .filter(|g| g.root_kind == kind)
                .map(|g| g.occurrences)
                .sum();
            (kind, 100.0 * count as f64 / total.max(1) as f64)
        })
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// Before/after impact of one job set (the Figures 11/12 tables).
pub fn impact_report(baseline: &[JobRunReport], enabled: &[JobRunReport]) -> String {
    assert_eq!(baseline.len(), enabled.len(), "job sets must align");
    let mut out =
        String::from("job\tbase_latency_s\tcv_latency_s\tlat_change%\tbase_cpu_s\tcv_cpu_s\tcpu_change%\tbuilt\treused\n");
    let mut lat_b = SimDuration::ZERO;
    let mut lat_c = SimDuration::ZERO;
    let mut cpu_b = SimDuration::ZERO;
    let mut cpu_c = SimDuration::ZERO;
    for (b, e) in baseline.iter().zip(enabled) {
        lat_b += b.latency;
        lat_c += e.latency;
        cpu_b += b.cpu_time;
        cpu_c += e.cpu_time;
        out.push_str(&format!(
            "{}\t{:.2}\t{:.2}\t{:+.1}\t{:.2}\t{:.2}\t{:+.1}\t{}\t{}\n",
            b.job,
            b.latency.as_secs_f64(),
            e.latency.as_secs_f64(),
            pct_change(b.latency, e.latency),
            b.cpu_time.as_secs_f64(),
            e.cpu_time.as_secs_f64(),
            pct_change(b.cpu_time, e.cpu_time),
            e.views_built.len(),
            e.views_reused.len(),
        ));
    }
    out.push_str(&format!(
        "TOTAL\t{:.2}\t{:.2}\t{:+.1}\t{:.2}\t{:.2}\t{:+.1}\t-\t-\n",
        lat_b.as_secs_f64(),
        lat_c.as_secs_f64(),
        pct_change(lat_b, lat_c),
        cpu_b.as_secs_f64(),
        cpu_c.as_secs_f64(),
        pct_change(cpu_b, cpu_c),
    ));
    out
}

/// Percentage improvement (positive = CloudViews faster), the metric of
/// Figures 11–13.
pub fn pct_change(baseline: SimDuration, enabled: SimDuration) -> f64 {
    let b = baseline.micros() as f64;
    if b == 0.0 {
        return 0.0;
    }
    100.0 * (b - enabled.micros() as f64) / b
}

/// Aggregate improvement stats over aligned runs: (average per-job
/// improvement %, overall/total improvement %).
pub fn improvement_stats(
    baseline: &[JobRunReport],
    enabled: &[JobRunReport],
    metric: fn(&JobRunReport) -> SimDuration,
) -> (f64, f64) {
    assert_eq!(baseline.len(), enabled.len());
    let per_job: Vec<f64> = baseline
        .iter()
        .zip(enabled)
        .map(|(b, e)| pct_change(metric(b), metric(e)))
        .collect();
    let avg = per_job.iter().sum::<f64>() / per_job.len().max(1) as f64;
    let total_b: SimDuration = baseline.iter().map(metric).sum();
    let total_e: SimDuration = enabled.iter().map(metric).sum();
    (avg, pct_change(total_b, total_e))
}

/// Sum of the per-job fault/degradation counters across a run set (the
/// aggregate row of the fault dashboard).
pub fn fault_totals(reports: &[JobRunReport]) -> JobFaultReport {
    let mut total = JobFaultReport::default();
    for r in reports {
        total.accumulate(&r.faults);
    }
    total
}

/// Per-job fault and degradation drill-down. TSV with one row per job that
/// observed any fault, plus a TOTAL row; "no faults observed" when clean.
pub fn fault_report(reports: &[JobRunReport]) -> String {
    let total = fault_totals(reports);
    if !total.any() {
        return String::from("no faults observed\n");
    }
    let mut out = String::from(
        "job\tlookup_faults\tretries\tbaseline_fallback\tpropose_faults\t\
         view_fallbacks\tdead_unregistered\tbuilder_crashes\treport_faults\t\
         delayed_pubs\tdegraded_s\n",
    );
    let mut row = |label: &str, f: &JobFaultReport| {
        out.push_str(&format!(
            "{label}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.3}\n",
            f.lookup_faults,
            f.lookup_retries,
            if f.fell_back_to_baseline { "yes" } else { "no" },
            f.propose_faults,
            f.view_read_fallbacks,
            f.dead_views_unregistered,
            f.builder_crashes,
            f.report_faults,
            f.delayed_publications,
            f.degraded_latency.as_secs_f64(),
        ));
    };
    for r in reports.iter().filter(|r| r.faults.any()) {
        row(&r.job.to_string(), &r.faults);
    }
    row("TOTAL", &total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::hash::sip128;
    use scope_common::ids::JobId;
    use scope_common::time::SimTime;
    use std::collections::HashMap;

    fn report(job: u64, latency_s: f64, cpu_s: f64, built: usize, reused: usize) -> JobRunReport {
        JobRunReport {
            job: JobId::new(job),
            started_at: SimTime::ZERO,
            latency: SimDuration::from_secs_f64(latency_s),
            cpu_time: SimDuration::from_secs_f64(cpu_s),
            lookup_latency: SimDuration::ZERO,
            views_built: (0..built).map(|i| sip128(&[i as u8])).collect(),
            views_reused: (0..reused).map(|i| sip128(&[100 + i as u8])).collect(),
            optimizer: Default::default(),
            output_checksums: HashMap::new(),
            output_rows: HashMap::new(),
            faults: JobFaultReport::default(),
        }
    }

    #[test]
    fn pct_change_signs() {
        let fast = SimDuration::from_secs(5);
        let slow = SimDuration::from_secs(10);
        assert!(pct_change(slow, fast) > 0.0); // improvement
        assert!(pct_change(fast, slow) < 0.0); // regression
        assert_eq!(pct_change(SimDuration::ZERO, fast), 0.0);
        assert!((pct_change(slow, fast) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn impact_report_totals() {
        let base = vec![report(1, 10.0, 40.0, 0, 0), report(2, 10.0, 40.0, 0, 0)];
        let cv = vec![report(1, 12.0, 44.0, 1, 0), report(2, 4.0, 16.0, 0, 1)];
        let text = impact_report(&base, &cv);
        assert!(text.contains("TOTAL"));
        assert!(text.contains("job1"));
        // Total latency: 20 -> 16 = +20% improvement.
        assert!(text.contains("+20.0"));
    }

    #[test]
    fn improvement_stats_avg_vs_overall() {
        let base = vec![report(1, 10.0, 10.0, 0, 0), report(2, 100.0, 100.0, 0, 0)];
        let cv = vec![report(1, 5.0, 5.0, 0, 1), report(2, 100.0, 100.0, 0, 0)];
        let (avg, overall) = improvement_stats(&base, &cv, |r| r.latency);
        assert!((avg - 25.0).abs() < 1e-9); // (50% + 0%) / 2
        assert!((overall - (110.0 - 105.0) / 110.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn fault_report_renders_and_totals() {
        let mut clean = report(1, 1.0, 1.0, 0, 0);
        assert_eq!(
            fault_report(std::slice::from_ref(&clean)),
            "no faults observed\n"
        );

        clean.faults.lookup_faults = 2;
        clean.faults.lookup_retries = 2;
        clean.faults.fell_back_to_baseline = true;
        let mut crashed = report(2, 1.0, 1.0, 1, 0);
        crashed.faults.builder_crashes = 1;
        crashed.faults.report_faults = 1;
        let quiet = report(3, 1.0, 1.0, 0, 0);

        let reports = vec![clean, crashed, quiet];
        let totals = fault_totals(&reports);
        assert_eq!(totals.lookup_faults, 2);
        assert_eq!(totals.builder_crashes, 1);
        assert_eq!(totals.call_faults(), 4);
        assert!(totals.fell_back_to_baseline);

        let text = fault_report(&reports);
        assert!(text.contains("job1\t2\t2\tyes"), "{text}");
        assert!(text.contains("job2\t"), "{text}");
        assert!(!text.contains("job3\t"), "quiet jobs are elided: {text}");
        assert!(text.contains("TOTAL\t2\t2\tyes"), "{text}");
    }

    #[test]
    fn summary_and_drilldown_render() {
        use crate::analyzer::testutil::baseline_run;
        let (repo, ..) = baseline_run(1, 5);
        let records = repo.records();
        let refs: Vec<_> = records.iter().collect();
        let groups = crate::analyzer::mine_overlaps(&refs);
        let metrics = crate::analyzer::overlap_metrics(&refs);
        let line = overlap_summary("cluster1", &metrics);
        assert!(line.starts_with("cluster1\t"));
        assert!(line.contains('%'));
        let table = top_overlaps(&groups, 10);
        assert!(table.lines().count() >= 2);
        let breakdown = operator_breakdown(&groups);
        assert_eq!(breakdown.len(), 26);
        let total: f64 = breakdown.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-6, "{total}");
        // Sorted descending.
        for w in breakdown.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
