//! The settled client-visible request surface of the metadata service.
//!
//! Every fallible entry point of [`MetadataService`](crate::MetadataService)
//! takes one of the typed request structs below instead of a growing list
//! of positional arguments. The same structs ride the wire protocol
//! (`scope-net`), so the in-process facade and remote clients cannot drift:
//! a field added here is a field every caller — local or networked — has to
//! account for.
//!
//! All three requests are **pinned-time**: they carry the submission time
//! (`at`) the service judges visibility and lock expiry against, making the
//! PR-6 clock-pinning discipline the only path. Callers that genuinely want
//! "now" use the thin default-now wrappers on the service
//! ([`relevant_views_for`](crate::MetadataService::relevant_views_for),
//! [`propose_now`](crate::MetadataService::propose_now)), which construct a
//! request pinned at the service clock's current reading.
//!
//! Each request also names the submitting virtual cluster (`vc`). The
//! in-process facade ignores it; the network front door uses it as the
//! principal for per-VC admission quotas. [`VcId::new(0)`] is the
//! "unattributed" default for internal callers.

use scope_common::hash::Sig128;
use scope_common::ids::{JobId, VcId};
use scope_common::intern::Symbol;
use scope_common::time::{SimDuration, SimTime};
use scope_engine::optimizer::AvailableView;
use scope_signature::SubsumeDescriptor;

/// Figure 9 steps 1/2: the per-job annotation lookup, pinned to the job's
/// submission time.
#[derive(Clone, Debug, PartialEq)]
pub struct LookupRequest {
    /// The job the lookup is attributed to (fault injection, provenance).
    pub job: JobId,
    /// Submitting virtual cluster (the quota principal at the front door).
    pub vc: VcId,
    /// The job's normalized input tags, probed against the inverted index.
    pub tags: Vec<Symbol>,
    /// Tier-2 subsumption probes (empty skips the tier-2 scan entirely).
    pub probes: Vec<SubsumeDescriptor>,
    /// Pinned lookup time: view liveness is judged here, not at the
    /// service's live clock.
    pub at: SimTime,
}

impl LookupRequest {
    /// A probe-less lookup for `job` pinned at `at`.
    pub fn new(job: JobId, tags: &[Symbol], at: SimTime) -> LookupRequest {
        LookupRequest {
            job,
            vc: VcId::new(0),
            tags: tags.to_vec(),
            probes: Vec::new(),
            at,
        }
    }

    /// Attaches tier-2 subsumption probes.
    pub fn with_probes(mut self, probes: Vec<SubsumeDescriptor>) -> LookupRequest {
        self.probes = probes;
        self
    }

    /// Attributes the request to a virtual cluster.
    pub fn for_vc(mut self, vc: VcId) -> LookupRequest {
        self.vc = vc;
        self
    }
}

/// Figure 9 steps 3/4: propose to materialize a view, pinned to the
/// proposing job's submission time (lock expiry is judged at `at`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProposeRequest {
    /// Precise signature of the subgraph to materialize.
    pub precise: Sig128,
    /// The proposing job (the lock holder if granted).
    pub job: JobId,
    /// Submitting virtual cluster (the quota principal at the front door).
    pub vc: VcId,
    /// Exclusive-lock TTL, mined from the subgraph's average runtime.
    pub lock_ttl: SimDuration,
    /// Pinned proposal time: existing locks and view liveness are judged
    /// here, not at the service's live clock.
    pub at: SimTime,
}

impl ProposeRequest {
    /// A proposal by `job` for `precise`, pinned at `at`.
    pub fn new(precise: Sig128, job: JobId, lock_ttl: SimDuration, at: SimTime) -> ProposeRequest {
        ProposeRequest {
            precise,
            job,
            vc: VcId::new(0),
            lock_ttl,
            at,
        }
    }

    /// Attributes the request to a virtual cluster.
    pub fn for_vc(mut self, vc: VcId) -> ProposeRequest {
        self.vc = vc;
        self
    }
}

/// Figure 9 steps 5/6: report a successful materialization, releasing the
/// build lock and making the view visible from `available_at`.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportRequest {
    /// The materialized view (precise signature, size, physical design).
    pub view: AvailableView,
    /// Normalized signature linking the view to its driving annotation
    /// ([`Sig128::ZERO`] when there is none, e.g. protocol-only tests).
    pub normalized: Sig128,
    /// The producing job.
    pub producer: JobId,
    /// Submitting virtual cluster (the quota principal at the front door).
    pub vc: VcId,
    /// When the view becomes visible to lookups (early materialization may
    /// pre-date job completion).
    pub available_at: SimTime,
    /// When the view expires (mined from input lineage).
    pub expires_at: SimTime,
    /// Subsumption descriptor of the materialized root, when the view is
    /// tier-2 eligible (`None` keeps it tier-1-only).
    pub descriptor: Option<SubsumeDescriptor>,
}

impl ReportRequest {
    /// A descriptor-less report (the view is tier-1-only).
    pub fn new(
        view: AvailableView,
        normalized: Sig128,
        producer: JobId,
        available_at: SimTime,
        expires_at: SimTime,
    ) -> ReportRequest {
        ReportRequest {
            view,
            normalized,
            producer,
            vc: VcId::new(0),
            available_at,
            expires_at,
            descriptor: None,
        }
    }

    /// Attaches the view's subsumption descriptor (tier-2 eligibility).
    pub fn with_descriptor(mut self, descriptor: Option<SubsumeDescriptor>) -> ReportRequest {
        self.descriptor = descriptor;
        self
    }

    /// Attributes the request to a virtual cluster.
    pub fn for_vc(mut self, vc: VcId) -> ReportRequest {
        self.vc = vc;
        self
    }
}
