//! `cloudviews-repro` — reproduction of *"Computation Reuse in Analytics
//! Job Service at Microsoft"* (Jindal et al., SIGMOD 2018).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`plan`] — query plans, expressions, operators, physical properties;
//! * [`signature`] — precise + normalized subgraph signatures (Section 3);
//! * [`engine`] — the mini-SCOPE substrate: executor, optimizer, cluster
//!   simulator, storage, workload repository;
//! * [`workload`] — calibrated recurring workloads and the TPC-DS
//!   translation;
//! * [`cloudviews`] — the paper's contribution: analyzer, metadata service,
//!   and online runtime;
//! * [`common`] — ids, simulated time, stable hashing, statistics.
//!
//! See `examples/quickstart.rs` for the canonical tour, and DESIGN.md /
//! EXPERIMENTS.md for the system inventory and the paper-vs-measured
//! record.

pub use cloudviews;
pub use scope_common as common;
pub use scope_engine as engine;
pub use scope_plan as plan;
pub use scope_signature as signature;
pub use scope_workload as workload;
